"""Synchronous master–worker TSMO (paper §III.C).

"The first parallel approach is a very simple parallelization of the
GenerateNeighborhood() and Evaluate() functions using a master process
that distributes the work among himself and several worker processes.
... It is synchronized in that the master selects the current
individual, distributes the work and waits to collect all the
results."

Every iteration the master splits the neighborhood into ``P`` chunks
(one for itself), waits for *all* worker results, then runs the exact
sequential selection/update.  Because the selection logic and memories
are untouched, "the behavior remains unchanged" relative to the
sequential algorithm — only the clock differs; the drawback is that
the master idles until the slowest (straggling) worker reports.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.errors import SimulationError
from repro.obs import NULL_OBS
from repro.parallel.base import simulation_context
from repro.parallel.costmodel import CostModel
from repro.parallel.messages import ResultMessage, StopMessage, TaskMessage
from repro.rng import RngFactory, get_generator_state, set_generator_state
from repro.tabu.neighborhood import Neighbor, sample_neighborhood
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.instance import Instance

__all__ = ["run_synchronous_tsmo", "split_chunks", "worker_process"]


def split_chunks(total: int, parts: int) -> list[int]:
    """Balanced work split: sizes differ by at most one, sum == total."""
    if parts < 1:
        raise SimulationError(f"cannot split into {parts} parts")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def worker_process(
    cluster,
    rank: int,
    registry: OperatorRegistry,
    rng: np.random.Generator,
    evaluator: Evaluator,
    *,
    batch_size: int | None = None,
    master: int = 0,
    obs=NULL_OBS,
):
    """The worker loop shared by the synchronous and asynchronous variants.

    Receives :class:`TaskMessage`, generates/evaluates its chunk, and
    sends results back — as one final message (synchronous,
    ``batch_size=None``) or as a stream of batches with a terminating
    ``final`` flag (asynchronous).

    Simulated workers run in the master's process, so their events go
    straight into the shared tracer under a per-rank span, and their
    compute/idle time folds into the shared simulated-unit profiler.
    """
    cost = cluster.cost
    cache = evaluator.stats_cache
    inbox = cluster.inbox(rank)
    env = cluster.env
    profiler = obs.profiler
    tracer = obs.tracer
    span = f"rank-{rank}"
    while True:
        idle_from = env.now
        msg = yield inbox.get()
        if profiler.enabled:
            profiler.add("wait", env.now - idle_from)
        if isinstance(msg, StopMessage):
            return
        if not isinstance(msg, TaskMessage):
            raise SimulationError(f"worker {rank} received unexpected {msg!r}")
        remaining = msg.count
        produced: list[Neighbor] = []
        work_from = env.now
        while remaining > 0:
            step = remaining if batch_size is None else min(batch_size, remaining)
            # Pay the simulated duration first, then materialize the
            # neighbors, so the evaluation counter reflects *completed*
            # work at the simulated instant it completes.
            yield cluster.compute(rank, cost.eval_cost * step)
            misses_before = cache.misses
            batch = sample_neighborhood(
                msg.solution, step, registry, rng, evaluator, iteration=msg.iteration
            )
            # Charge cache-miss route scans after the fact (only when
            # the model prices them; a zero-cost yield would reorder
            # simultaneous events and change calibrated trajectories).
            if cost.miss_scan_cost > 0.0 and cache.misses > misses_before:
                yield cluster.compute(
                    rank, cost.miss_scan_cost * (cache.misses - misses_before)
                )
            remaining -= step
            if batch_size is None:
                produced.extend(batch)
            else:
                if tracer.enabled:
                    tracer.emit(
                        "comm_send",
                        span=span,
                        peer=master,
                        kind="result",
                        items=len(batch),
                    )
                cluster.send(
                    rank,
                    master,
                    ResultMessage(
                        worker=rank,
                        neighbors=tuple(batch),
                        iteration=msg.iteration,
                        final=remaining <= 0,
                    ),
                    n_items=max(len(batch), 1),
                )
        if profiler.enabled:
            profiler.add("evaluate", env.now - work_from)
        if tracer.enabled:
            tracer.emit(
                "worker_task",
                span=span,
                worker=rank,
                task_id=msg.iteration,
                neighbors=msg.count,
            )
        if batch_size is None:
            if tracer.enabled:
                tracer.emit(
                    "comm_send",
                    span=span,
                    peer=master,
                    kind="result",
                    items=len(produced),
                )
            cluster.send(
                rank,
                master,
                ResultMessage(
                    worker=rank,
                    neighbors=tuple(produced),
                    iteration=msg.iteration,
                    final=True,
                ),
                n_items=max(len(produced), 1),
            )


def run_synchronous_tsmo(
    instance: Instance,
    params: TSMOParams | None = None,
    n_processors: int = 3,
    seed: int | np.random.SeedSequence | None = None,
    cost_model: CostModel | None = None,
    *,
    registry: OperatorRegistry | None = None,
    trace: TrajectoryRecorder | None = None,
    checkpoint=None,
    obs=NULL_OBS,
) -> TSMOResult:
    """Run the synchronous master–worker TSMO on the simulated cluster.

    The master's loop top is a global barrier — every worker has
    reported and is blocked on its inbox, nothing is in transit — so
    checkpointing there captures the whole cluster consistently:
    engine, per-worker RNG bit-states, cluster noise streams and the
    simulated clock.  As for the sequential drivers, checkpointing is
    fully transparent (bit-identical with or without it).
    """
    params = params or TSMOParams()
    if n_processors < 2:
        raise SimulationError("the master-worker variants need >= 2 processors")
    obs.set_unit("simulated")
    registry = registry or default_registry()
    # RNG tree: master stream + one stream per worker + cluster stream.
    factory = RngFactory(seed)
    master_rng = factory.generator()
    worker_rngs = factory.generators(n_processors - 1)
    cluster_seed = factory.seed_sequence()
    env, cluster, _ = simulation_context(n_processors, cost_model, cluster_seed, 0)
    cost = cluster.cost

    evaluator = Evaluator(instance, params.max_evaluations)
    engine = TSMOEngine(
        instance,
        params,
        master_rng,
        evaluator=evaluator,
        registry=registry,
        trace=trace,
        obs=obs,
    )
    finish = {"time": None}

    resumed = (
        checkpoint.load_resume_state(kind="synchronous")
        if checkpoint is not None
        else None
    )
    if resumed is not None:
        if len(resumed["workers"]) != n_processors - 1:
            raise SimulationError(
                f"snapshot has {len(resumed['workers'])} worker streams, "
                f"run asked for {n_processors - 1} workers"
            )
        engine.restore(resumed["engine"])
        for rng, state in zip(worker_rngs, resumed["workers"]):
            set_generator_state(rng, state)
        cluster.restore_state(resumed["cluster"])
        env.now = resumed["env_now"]
        checkpoint.note_resumed(engine.evaluator.count)

    def build_state():
        return {
            "engine": engine.snapshot(),
            "workers": [get_generator_state(rng) for rng in worker_rngs],
            "cluster": cluster.export_state(),
            "env_now": env.now,
        }

    def master():
        inbox = cluster.inbox(0)
        profiler = obs.profiler
        tracer = obs.tracer
        if resumed is None:
            yield cluster.compute(0, cost.init_cost(instance.n_customers))
            engine.initialize()
        while True:
            if checkpoint is not None:
                checkpoint.tick(
                    engine.evaluator.count, build_state, kind="synchronous"
                )
            if engine.done:
                break
            iteration = engine.iteration + 1
            chunks = split_chunks(params.neighborhood_size, n_processors)
            for rank in range(1, n_processors):
                if tracer.enabled:
                    tracer.emit(
                        "comm_send", peer=rank, kind="task", items=chunks[rank]
                    )
                cluster.send(
                    0,
                    rank,
                    TaskMessage(engine.current, chunks[rank], iteration),
                    n_items=1,
                )
            t0 = env.now
            yield cluster.compute(0, cost.eval_cost * chunks[0])
            misses_before = evaluator.stats_cache.misses
            neighbors = engine.generate_neighborhood(chunks[0])
            master_misses = evaluator.stats_cache.misses - misses_before
            if cost.miss_scan_cost > 0.0 and master_misses > 0:
                yield cluster.compute(0, cost.miss_scan_cost * master_misses)
            if profiler.enabled:
                profiler.add("evaluate", env.now - t0)
            # Wait for every worker — the synchronous barrier — then
            # deserialize each bulk result on the critical path.
            for _ in range(n_processors - 1):
                t0 = env.now
                msg = yield inbox.get()
                t1 = env.now
                yield cluster.receive_overhead(0, len(msg.neighbors), streamed=False)
                if profiler.enabled:
                    profiler.add("wait", t1 - t0)
                    profiler.add("communicate", env.now - t1)
                if tracer.enabled:
                    tracer.emit(
                        "comm_recv",
                        peer=msg.worker,
                        kind="result",
                        items=len(msg.neighbors),
                    )
                neighbors.extend(msg.neighbors)
            t0 = env.now
            yield cluster.compute(0, cost.selection_cost(len(neighbors)))
            if profiler.enabled:
                profiler.add("select", env.now - t0)
            engine.select_and_update(neighbors)
        finish["time"] = env.now
        for rank in range(1, n_processors):
            cluster.send(0, rank, StopMessage(), n_items=1)

    env.process(master(), name="master")
    for rank in range(1, n_processors):
        env.process(
            worker_process(
                cluster, rank, registry, worker_rngs[rank - 1], evaluator, obs=obs
            ),
            name=f"worker-{rank}",
        )

    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    if obs.enabled:
        obs.metrics.gauge("comm.messages_sent", cluster.messages_sent)
        obs.metrics.gauge("comm.items_sent", cluster.items_sent)
    result = engine.result(
        "synchronous",
        wall_time=wall,
        simulated_time=finish["time"] if finish["time"] is not None else env.now,
        processors=n_processors,
    )
    result.extra["messages_sent"] = cluster.messages_sent
    result.extra["items_sent"] = cluster.items_sent
    return result
