#!/usr/bin/env python
"""Why the six instance classes behave differently: structural anatomy.

Prints the structural profile of one instance per class — window
tightness, temporal-compatibility density (the acceptance rate of the
paper's §II.B local feasibility criterion), geometric clustering, and
vehicle lower bounds — and shows how those properties predict operator
behavior: intra-route reordering (or-opt) is alive on wide-window
classes and dormant on tight ones.

Run:  python examples/instance_anatomy.py
"""

import numpy as np

from repro.core.construction import i1_construct
from repro.core.operators import OrOpt
from repro.vrptw import generate_instance
from repro.vrptw.analysis import compatibility_density, describe


def oropt_rate(instance) -> float:
    solution = i1_construct(instance, rng=np.random.default_rng(1))
    rng = np.random.default_rng(2)
    operator = OrOpt()
    return sum(operator.propose(solution, rng) is not None for _ in range(300)) / 300


def main() -> None:
    print("Structural anatomy of the six Solomon/Homberger classes\n")
    rows = []
    for icls in ("C1", "C2", "R1", "R2", "RC1", "RC2"):
        instance = generate_instance(icls, 50, seed=7)
        print(describe(instance))
        rows.append((icls, compatibility_density(instance), oropt_rate(instance)))
        print()
    print("Criterion acceptance vs intra-route operator viability:")
    print(f"{'class':<6} {'compat density':>15} {'or-opt proposal rate':>21}")
    for icls, density, rate in rows:
        print(f"{icls:<6} {density * 100:>14.0f}% {rate * 100:>20.0f}%")
    print(
        "\nTight-window (type 1) classes admit few temporal adjacencies, so "
        "the paper's\nlocal feasibility criterion effectively disables "
        "intra-route reordering there;\nthe operator wheel's retry rule "
        "(§III.B) silently routes that probability mass\nto the inter-route "
        "operators.  See EXPERIMENTS.md for the quality consequences."
    )


if __name__ == "__main__":
    main()
