"""The one timestamp helper every persisted artifact uses.

Before the observability layer, two artifacts stamped wall-clock
provenance independently (the worker-pool report dump and the bench
run manifest) and nothing guaranteed their formats agreed.  Everything
now goes through :func:`utc_timestamp`: ISO-8601, UTC, second
precision, explicit ``+00:00`` offset — sortable as a plain string and
parseable by ``datetime.fromisoformat`` on every supported Python.

Deliberately dependency-free (stdlib ``datetime`` only) so it can be
imported from anywhere in the package — persistence, the pool, the
event sink — without creating an import cycle.
"""

from __future__ import annotations

from datetime import datetime, timezone

__all__ = ["parse_timestamp", "utc_timestamp"]


def utc_timestamp() -> str:
    """The current time as an ISO-8601 UTC string, e.g.
    ``2026-08-07T12:34:56+00:00``."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def parse_timestamp(text: str) -> datetime:
    """Parse a string written by :func:`utc_timestamp` back into an
    aware :class:`~datetime.datetime` (raises ``ValueError`` on any
    other format — mixed formats are exactly the bug this module
    exists to prevent)."""
    stamp = datetime.fromisoformat(text)
    if stamp.tzinfo is None:
        raise ValueError(f"timestamp {text!r} is not timezone-aware")
    return stamp
