"""Multiobjective machinery: dominance, archives, quality indicators.

The paper borrows "what has emerged in multiobjective EAs, mainly the
pareto concept to store non-dominated solutions in a memory and the use
of an archive to store the non-dominated front" (§III.A), with NSGA-II
crowding comparison for bounded-archive replacement and Zitzler's set
coverage metric for the result tables.  Hypervolume and epsilon
indicators are provided as extensions for richer comparisons.
"""

from repro.mo.archive import ArchiveEntry, ParetoArchive
from repro.mo.coverage import set_coverage, mutual_coverage
from repro.mo.crowding import crowding_distances
from repro.mo.dominance import (
    dominates,
    non_dominated_indices,
    non_dominated_mask,
    non_dominated_sort,
    weakly_dominates,
)
from repro.mo.epsilon import additive_epsilon, multiplicative_epsilon
from repro.mo.hypervolume import hypervolume
from repro.mo.metrics import (
    generational_distance,
    inverted_generational_distance,
    spread,
)

__all__ = [
    "ArchiveEntry",
    "ParetoArchive",
    "additive_epsilon",
    "crowding_distances",
    "dominates",
    "generational_distance",
    "hypervolume",
    "inverted_generational_distance",
    "multiplicative_epsilon",
    "mutual_coverage",
    "non_dominated_indices",
    "non_dominated_mask",
    "non_dominated_sort",
    "set_coverage",
    "spread",
    "weakly_dominates",
]
