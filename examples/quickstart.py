#!/usr/bin/env python
"""Quickstart: solve one CVRPTW instance with the sequential TSMO.

Generates a 60-customer Homberger-style R1 instance (random geometry,
small time windows), seeds the search with Solomon's I1 heuristic, runs
the multiobjective tabu search for a few thousand evaluations, and
prints the resulting Pareto front: the trade-off between total travel
distance, vehicles deployed and (soft) time-window violation.

Run:  python examples/quickstart.py
"""

from repro import TSMOParams, generate_instance, run_sequential_tsmo


def main() -> None:
    instance = generate_instance("R1", 60, seed=42)
    print(f"Instance: {instance}")
    print(
        f"  total demand {instance.total_demand:.0f}, capacity "
        f"{instance.capacity:.0f} -> at least "
        f"{instance.min_vehicles_by_capacity} vehicles required\n"
    )

    params = TSMOParams(
        max_evaluations=8_000,
        neighborhood_size=80,
        tabu_tenure=20,
        archive_capacity=20,
        restart_after=20,
    )
    result = run_sequential_tsmo(instance, params, seed=7)

    print(
        f"Search finished: {result.iterations} iterations, "
        f"{result.evaluations} evaluations, {result.restarts} restarts, "
        f"{result.wall_time:.1f}s wall time.\n"
    )
    print("Pareto archive (feasible solutions marked *):")
    print(f"{'':2} {'distance':>10} {'vehicles':>9} {'tardiness':>10}")
    for entry in sorted(result.archive, key=lambda e: e.objectives.distance):
        obj = entry.objectives
        flag = "*" if obj.feasible else " "
        print(f"{flag:2} {obj.distance:>10.1f} {obj.vehicles:>9d} {obj.tardiness:>10.1f}")

    best = result.best_feasible()
    if best is not None:
        print(
            f"\nBest feasible: distance {best[0]:.1f} / "
            f"as few as {best[1]:.0f} vehicles."
        )

    # Inspect one solution's routes and schedule.
    feasible = [e for e in result.archive if e.objectives.feasible]
    if feasible:
        solution = min(feasible, key=lambda e: e.objectives.distance).item
        print(f"\nRoutes of the shortest feasible solution ({solution.n_routes} vehicles):")
        for i, route in enumerate(solution.routes):
            stats = solution.route_stats(i)
            print(
                f"  vehicle {i}: {len(route)} stops, load {stats.load:.0f}, "
                f"distance {stats.distance:.1f}, back at t={stats.completion:.0f}"
            )


if __name__ == "__main__":
    main()
