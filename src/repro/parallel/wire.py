"""Compact wire codecs for the real-process pool transport.

The paper's §V blames the synchronous master–worker's weak speedups on
per-iteration communication, and the pool's own diagnostics agreed:
every :class:`~repro.parallel.messages.PoolTask` used to pickle the
full nested routes tuple and every
:class:`~repro.parallel.messages.PoolBatch` pickled one complete child
route set *per neighbor*.  This module replaces both payloads with
packed array encodings that decode **bit-identically** — the same
route tuples, objective floats and tabu attributes come out that went
in — so the lockstep parity guarantees survive the codec unchanged.

Two codecs live here:

* :class:`WireRoutes` — a solution's routes as one flat customer array
  plus a route-offset array (the §II.A giant tour without its depot
  markers), packed into a single ``bytes`` blob.  Customer ids use the
  narrowest of ``int16``/``int32`` that fits (the int32 layout of the
  general case shrinks 2x for every realistic instance size).
* :class:`WireBatch` — a batch of evaluated neighbors encoded as
  *route edits against the shared parent* instead of full child route
  sets.  A move touches 1–2 routes of a 50+ route solution, so the
  delta is ~20x smaller than the child; objectives ride as packed
  ``float64`` pairs (the vehicle count is recomputed from the edit
  structure — it is, by construction, the child's route count), and
  tabu attributes are packed as ``(operator id, customer set)`` int
  arrays with a pickle escape hatch for non-canonical shapes.

Everything is plain-Python ``array``/``struct`` packing — no numpy in
the hot encode path — because batches are small (tens of neighbors)
and C-backed ``array.array`` construction beats numpy's per-call
dispatch overhead at that size.

The module also provides :func:`wire_cost`, the measurement behind the
``bench_micro.py`` wire-cost benchmark and the EXPERIMENTS.md recipe.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from dataclasses import dataclass
from operator import index
from typing import Hashable, Iterable, Sequence

__all__ = [
    "WireBatch",
    "WireRoutes",
    "WireTaskDelta",
    "diff_routes",
    "instance_from_wire",
    "instance_to_wire",
    "wire_cost",
]

Routes = tuple[tuple[int, ...], ...]

#: canonical operator tags (``Move.name``) in registry order — batches
#: whose attributes only use these ship no name table at all.  Append
#: new operators at the end; the codec falls back to an explicit
#: per-batch table for unknown names, so this list is an optimization,
#: never a correctness requirement.
CANONICAL_OPS: tuple[str, ...] = (
    "relocate",
    "exchange",
    "2opt",
    "oropt",
    "2opt*",
    "segx",
)

_CANON_INDEX = {name: i for i, name in enumerate(CANONICAL_OPS)}

#: attribute shape tags (see :meth:`WireBatch.encode`).
_ATTR_INT = 0  # (op, int)
_ATTR_FROZENSET = 1  # (op, frozenset of ints)
_ATTR_ESCAPE = 2  # anything else — pickled verbatim

_ROUTES_HEADER = struct.Struct("<ccII")
_BATCH_HEADER = struct.Struct("<ccIIII")


def _int_code(max_value: int, min_value: int = 0) -> str:
    """Narrowest signed array typecode holding the given value range."""
    if -0x8000 <= min_value and max_value <= 0x7FFF:
        return "h"
    if -0x8000_0000 <= min_value and max_value <= 0x7FFF_FFFF:
        return "i"
    return "q"


def _pack(code: str, values) -> bytes:
    return array(code, values).tobytes()


def _unpack(code: str, blob: memoryview) -> list[int]:
    out = array(code)
    out.frombytes(blob)
    return out.tolist()


# ----------------------------------------------------------------------
# Task payload: one solution's routes
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WireRoutes:
    """A route set as one packed blob: flat customer ids + offsets.

    Layout: header ``(sites code, offsets code, n_routes, n_sites)``,
    then the offset array (``n_routes + 1`` entries, ``offsets[0] == 0``)
    and the flat site array.  :meth:`decode` rebuilds the exact nested
    tuple that was encoded.
    """

    blob: bytes

    @classmethod
    def encode(cls, routes: Iterable[Sequence[int]]) -> "WireRoutes":
        routes = tuple(routes)
        offsets = [0]
        for route in routes:
            offsets.append(offsets[-1] + len(route))
        sites = [c for route in routes for c in route]
        site_code = _int_code(max(sites, default=0), min(sites, default=0))
        off_code = _int_code(offsets[-1])
        header = _ROUTES_HEADER.pack(
            site_code.encode(), off_code.encode(), len(routes), offsets[-1]
        )
        return cls(header + _pack(off_code, offsets) + _pack(site_code, sites))

    def decode(self) -> Routes:
        view = memoryview(self.blob)
        site_code, off_code, n_routes, n_sites = _ROUTES_HEADER.unpack_from(view)
        site_code, off_code = site_code.decode(), off_code.decode()
        pos = _ROUTES_HEADER.size
        off_end = pos + (n_routes + 1) * array(off_code).itemsize
        offsets = _unpack(off_code, view[pos:off_end])
        sites = _unpack(site_code, view[off_end:])
        if len(sites) != n_sites:  # pragma: no cover - corrupt payload
            raise ValueError("WireRoutes blob site count mismatch")
        return tuple(
            tuple(sites[offsets[i] : offsets[i + 1]]) for i in range(n_routes)
        )

    def __len__(self) -> int:
        return len(self.blob)


# ----------------------------------------------------------------------
# Task payload, steady state: edits against the previous task's routes
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WireTaskDelta:
    """A task's routes as edits against an earlier task's routes.

    Between consecutive iterations the parent solution changes by one
    applied move — 1-2 routes out of 50+ — so a worker that just
    finished task ``base_task_id`` already holds 97% of the next task's
    routes.  The master ships only the :func:`diff_routes` edits
    (``WorkerPool.submit`` falls back to full :class:`WireRoutes`
    whenever the target worker's last completed task is not the base:
    first dispatch, retries on another worker, post-respawn).

    The edits are small enough (~3 sites per changed route) that plain
    pickle of the nested tuples beats any packing scheme's header
    overhead.
    """

    base_task_id: int
    replacements: tuple[tuple[int, tuple[int, ...]], ...]
    added: tuple[tuple[int, ...], ...]

    def apply(self, base_routes: Routes) -> Routes:
        """Rebuild the task routes from the cached base routes."""
        replacements = dict(self.replacements)
        out = []
        for k, route in enumerate(base_routes):
            if k in replacements:
                new_route = replacements[k]
                if new_route:
                    out.append(new_route)
            else:
                out.append(route)
        out.extend(self.added)
        return tuple(out)


def diff_routes(parent: Routes, child: Routes) -> WireTaskDelta | None:
    """Express ``child`` as :meth:`Solution.derive`-style edits of ``parent``.

    Returns ``None`` when no valid small edit exists (the caller ships
    full routes instead).  The result is *verified* — ``apply`` on the
    parent must reproduce the child exactly — so a pathological
    alignment (e.g. a replacement route that happens to equal an
    unrelated parent route) degrades to a full send, never to a wrong
    reconstruction.
    """
    n_p, n_c = len(parent), len(child)
    replacements: list[tuple[int, tuple[int, ...]]] = []
    i = j = 0
    while i < n_p and j < n_c:
        if parent[i] == child[j]:
            i += 1
            j += 1
        elif i + 1 < n_p and parent[i + 1] == child[j]:
            replacements.append((i, ()))  # deletion
            i += 1
        else:
            replacements.append((i, child[j]))
            i += 1
            j += 1
        if len(replacements) > 4:  # no single move edits this many routes
            return None
    while i < n_p:
        replacements.append((i, ()))
        i += 1
        if len(replacements) > 4:
            return None
    added = child[j:]
    if len(added) > 2:
        return None
    delta = WireTaskDelta(
        base_task_id=-1, replacements=tuple(replacements), added=added
    )
    if delta.apply(parent) != child:  # pragma: no cover - defensive
        return None
    return delta


# ----------------------------------------------------------------------
# Batch payload: evaluated neighbors as edits against the parent
# ----------------------------------------------------------------------
#: one neighbor on the encoder's side: the move's route edits, the
#: objective triple and the tabu attribute.
EditItem = tuple[
    dict[int, tuple[int, ...]],
    tuple[tuple[int, ...], ...],
    tuple[float, int, float],
    Hashable,
]


@dataclass(frozen=True, slots=True)
class WireBatch:
    """A neighbor batch as parent-relative route edits.

    Single-blob layout (header then sections, in order):

    ``objectives``
        ``float64`` pairs ``(distance, tardiness)`` per neighbor.  The
        vehicle count is *not* shipped: it equals the child's route
        count, which the decoder knows exactly from the edit structure
        (``len(parent) - deletions + additions`` — the same formula
        ``Evaluator.evaluate_move`` uses).
    ``edit counts``
        edits per neighbor (``uint8``).
    ``edit route indices``
        per edit: the parent route index it replaces, or ``-1`` for a
        newly opened route.
    ``edit site counts``
        per edit: length of the replacement route (``0`` deletes).
    ``edit sites``
        flat customer ids of all replacement/new routes.
    ``attr kind+op``
        per neighbor: attribute shape tag and operator id (``uint8``
        each, interleaved).
    ``attr payload``
        per neighbor one int (shape 0) or ``count + members`` ints
        (shape 1), flat.

    Attributes of canonical shape ``(op_name, int)`` or ``(op_name,
    frozenset[int])`` pack into the int sections; anything else rides
    the ``escapes`` pickle side-channel keyed by neighbor index.
    Operator names outside :data:`CANONICAL_OPS` go to ``op_names``
    (ids above ``len(CANONICAL_OPS)`` index into it).

    :meth:`decode` needs the parent routes (the master keeps them from
    ``submit``) and returns exactly the ``NeighborTriple`` tuple the
    uncoded path would have produced.
    """

    blob: bytes
    n: int
    op_names: tuple[str, ...] = ()
    escapes: tuple[tuple[int, Hashable], ...] = ()

    @classmethod
    def encode(cls, items: Sequence[EditItem]) -> "WireBatch":
        n = len(items)
        objectives = array("d")
        edit_counts = array("B")
        edit_route_idx: list[int] = []
        edit_site_counts: list[int] = []
        edit_sites: list[int] = []
        attr_tags = array("B")
        attr_ints: list[int] = []
        op_names: list[str] = []
        op_index: dict[str, int] = {}
        escapes: list[tuple[int, Hashable]] = []

        for i, (replacements, added, obj, attribute) in enumerate(items):
            objectives.append(obj[0])
            objectives.append(obj[2])
            edits = 0
            for idx, new_route in replacements.items():
                edit_route_idx.append(idx)
                edit_site_counts.append(len(new_route))
                edit_sites.extend(new_route)
                edits += 1
            for new_route in added:
                if not new_route:
                    continue  # Solution.derive drops empty additions
                edit_route_idx.append(-1)
                edit_site_counts.append(len(new_route))
                edit_sites.extend(new_route)
                edits += 1
            if edits > 0xFF:  # pragma: no cover - no operator edits 256 routes
                raise ValueError("too many route edits for one neighbor")
            edit_counts.append(edits)

            kind, op, payload = cls._pack_attribute(attribute)
            if kind == _ATTR_ESCAPE:
                escapes.append((i, attribute))
                attr_tags.append(_ATTR_ESCAPE)
                attr_tags.append(0)
            else:
                op_id = _CANON_INDEX.get(op)
                if op_id is None:
                    op_id = op_index.get(op)
                    if op_id is None:
                        op_id = len(CANONICAL_OPS) + len(op_names)
                        op_index[op] = op_id
                        op_names.append(op)
                if op_id > 0xFF:  # pragma: no cover - pathological registry
                    escapes.append((i, attribute))
                    attr_tags.append(_ATTR_ESCAPE)
                    attr_tags.append(0)
                else:
                    attr_tags.append(kind)
                    attr_tags.append(op_id)
                    attr_ints.extend(payload)

        site_values = edit_sites + attr_ints
        site_code = _int_code(
            max(site_values, default=0), min(min(site_values, default=0), -1)
        )
        idx_code = _int_code(max(edit_route_idx, default=0), -1)
        count_code = _int_code(max(edit_site_counts, default=0))
        header = _BATCH_HEADER.pack(
            site_code.encode(),
            idx_code.encode(),
            n,
            len(edit_route_idx),
            len(edit_sites),
            len(attr_ints),
        )
        blob = b"".join(
            (
                header,
                count_code.encode(),
                objectives.tobytes(),
                edit_counts.tobytes(),
                _pack(idx_code, edit_route_idx),
                _pack(count_code, edit_site_counts),
                _pack(site_code, edit_sites),
                attr_tags.tobytes(),
                _pack(site_code, attr_ints),
            )
        )
        return cls(
            blob=blob, n=n, op_names=tuple(op_names), escapes=tuple(escapes)
        )

    @staticmethod
    def _pack_attribute(attribute: Hashable):
        """Classify one tabu attribute into a packable shape.

        Integral values are normalized through :func:`operator.index`
        (operators leak ``np.int64`` customer ids from rng draws);
        decode returns plain ``int``, which hashes and compares equal,
        so tabu screening is unaffected.
        """
        if (
            type(attribute) is tuple
            and len(attribute) == 2
            and type(attribute[0]) is str
        ):
            op, key = attribute
            try:
                return _ATTR_INT, op, (index(key),)
            except TypeError:
                pass
            if type(key) is frozenset and len(key) <= 0xFFFF:
                try:
                    members = sorted(index(m) for m in key)
                except TypeError:
                    pass
                else:
                    return _ATTR_FROZENSET, op, (len(members), *members)
        return _ATTR_ESCAPE, "", ()

    def decode(self, parent_routes: Routes) -> tuple:
        """Rebuild the exact ``NeighborTriple`` tuple of this batch.

        Child routes are reconstructed with
        :meth:`repro.core.solution.Solution.derive` semantics —
        replacements in parent order (empty tuple deletes), additions
        appended — so they equal the ``move.apply(parent).routes`` the
        uncoded path ships.
        """
        view = memoryview(self.blob)
        site_c, idx_c, n, n_edits, n_edit_sites, n_attr_ints = (
            _BATCH_HEADER.unpack_from(view)
        )
        site_c, idx_c = site_c.decode(), idx_c.decode()
        pos = _BATCH_HEADER.size
        count_c = view[pos : pos + 1].tobytes().decode()
        pos += 1

        def take(code: str, count: int) -> list:
            nonlocal pos
            size = count * array(code).itemsize
            out = array(code)
            out.frombytes(view[pos : pos + size])
            pos += size
            return out.tolist()

        objectives = take("d", 2 * n)
        edit_counts = take("B", n)
        edit_route_idx = take(idx_c, n_edits)
        edit_site_counts = take(count_c, n_edits)
        edit_sites = take(site_c, n_edit_sites)
        attr_tags = take("B", 2 * n)
        attr_ints = take(site_c, n_attr_ints)

        escapes = dict(self.escapes)
        names = CANONICAL_OPS + self.op_names
        triples = []
        e = 0  # edit cursor
        s = 0  # edit-site cursor
        a = 0  # attr-int cursor
        n_parent = len(parent_routes)
        for i in range(n):
            replacements: dict[int, tuple[int, ...]] = {}
            added: list[tuple[int, ...]] = []
            for _ in range(edit_counts[i]):
                idx = edit_route_idx[e]
                size = edit_site_counts[e]
                route = tuple(edit_sites[s : s + size])
                s += size
                e += 1
                if idx < 0:
                    added.append(route)
                else:
                    replacements[idx] = route
            child: list[tuple[int, ...]] = []
            for k in range(n_parent):
                if k in replacements:
                    new_route = replacements[k]
                    if new_route:
                        child.append(new_route)
                else:
                    child.append(parent_routes[k])
            child.extend(added)

            kind = attr_tags[2 * i]
            if kind == _ATTR_ESCAPE:
                attribute = escapes[i]
            else:
                op = names[attr_tags[2 * i + 1]]
                if kind == _ATTR_INT:
                    attribute = (op, attr_ints[a])
                    a += 1
                else:
                    count = attr_ints[a]
                    attribute = (op, frozenset(attr_ints[a + 1 : a + 1 + count]))
                    a += 1 + count
            triples.append(
                (
                    tuple(child),
                    (objectives[2 * i], len(child), objectives[2 * i + 1]),
                    attribute,
                )
            )
        return tuple(triples)

    def __len__(self) -> int:
        return len(self.blob)


# ----------------------------------------------------------------------
# Admission payload: a whole instance as plain JSON-able data
# ----------------------------------------------------------------------
def instance_to_wire(instance) -> dict:
    """An :class:`~repro.vrptw.instance.Instance` as plain JSON data.

    This is the *admission* form of a per-job instance — what rides in
    ``JobSpec.to_wire`` and therefore in the ledger's ``accepted``
    entries, so recovery can rebuild the instance a restarted scheduler
    never saw.  Only the six site arrays and the scalars ship; the
    travel matrix is recomputed by the validating constructor on
    decode.  Python floats round-trip JSON exactly (``repr`` is
    shortest-exact), so the recomputed matrix is bit-identical for
    euclidean instances — and a *hand-edited* travel matrix, which
    would not survive the round trip, is caught loudly by the
    fingerprint check (:func:`repro.parallel.shm.instance_fingerprint`
    hashes the travel bytes) rather than silently re-euclideanized.
    """
    return {
        "name": instance.name,
        "capacity": float(instance.capacity),
        "n_vehicles": int(instance.n_vehicles),
        "x": [float(v) for v in instance.x],
        "y": [float(v) for v in instance.y],
        "demand": [float(v) for v in instance.demand],
        "ready_time": [float(v) for v in instance.ready_time],
        "due_date": [float(v) for v in instance.due_date],
        "service_time": [float(v) for v in instance.service_time],
    }


def instance_from_wire(wire: dict):
    """Rebuild an instance from :func:`instance_to_wire` data.

    Goes through the validating ``Instance`` constructor on purpose —
    ledger bytes are less trusted than live objects, and the O(N^2)
    travel recompute happens once per recovery, not per task.
    """
    from repro.vrptw.instance import Instance

    return Instance(
        name=wire["name"],
        x=wire["x"],
        y=wire["y"],
        demand=wire["demand"],
        ready_time=wire["ready_time"],
        due_date=wire["due_date"],
        service_time=wire["service_time"],
        capacity=wire["capacity"],
        n_vehicles=wire["n_vehicles"],
    )


# ----------------------------------------------------------------------
# Measurement (bench_micro.py wire-cost benchmark, EXPERIMENTS recipe)
# ----------------------------------------------------------------------
def wire_cost(
    instance,
    *,
    neighborhood: int = 200,
    batch_size: int = 10,
    seed: int = 0,
) -> dict:
    """Pickle-baseline vs codec payload bytes for one real iteration.

    Samples ``neighborhood`` neighbors of an I1 construction on
    ``instance`` and measures, in bytes:

    * the instance itself (pickled) vs what a shared-memory attach
      ships per worker (the descriptor);
    * one task payload: nested route tuples pickled vs ``WireRoutes``;
    * one result batch of ``batch_size`` neighbors: full
      ``NeighborTriple`` tuples pickled (with pickle's own intra-batch
      memoization — the honest baseline, it is what the queue did) vs
      ``WireBatch``;
    * the whole iteration's traffic (one task out, the neighborhood
      back in ``batch_size``-sized batches) both ways.

    Returns a flat dict of byte counts and ratios; the bench writes it
    into ``BENCH_micro.json``.
    """
    import numpy as np

    from repro.core.construction import i1_construct
    from repro.core.evaluation import Evaluator
    from repro.core.operators.registry import default_registry
    from repro.parallel.shm import share_instance

    solution = i1_construct(instance, rng=seed)
    registry = default_registry()
    evaluator = Evaluator(instance)
    rng = np.random.default_rng(seed)

    triples = []
    edit_items = []
    while len(triples) < neighborhood:
        move = registry.draw_move(solution, rng)
        if move is None:
            continue
        obj = evaluator.evaluate_move(solution, move)
        replacements, added = move.route_edits(solution)
        child = move.apply(solution)
        objective = (obj.distance, obj.vehicles, obj.tardiness)
        triples.append((child.routes, objective, move.attribute))
        edit_items.append((replacements, added, objective, move.attribute))

    def batched(seq):
        return [
            seq[i : i + batch_size] for i in range(0, len(seq), batch_size)
        ]

    task_pickle = len(pickle.dumps(solution.routes))
    task_wire_full = len(pickle.dumps(WireRoutes.encode(solution.routes)))
    # Steady state the master ships a WireTaskDelta: the next iteration's
    # parent is this parent plus one applied move.
    child_routes = triples[0][0]
    delta = diff_routes(solution.routes, child_routes)
    assert delta is not None
    task_wire = len(pickle.dumps(delta))
    batch_pickle = len(pickle.dumps(tuple(triples[:batch_size])))
    batch_wire = len(pickle.dumps(WireBatch.encode(edit_items[:batch_size])))
    iter_pickle = task_pickle + sum(
        len(pickle.dumps(tuple(chunk))) for chunk in batched(triples)
    )
    iter_wire = task_wire + sum(
        len(pickle.dumps(WireBatch.encode(chunk)))
        for chunk in batched(edit_items)
    )

    shared = share_instance(instance)
    try:
        per_worker = len(pickle.dumps(shared.ref))
    finally:
        shared.destroy()
    instance_pickle = len(pickle.dumps(instance))

    return {
        "neighborhood": neighborhood,
        "batch_size": batch_size,
        "instance_bytes_pickle": instance_pickle,
        "instance_bytes_shared": per_worker,
        "instance_ratio": instance_pickle / per_worker,
        "task_bytes_pickle": task_pickle,
        "task_bytes_wire": task_wire,
        "task_bytes_wire_full": task_wire_full,
        "task_ratio": task_pickle / task_wire,
        "batch_bytes_pickle": batch_pickle,
        "batch_bytes_wire": batch_wire,
        "batch_ratio": batch_pickle / batch_wire,
        "iteration_bytes_pickle": iter_pickle,
        "iteration_bytes_wire": iter_wire,
        "iteration_ratio": iter_pickle / iter_wire,
    }
