"""Structural analysis of CVRPTW instances.

The six Solomon/Homberger families differ along axes that explain why
the algorithms behave differently on them — geometry (clustered vs
random), time-window tightness, and how strongly the windows
*sequence* the customers.  This module quantifies those axes so the
generated benchmark set can be validated against the published sets'
structure (tests/test_vrptw_analysis.py) and so users can characterize
their own instances:

* :func:`window_stats` — widths, density and horizon utilization;
* :func:`compatibility_graph` — the directed "temporal compatibility"
  graph whose edge ``u -> v`` means serving ``v`` directly after ``u``
  is locally admissible (the paper's §II.B criterion); its density is
  exactly the probability that a random operator adjacency passes the
  screen, i.e. how constrained the neighborhood is;
* :func:`clustering_score` — nearest-neighbor statistics separating C
  from R geometries;
* :func:`fleet_lower_bounds` — capacity and temporal lower bounds on
  the vehicle count (context for the f2 columns).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.vrptw.instance import Instance

# NOTE: repro.core imports repro.vrptw, so the edge-admissibility check
# (the §II.B criterion this module analyzes) must be imported lazily
# inside the functions that need it to avoid a package import cycle.

__all__ = [
    "WindowStats",
    "window_stats",
    "compatibility_graph",
    "compatibility_density",
    "clustering_score",
    "fleet_lower_bounds",
    "describe",
]


@dataclass(frozen=True, slots=True)
class WindowStats:
    """Aggregate time-window statistics of an instance."""

    mean_width: float
    median_width: float
    #: mean window width divided by the horizon (tightness; Solomon
    #: type-1 instances sit around 0.05-0.15, type-2 around 0.2-0.5).
    relative_width: float
    #: fraction of customer pairs whose windows overlap in time.
    overlap_fraction: float
    horizon: float


def window_stats(instance: Instance) -> WindowStats:
    """Compute the window statistics of an instance."""
    ready = instance.ready_time[1:]
    due = instance.due_date[1:]
    widths = due - ready
    n = ready.shape[0]
    if n > 1:
        starts = ready[:, None]
        ends = due[:, None]
        overlap = (starts < ends.T) & (ready[None, :] < due[:, None])
        np.fill_diagonal(overlap, False)
        overlap_fraction = float(overlap.sum() / (n * (n - 1)))
    else:
        overlap_fraction = 0.0
    return WindowStats(
        mean_width=float(widths.mean()),
        median_width=float(np.median(widths)),
        relative_width=float(widths.mean() / instance.horizon),
        overlap_fraction=overlap_fraction,
        horizon=instance.horizon,
    )


def compatibility_graph(instance: Instance) -> nx.DiGraph:
    """The directed temporal-compatibility graph over customers.

    Edge ``u -> v`` iff ``a_u + c_u + t(u, v) <= b_v`` — serving ``v``
    right after ``u`` passes the paper's local feasibility screen.
    Node attributes carry coordinates and window bounds so the graph is
    self-contained for downstream analysis.
    """
    from repro.core.operators.feasibility import edge_admissible

    g = nx.DiGraph(instance=instance.name)
    for c in range(1, instance.n_customers + 1):
        g.add_node(
            c,
            x=float(instance.x[c]),
            y=float(instance.y[c]),
            ready=float(instance.ready_time[c]),
            due=float(instance.due_date[c]),
        )
    for u in range(1, instance.n_customers + 1):
        for v in range(1, instance.n_customers + 1):
            if u != v and edge_admissible(instance, u, v):
                g.add_edge(u, v)
    return g


def compatibility_density(instance: Instance) -> float:
    """Edge density of the temporal-compatibility graph.

    This is the acceptance probability of the local feasibility
    criterion for a uniformly random adjacency — low density is what
    makes tight-window instances hard for intra-route operators (see
    the operator-dormancy discussion in EXPERIMENTS.md).
    """
    n = instance.n_customers
    if n < 2:
        return 1.0
    g = compatibility_graph(instance)
    return g.number_of_edges() / (n * (n - 1))


def clustering_score(instance: Instance) -> float:
    """Mean nearest-neighbor distance over mean pairwise distance.

    Clustered geometries score low (~0.05), uniform ones higher
    (~0.15+); the ratio is scale-free so it compares across sizes.
    """
    t = instance.travel[1:, 1:]
    if t.shape[0] < 2:
        return 0.0
    off = t[~np.eye(t.shape[0], dtype=bool)]
    nn = np.where(np.eye(t.shape[0], dtype=bool), np.inf, t).min(axis=1)
    return float(nn.mean() / off.mean())


def fleet_lower_bounds(instance: Instance) -> dict[str, int]:
    """Lower bounds on the number of vehicles.

    * ``capacity``: ``ceil(total demand / m)``;
    * ``temporal``: the maximum number of customers whose service
      windows pairwise *cannot* be chained (a clique of temporal
      incompatibility needs one vehicle each) — approximated greedily
      on the complement of the compatibility graph's symmetrized
      closure, which keeps it cheap and still a valid lower bound.
    """
    capacity_bound = instance.min_vehicles_by_capacity
    g = compatibility_graph(instance)
    # u and v can share a vehicle (in some order) iff u->v or v->u.
    incompatible = nx.Graph()
    incompatible.add_nodes_from(g.nodes)
    for u in g.nodes:
        for v in g.nodes:
            if u < v and not g.has_edge(u, v) and not g.has_edge(v, u):
                incompatible.add_edge(u, v)
    # Greedy clique on the incompatibility graph (valid lower bound;
    # not necessarily maximum).
    clique: list[int] = []
    for node in sorted(incompatible.nodes, key=lambda n: -incompatible.degree(n)):
        if all(incompatible.has_edge(node, member) for member in clique):
            clique.append(node)
    return {"capacity": capacity_bound, "temporal": max(len(clique), 1)}


def describe(instance: Instance) -> str:
    """A human-readable structural summary (used by examples)."""
    ws = window_stats(instance)
    bounds = fleet_lower_bounds(instance)
    return (
        f"{instance.name}: {instance.n_customers} customers, fleet "
        f"{instance.n_vehicles} x {instance.capacity:.0f}\n"
        f"  horizon {ws.horizon:.0f}, windows {ws.mean_width:.0f} wide "
        f"({ws.relative_width * 100:.1f}% of horizon), "
        f"{ws.overlap_fraction * 100:.0f}% of pairs overlap\n"
        f"  temporal compatibility density "
        f"{compatibility_density(instance) * 100:.0f}%, clustering score "
        f"{clustering_score(instance):.3f}\n"
        f"  vehicle lower bounds: capacity {bounds['capacity']}, "
        f"temporal {bounds['temporal']}"
    )
