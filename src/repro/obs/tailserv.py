"""Remote tail server: the scheduler's EventBus over a TCP socket.

``SolveScheduler.tail()`` / ``tail_all()`` only work inside the
scheduler's own process.  :class:`TailServer` exposes the same two
streams to remote operators — ``python -m repro.serve --watch
--connect HOST:PORT`` in another process, on another machine — with a
protocol small enough to speak from anything:

* the client sends **one JSON request line** (newline-terminated)::

      {"op": "tail_all"}
      {"op": "tail", "job_id": "job-00042"}

* the server answers with a stream of **length-prefixed JSON frames**:
  a 4-byte big-endian payload size, then that many bytes of UTF-8
  JSON — one tracer event per frame, exactly what the in-process tail
  iterators yield.  Length prefixes rather than newline-delimited
  JSONL on the response side because event payloads are
  operator-controlled (``metrics_snapshot`` nests whole metric
  registries) and a framing that survives any payload beats one that
  asks every producer to promise newline-freedom.

Semantics mirror the in-process iterators deliberately (both sides
share :func:`~repro.obs.stream.job_event_predicate` and
:func:`~repro.obs.stream.is_terminal_job_event`): a per-job tail ends
after the terminal ``job_state`` frame, ``tail_all`` ends when the bus
closes (scheduler shutdown), and a slow client loses oldest events on
its own bounded subscription — never slowing the pump, never another
client.

The server is pure observation: it holds the bus, not the scheduler,
so nothing a client sends can steer the search.  Malformed requests
are counted (``bad_requests``) and the connection closed.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.stream import (
    DEFAULT_BUFFER,
    EventBus,
    is_terminal_job_event,
    job_event_predicate,
)

__all__ = ["TailServer", "tail_client"]

#: request line size bound (a request is one short JSON object; a
#: client shoving megabytes at the socket is not a client).
_MAX_REQUEST = 64 * 1024


def _encode_frame(event: dict) -> bytes:
    payload = json.dumps(event, default=str).encode("utf-8")
    return len(payload).to_bytes(4, "big") + payload


class TailServer:
    """Serve an :class:`~repro.obs.stream.EventBus` to TCP clients.

    Created by the scheduler when ``tail_port`` is set; ``port=0``
    binds an ephemeral port (tests), resolved via :meth:`address`.
    Counters (``connections``, ``frames_sent``, ``bad_requests``) are
    diagnostics for the serve report and the CI smoke.
    """

    def __init__(
        self,
        bus: EventBus,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        maxsize: int = DEFAULT_BUFFER,
    ) -> None:
        self.bus = bus
        self.host = host
        self.port = port
        self.maxsize = maxsize
        self._server: asyncio.base_events.Server | None = None
        self._ready = asyncio.Event()
        self._closed = False
        self._handlers: set[asyncio.Task] = set()
        self.connections = 0
        self.frames_sent = 0
        self.bad_requests = 0

    async def start(self) -> tuple[str, int]:
        """Bind and begin accepting; returns the bound ``(host, port)``."""
        if self._closed:
            raise RuntimeError("cannot restart a stopped TailServer")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        return self.host, self.port

    async def address(self) -> tuple[str, int]:
        """The bound address, waiting for :meth:`start` if necessary."""
        await self._ready.wait()
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, end live streams, close the socket.  Idempotent.

        Active handlers are cancelled and awaited (clients see a clean
        end of stream), not left for the event loop's shutdown to
        cancel — an abandoned handler still parked on its subscription
        dumps a spurious CancelledError traceback when the loop dies.
        """
        if self._closed:
            return
        self._closed = True
        self._ready.set()  # release address() waiters
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        handlers, self._handlers = set(self._handlers), set()
        for task in handlers:
            task.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)

    def report(self) -> dict:
        return {
            "connections": self.connections,
            "frames_sent": self.frames_sent,
            "bad_requests": self.bad_requests,
        }

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        sub = None
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            job_id = request.get("job_id")
            predicate = (
                job_event_predicate(job_id) if request["op"] == "tail" else None
            )
            sub = self.bus.subscribe(predicate=predicate, maxsize=self.maxsize)
            async for event in sub:
                writer.write(_encode_frame(event))
                await writer.drain()
                self.frames_sent += 1
                if job_id is not None and is_terminal_job_event(event):
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        except asyncio.CancelledError:
            pass  # stop() ending this stream; the finally sends EOF
        finally:
            if task is not None:
                self._handlers.discard(task)
            if sub is not None:
                sub.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> dict | None:
        """Parse the one request line; ``None`` (after an error frame)
        for anything malformed."""
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not line or len(line) > _MAX_REQUEST:
            self.bad_requests += 1
            return None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request is not an object")
            op = request.get("op")
            if op not in ("tail", "tail_all"):
                raise ValueError(f"unknown op {op!r}")
            if op == "tail" and not request.get("job_id"):
                raise ValueError("tail requires a job_id")
        except (ValueError, UnicodeDecodeError):
            self.bad_requests += 1
            return None
        return request


async def tail_client(host: str, port: int, *, job_id: str | None = None):
    """Async-iterate a remote scheduler's event stream.

    The client half of the protocol: connects, sends the one-line
    request, yields decoded event dicts until the server ends the
    stream (terminal ``job_state`` for a per-job tail, scheduler
    shutdown for ``tail_all``).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request: dict = (
            {"op": "tail", "job_id": job_id}
            if job_id is not None
            else {"op": "tail_all"}
        )
        writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await writer.drain()
        while True:
            try:
                header = await reader.readexactly(4)
                payload = await reader.readexactly(int.from_bytes(header, "big"))
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # clean end of stream (or server gone)
            yield json.loads(payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
