"""Epsilon indicators (Zitzler et al. 2003) — extension metrics.

``additive_epsilon(A, B)`` is the smallest ``eps`` such that every
point of B is weakly dominated by some point of A after translating A
by ``eps`` in every objective.  The multiplicative variant scales
instead.  Like set coverage they are binary and asymmetric; unlike
coverage they are continuous, which makes small quality gaps between
the parallel variants visible where coverage saturates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mo.dominance import as_points

__all__ = ["additive_epsilon", "multiplicative_epsilon"]


def additive_epsilon(a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> float:
    """Smallest ``eps`` with: ∀ y ∈ B ∃ x ∈ A, x - eps ⪯ y (minimization).

    ``eps <= 0`` means A already weakly covers B.
    """
    pa = as_points(a)
    pb = as_points(b)
    if pb.shape[0] == 0:
        return 0.0
    if pa.shape[0] == 0:
        return float("inf")
    # For each pair (x, y): the eps needed is max_k (x_k - y_k);
    # for each y take the best x; overall take the worst y.
    diff = pa[:, None, :] - pb[None, :, :]
    per_pair = diff.max(axis=2)
    per_b = per_pair.min(axis=0)
    return float(per_b.max())


def multiplicative_epsilon(a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> float:
    """Smallest ``eps`` with: ∀ y ∈ B ∃ x ∈ A, x / eps ⪯ y.

    Requires strictly positive objective values; ``eps <= 1`` means A
    weakly covers B.
    """
    pa = as_points(a)
    pb = as_points(b)
    if pb.shape[0] == 0:
        return 1.0
    if pa.shape[0] == 0:
        return float("inf")
    if np.any(pa <= 0) or np.any(pb <= 0):
        raise ValueError("multiplicative epsilon requires positive objectives")
    ratio = pa[:, None, :] / pb[None, :, :]
    per_pair = ratio.max(axis=2)
    per_b = per_pair.min(axis=0)
    return float(per_b.max())
