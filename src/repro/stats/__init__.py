"""Statistics for the result tables: aggregation, speedup, t-tests."""

from repro.stats.speedup import speedup, speedup_percent, format_speedup
from repro.stats.summary import MeanStd, aggregate, summarize_results
from repro.stats.ttest import pairwise_ttest, TTestResult

__all__ = [
    "MeanStd",
    "TTestResult",
    "aggregate",
    "format_speedup",
    "pairwise_ttest",
    "speedup",
    "speedup_percent",
    "summarize_results",
]
