#!/usr/bin/env python
"""Visualize what the search does: route maps and Pareto fronts as SVG.

Solves one instance, then writes three SVG files next to this script:

* ``routes_before.svg`` — the I1 construction;
* ``routes_after.svg``  — the shortest feasible solution found;
* ``front.svg``         — the Pareto fronts of TSMO vs NSGA-II.

Files are written to the current working directory; open them in any
browser.  Run:  python examples/plot_routes.py
"""

from pathlib import Path

import numpy as np

from repro import (
    NSGA2Params,
    TSMOParams,
    generate_instance,
    i1_construct,
    run_nsga2,
    run_sequential_tsmo,
)
from repro.viz import front_svg, solution_svg, write_svg


def main() -> None:
    out_dir = Path.cwd()
    instance = generate_instance("C1", 60, seed=13)
    params = TSMOParams(max_evaluations=6000, neighborhood_size=60, restart_after=12)

    seed_solution = i1_construct(instance, rng=np.random.default_rng(0))
    write_svg(
        solution_svg(seed_solution, title=f"I1 seed: {seed_solution.objectives}"),
        out_dir / "routes_before.svg",
    )

    tsmo = run_sequential_tsmo(instance, params, seed=4, initial=seed_solution)
    feasible = [e for e in tsmo.archive if e.objectives.feasible]
    best = min(feasible, key=lambda e: e.objectives.distance).item
    write_svg(solution_svg(best), out_dir / "routes_after.svg")

    nsga = run_nsga2(instance, params, NSGA2Params(population_size=24), seed=4)
    write_svg(
        front_svg(
            {"TSMO": tsmo.feasible_front(), "NSGA-II": nsga.feasible_front()},
            x_label="total distance (f1)",
            y_label="vehicles (f2)",
        ),
        out_dir / "front.svg",
    )

    print(f"I1 seed    : {seed_solution.objectives}")
    print(f"TSMO best  : {best.objectives}")
    print(
        "Wrote routes_before.svg, routes_after.svg, front.svg to "
        f"{out_dir} - open them in a browser."
    )


if __name__ == "__main__":
    main()
