"""Targeted fleet reduction: try to empty a route entirely.

The paper's objective ``f2`` pushes the search toward fewer vehicles,
but the TSMO only ever shrinks the fleet when a random relocate or
2-opt* happens to empty a route.  This module provides the classic
*directed* version (a standard VRPTW post-processing step): pick the
route with the fewest customers, attempt to re-insert each of its
customers into the other routes (cheapest feasible position first),
and commit only if the whole route empties.  Repeat until no route can
be eliminated.

Feasibility during re-insertion is configurable:

* ``"hard"`` — insertions must not create tardiness anywhere
  (push-forward check, like I1);
* ``"soft"`` — insertions only respect capacity and the paper's local
  criterion; any tardiness created is reported so the caller (or a
  subsequent TSMO run) can repair it.

Used by ``examples/fleet_tradeoff.py``-style workflows and benchmarked
as an ablation of where the f2 pressure should live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construction import _begin_times, _insertion_feasible_and_shift
from repro.core.operators.feasibility import insertion_admissible
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.vrptw.instance import Instance

__all__ = ["FleetReductionResult", "reduce_fleet"]


@dataclass
class FleetReductionResult:
    """Outcome of a fleet-reduction pass."""

    solution: Solution
    routes_removed: int
    customers_moved: int
    #: tardiness added by soft-mode insertions (0.0 in hard mode).
    tardiness_added: float


def _best_insertion(
    instance: Instance,
    routes: list[list[int]],
    loads: list[float],
    skip: int,
    customer: int,
    mode: str,
) -> tuple[int, int] | None:
    """Cheapest admissible insertion of ``customer`` outside route ``skip``."""
    travel = instance._travel_rows
    demand = instance._demand_l
    best: tuple[float, int, int] | None = None
    for ri, route in enumerate(routes):
        if ri == skip:
            continue
        if loads[ri] + demand[customer] > instance.capacity:
            continue
        begins = _begin_times(instance, route) if mode == "hard" else None
        for pos in range(len(route) + 1):
            i = route[pos - 1] if pos > 0 else 0
            j = route[pos] if pos < len(route) else 0
            if mode == "hard":
                feasible, _ = _insertion_feasible_and_shift(
                    instance, route, begins, pos, customer
                )
                if not feasible:
                    continue
            else:
                if not insertion_admissible(instance, i, customer, j):
                    continue
            delta = travel[i][customer] + travel[customer][j] - travel[i][j]
            if best is None or delta < best[0]:
                best = (delta, ri, pos)
    if best is None:
        return None
    return best[1], best[2]


def reduce_fleet(solution: Solution, *, mode: str = "hard") -> FleetReductionResult:
    """Repeatedly try to eliminate the smallest route.

    Returns the (possibly unchanged) solution; the original is never
    mutated.  ``mode="hard"`` guarantees the result has no more
    tardiness than the input.
    """
    if mode not in ("hard", "soft"):
        raise SearchError(f"mode must be 'hard' or 'soft', got {mode!r}")
    instance = solution.instance
    demand = instance._demand_l
    routes = [list(r) for r in solution.routes]
    loads = [sum(demand[c] for c in r) for r in routes]
    before_tardiness = solution.objectives.tardiness

    removed = 0
    moved = 0
    progress = True
    while progress and len(routes) > 1:
        progress = False
        order = sorted(range(len(routes)), key=lambda ri: len(routes[ri]))
        for victim in order:
            trial_routes = [list(r) for r in routes]
            trial_loads = list(loads)
            ok = True
            placed = 0
            # Hardest-to-place (largest demand) first.
            for customer in sorted(trial_routes[victim], key=lambda c: -demand[c]):
                slot = _best_insertion(
                    instance, trial_routes, trial_loads, victim, customer, mode
                )
                if slot is None:
                    ok = False
                    break
                ri, pos = slot
                trial_routes[ri].insert(pos, customer)
                trial_loads[ri] += demand[customer]
                placed += 1
            if ok:
                del trial_routes[victim]
                del trial_loads[victim]
                routes, loads = trial_routes, trial_loads
                removed += 1
                moved += placed
                progress = True
                break

    if removed == 0:
        return FleetReductionResult(
            solution=solution, routes_removed=0, customers_moved=0, tardiness_added=0.0
        )
    reduced = Solution.from_routes(instance, routes)
    added = max(reduced.objectives.tardiness - before_tardiness, 0.0)
    return FleetReductionResult(
        solution=reduced,
        routes_removed=removed,
        customers_moved=moved,
        tardiness_added=added,
    )
