"""Tests for the public API surface and the CLI."""

import subprocess
import sys

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_all_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart must actually work."""
        instance = repro.generate_instance("R1", 15, seed=42)
        result = repro.run_sequential_tsmo(
            instance,
            repro.TSMOParams(max_evaluations=200, neighborhood_size=20),
            seed=1,
        )
        assert len(result.archive) >= 1

    def test_error_hierarchy(self):
        for err in (
            repro.InstanceError,
            repro.ParseError,
            repro.SolutionError,
            repro.OperatorError,
            repro.SearchError,
            repro.SimulationError,
            repro.BenchmarkError,
        ):
            assert issubclass(err, repro.ReproError)
        assert issubclass(repro.ReproError, Exception)

    def test_subpackage_alls_resolve(self):
        import repro.bench
        import repro.core
        import repro.mo
        import repro.parallel
        import repro.stats
        import repro.tabu
        import repro.vrptw

        for module in (
            repro.bench,
            repro.core,
            repro.mo,
            repro.parallel,
            repro.stats,
            repro.tabu,
            repro.vrptw,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


@pytest.mark.slow
class TestCLI:
    def run_cli(self, *args, env=None):
        import os

        full_env = dict(os.environ)
        if env:
            full_env.update(env)
        return subprocess.run(
            [sys.executable, "-m", "repro.bench.cli", *args],
            capture_output=True,
            text=True,
            timeout=600,
            env=full_env,
        )

    def test_fig1(self):
        proc = self.run_cli("fig1", env={"REPRO_BENCH_SCALE": "0.3"})
        assert proc.returncode == 0
        assert "Figure 1" in proc.stdout

    def test_table_quick(self):
        proc = self.run_cli(
            "table1",
            "--runs",
            "2",
            "--evaluations",
            "400",
            "--quiet",
            env={"REPRO_BENCH_SCALE": "0.35"},
        )
        assert proc.returncode == 0
        assert "Sequential TSMO" in proc.stdout
        assert "TSMO coll." in proc.stdout
        assert "t-tests" in proc.stdout

    def test_bad_target(self):
        proc = self.run_cli("table9")
        assert proc.returncode != 0
