"""Dependency-free SVG visualization of instances, solutions and fronts.

No plotting stack is assumed (this is an offline, headless
reproduction), so figures are written as plain SVG: customer maps with
routes, and 2-D Pareto-front scatter plots.  Used by
``examples/plot_routes.py`` and handy for eyeballing what the search
actually does to a solution.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.solution import Solution
from repro.vrptw.instance import Instance

__all__ = ["front_svg", "solution_svg", "write_svg"]

#: route stroke colors (cycled); chosen for contrast on white.
_PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#17becf",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
)


def _scaler(values_x: np.ndarray, values_y: np.ndarray, size: int, margin: int):
    x_lo, x_hi = float(values_x.min()), float(values_x.max())
    y_lo, y_hi = float(values_y.min()), float(values_y.max())
    span_x = (x_hi - x_lo) or 1.0
    span_y = (y_hi - y_lo) or 1.0

    def to_px(x: float, y: float) -> tuple[float, float]:
        px = margin + (x - x_lo) / span_x * (size - 2 * margin)
        py = size - margin - (y - y_lo) / span_y * (size - 2 * margin)
        return px, py

    return to_px


def solution_svg(solution: Solution, *, size: int = 640, title: str | None = None) -> str:
    """Render a solution's routes as an SVG document string.

    The depot is the black square, customers are dots sized by demand,
    and each vehicle's tour is a colored polyline through its stops.
    """
    instance = solution.instance
    margin = 30
    to_px = _scaler(instance.x, instance.y, size, margin)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    caption = title or (
        f"{instance.name}: {solution.n_routes} routes, "
        f"distance {solution.objectives.distance:.0f}, "
        f"tardiness {solution.objectives.tardiness:.0f}"
    )
    parts.append(
        f'<text x="{margin}" y="20" font-family="monospace" font-size="13">'
        f"{html.escape(caption)}</text>"
    )
    for r, route in enumerate(solution.routes):
        color = _PALETTE[r % len(_PALETTE)]
        points = [to_px(float(instance.x[0]), float(instance.y[0]))]
        points += [
            to_px(float(instance.x[c]), float(instance.y[c])) for c in route
        ]
        points.append(points[0])
        path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.5" opacity="0.85"/>'
        )
    demand_hi = float(instance.demand[1:].max()) or 1.0
    for c in range(1, instance.n_customers + 1):
        px, py = to_px(float(instance.x[c]), float(instance.y[c]))
        radius = 2.0 + 3.0 * float(instance.demand[c]) / demand_hi
        parts.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius:.1f}" '
            f'fill="#333" opacity="0.7"><title>customer {c}: demand '
            f"{instance.demand[c]:.0f}, window [{instance.ready_time[c]:.0f}, "
            f"{instance.due_date[c]:.0f}]</title></circle>"
        )
    dx, dy = to_px(float(instance.x[0]), float(instance.y[0]))
    parts.append(
        f'<rect x="{dx - 6:.1f}" y="{dy - 6:.1f}" width="12" height="12" '
        f'fill="black"><title>depot</title></rect>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def front_svg(
    fronts: dict[str, Sequence | np.ndarray],
    *,
    size: int = 520,
    x_label: str = "distance",
    y_label: str = "vehicles",
    x_index: int = 0,
    y_index: int = 1,
) -> str:
    """Render one or more labelled 2-D fronts as an SVG scatter plot.

    ``fronts`` maps a legend label to an ``(n, >=2)`` objective array;
    ``x_index``/``y_index`` select the plotted columns.
    """
    needed = max(x_index, y_index) + 1
    arrays: dict[str, np.ndarray] = {}
    for label, points in fronts.items():
        arr = np.asarray(points, dtype=np.float64)
        if arr.size == 0:
            arr = np.zeros((0, needed))
        elif arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.shape[1] < needed:
            raise ValueError(
                f"front {label!r} has {arr.shape[1]} objectives, plot needs "
                f"column {max(x_index, y_index)}"
            )
        arrays[label] = arr
    stacked = [a for a in arrays.values() if a.shape[0]]
    if not stacked:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}">'
            "<text x='10' y='20'>(no points)</text></svg>"
        )
    merged = np.vstack(stacked)
    margin = 45
    to_px = _scaler(merged[:, x_index], merged[:, y_index], size, margin)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
        f'<text x="{size // 2}" y="{size - 8}" text-anchor="middle" '
        f'font-family="monospace" font-size="12">{html.escape(x_label)}</text>',
        f'<text x="14" y="{size // 2}" font-family="monospace" font-size="12" '
        f'transform="rotate(-90 14 {size // 2})" text-anchor="middle">'
        f"{html.escape(y_label)}</text>",
    ]
    for k, (label, points) in enumerate(arrays.items()):
        color = _PALETTE[k % len(_PALETTE)]
        for row in points:
            px, py = to_px(float(row[x_index]), float(row[y_index]))
            parts.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" fill="{color}" '
                f'opacity="0.75"/>'
            )
        parts.append(
            f'<text x="{size - margin}" y="{margin + 16 * k}" text-anchor="end" '
            f'font-family="monospace" font-size="12" fill="{color}">'
            f"{html.escape(label)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(svg: str, path: str | Path) -> Path:
    """Write an SVG document to disk and return the path."""
    out = Path(path)
    out.write_text(svg, encoding="utf-8")
    return out
