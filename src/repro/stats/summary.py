"""Mean ± standard-deviation aggregation for the result tables.

The paper reports every quality and runtime column as ``mean ± std``
over 30 runs per problem; :class:`MeanStd` is that pair with the
paper's formatting, and :func:`summarize_results` turns a set of
:class:`~repro.tabu.search.TSMOResult` runs into the per-algorithm
records the table renderer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import BenchmarkError
from repro.tabu.search import TSMOResult

__all__ = ["MeanStd", "aggregate", "summarize_results", "AlgorithmSummary"]


@dataclass(frozen=True, slots=True)
class MeanStd:
    """A ``mean ± std`` cell of the result tables."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".2f"
        return f"{self.mean:{spec}}±{self.std:{spec}}"

    def __str__(self) -> str:
        return format(self, ".2f")


def aggregate(values: Sequence[float]) -> MeanStd:
    """Aggregate a sample into :class:`MeanStd` (ddof=1 like the paper's
    spreadsheet-style std; falls back to 0 for singletons).

    Non-finite samples are rejected outright: a single NaN or inf
    poisons both the mean and the std (``nan±nan`` in a rendered
    table cell), and by then the offending run is unidentifiable — the
    same silent-propagation failure class as the ``speedup([], [])``
    NaN fixed earlier, so it fails loudly here, naming the index.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise BenchmarkError("cannot aggregate an empty sample")
    bad = np.flatnonzero(~np.isfinite(arr))
    if bad.size:
        index = int(bad[0])
        raise BenchmarkError(
            f"cannot aggregate non-finite sample {arr[index]!r} at index "
            f"{index} ({bad.size} of {arr.size} samples are non-finite)"
        )
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return MeanStd(mean=float(arr.mean()), std=std, n=int(arr.size))


@dataclass
class AlgorithmSummary:
    """Aggregated table row data for one algorithm configuration."""

    algorithm: str
    processors: int
    distance: MeanStd
    vehicles: MeanStd
    runtime: MeanStd
    #: per-run best-feasible values, kept for t-tests.
    distance_samples: list[float] = field(default_factory=list)
    vehicle_samples: list[float] = field(default_factory=list)
    runtime_samples: list[float] = field(default_factory=list)
    #: runs that produced no feasible solution (excluded per the paper).
    infeasible_runs: int = 0
    #: which clock the ``runtime`` column aggregated: ``"simulated"``
    #: (cost-model units) or ``"wall"`` (seconds).  One summary never
    #: mixes the two — :func:`summarize_results` rejects mixed-basis
    #: run sets — so this records the unit of the runtime cell.
    runtime_basis: str = "wall"

    @property
    def key(self) -> tuple[str, int]:
        """Configuration identity: (algorithm, processors)."""
        return (self.algorithm, self.processors)


def summarize_results(results: Sequence[TSMOResult]) -> AlgorithmSummary:
    """Aggregate runs of one algorithm configuration into a summary.

    Implements the paper's reporting convention: infeasible archives
    are excluded from the quality columns ("only those solutions were
    considered that did not violate the time-window and capacity
    constraints"); runtime aggregates over all runs.
    """
    if not results:
        raise BenchmarkError("cannot summarize an empty result list")
    algorithms = {r.algorithm for r in results}
    processors = {r.processors for r in results}
    if len(algorithms) != 1 or len(processors) != 1:
        raise BenchmarkError(
            f"mixed configurations in one summary: {algorithms} x {processors}"
        )
    # The runtime column must aggregate one clock, not two: simulated
    # cost-model units and wall-clock seconds are incomparable, and a
    # mean±std over a mix of both is meaningless.  A run set where some
    # runs carry ``simulated_time`` and others don't is a harness bug
    # (e.g. simulated and real-process results merged into one cell),
    # so it fails loudly instead of silently producing a garbage cell.
    simulated = sum(1 for r in results if r.simulated_time is not None)
    if 0 < simulated < len(results):
        raise BenchmarkError(
            f"mixed time basis in one summary of {results[0].algorithm}: "
            f"{simulated} of {len(results)} runs carry simulated_time, "
            f"{len(results) - simulated} are wall-clock only; simulated "
            "units and seconds cannot share one runtime column"
        )
    basis = "simulated" if simulated else "wall"
    distances: list[float] = []
    vehicles: list[float] = []
    runtimes: list[float] = []
    infeasible = 0
    for r in results:
        best = r.best_feasible()
        if best is None:
            infeasible += 1
        else:
            distances.append(best[0])
            vehicles.append(best[1])
        runtimes.append(
            r.simulated_time if r.simulated_time is not None else r.wall_time
        )
    if not distances:
        raise BenchmarkError(
            f"no feasible solutions in any of the {len(results)} runs of "
            f"{results[0].algorithm}; cannot build a quality row"
        )
    return AlgorithmSummary(
        algorithm=results[0].algorithm,
        processors=results[0].processors,
        distance=aggregate(distances),
        vehicles=aggregate(vehicles),
        runtime=aggregate(runtimes),
        distance_samples=distances,
        vehicle_samples=vehicles,
        runtime_samples=runtimes,
        infeasible_runs=infeasible,
        runtime_basis=basis,
    )
