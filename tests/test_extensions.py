"""Tests for the extensions: multiprocessing backend, adaptive memory."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.parallel.adaptive_memory import (
    AdaptiveMemory,
    AdaptiveMemoryParams,
    run_adaptive_memory_tsmo,
)
from repro.parallel.mp_backend import (
    MpAsyncParams,
    RemoteMove,
    pickle_roundtrip_sizes,
    run_multiprocessing_async_tsmo,
    run_multiprocessing_tsmo,
)
from repro.parallel.pool import FaultPlan, PoolParams
from repro.core.construction import i1_construct
from repro.core.solution import Solution
from repro.mo.dominance import dominates
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

#: supervision knobs shrunk so injected failures resolve quickly.
FAST_POOL = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


@pytest.fixture(scope="module")
def small_params():
    return TSMOParams(max_evaluations=150, neighborhood_size=20, restart_after=6)


@pytest.fixture(scope="module")
def mp_baseline(instance, small_params):
    """A fault-free two-worker run; the fault tests compare against it."""
    return run_multiprocessing_tsmo(instance, small_params, n_workers=2, seed=3)


class TestRemoteMove:
    def test_attribute_preserved(self):
        move = RemoteMove(("relocate", 7))
        assert move.attribute == ("relocate", 7)
        assert move.is_tabu({("relocate", 7)})

    def test_apply_refused(self, instance):
        move = RemoteMove("attr")
        with pytest.raises(SearchError, match="pre-applied"):
            move.apply(None)


class TestMultiprocessing:
    def test_payload_sizes(self, instance):
        sizes = pickle_roundtrip_sizes(instance)
        # The instance payload (with its O(N^2) matrix) dwarfs a routes
        # payload — the reason it ships once via the initializer.
        assert sizes["instance_bytes"] > 20 * sizes["routes_bytes"]

    def test_run_small(self, instance):
        params = TSMOParams(
            max_evaluations=150, neighborhood_size=20, restart_after=6
        )
        result = run_multiprocessing_tsmo(instance, params, n_workers=2, seed=1)
        assert result.algorithm == "multiprocessing"
        assert result.evaluations >= params.max_evaluations
        assert result.best_feasible() is not None
        front = result.front()
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_invalid_workers(self, instance):
        with pytest.raises(SearchError):
            run_multiprocessing_tsmo(instance, n_workers=0)

    def test_lockstep_parity_with_sequential(self, instance, small_params):
        """With one worker and one chunk the driver runs in lockstep —
        the worker continues the master's own PCG64 stream — so the run
        is bit-identical to the sequential algorithm, not just close."""
        seq = run_sequential_tsmo(instance, small_params, seed=9)
        par = run_multiprocessing_tsmo(instance, small_params, n_workers=1, seed=9)
        assert np.array_equal(seq.front(), par.front())
        assert seq.evaluations == par.evaluations
        assert seq.iterations == par.iterations
        assert seq.restarts == par.restarts
        report = par.extra["pool"]
        assert report["crashes"] == 0
        assert report["degraded"] is False
        assert report["tasks_completed"] == par.iterations

    def test_worker_objectives_adopted_bit_for_bit(self, mp_baseline, instance):
        """Satellite check: the master keeps the worker-computed
        objectives instead of discarding them — and they must equal an
        eager master-side re-evaluation exactly (per-route statistics
        are a pure function of the route tuple)."""
        assert len(mp_baseline.archive) > 0
        for entry in mp_baseline.archive:
            fresh = Solution(instance, entry.item.routes)
            recomputed = fresh.objectives
            assert recomputed.distance == entry.objectives.distance
            assert recomputed.vehicles == entry.objectives.vehicles
            assert recomputed.tardiness == entry.objectives.tardiness

    def test_pool_report_attached(self, mp_baseline):
        report = mp_baseline.extra["pool"]
        assert report["n_workers"] == 2
        assert report["crashes"] == 0
        assert report["degraded"] is False
        assert report["tasks_completed"] > 0


class TestMultiprocessingFaults:
    def test_injected_crash_keeps_front_bit_identical(
        self, instance, small_params, mp_baseline
    ):
        """Acceptance criterion: kill one worker mid-run; the run
        completes, the front equals the fault-free same-seed run, and
        the pool report records exactly the injected crash, its retry
        and the respawn."""
        plan = FaultPlan(kills=((1, 2, None),))
        faulty = run_multiprocessing_tsmo(
            instance,
            small_params,
            n_workers=2,
            seed=3,
            pool_params=FAST_POOL,
            fault_plan=plan,
        )
        assert np.array_equal(mp_baseline.front(), faulty.front())
        assert faulty.evaluations == mp_baseline.evaluations
        report = faulty.extra["pool"]
        assert report["crashes"] == 1
        assert report["retries"] == 1
        assert report["respawns"] == 1
        assert report["degraded"] is False
        assert report["faults_planned"] == {"kills": 1, "delays": 0}

    def test_total_collapse_degrades_and_completes(
        self, instance, small_params, mp_baseline
    ):
        """Acceptance criterion: every worker killed with a zero respawn
        budget — the driver degrades to master-only execution and still
        returns a valid (and, by deterministic re-seeding, identical)
        result."""
        plan = FaultPlan(kills=((0, 0, None), (1, 0, None)))
        params = PoolParams(
            heartbeat_interval=0.05,
            heartbeat_timeout=10.0,
            task_deadline=10.0,
            backoff_base=0.01,
            poll_interval=0.02,
            respawn_cap=0,
        )
        degraded = run_multiprocessing_tsmo(
            instance,
            small_params,
            n_workers=2,
            seed=3,
            pool_params=params,
            fault_plan=plan,
        )
        report = degraded.extra["pool"]
        assert report["degraded"] is True
        assert report["respawns"] == 0
        assert degraded.evaluations >= small_params.max_evaluations
        assert degraded.best_feasible() is not None
        assert np.array_equal(mp_baseline.front(), degraded.front())


class TestMultiprocessingAsync:
    def test_run_small(self, instance, small_params):
        result = run_multiprocessing_async_tsmo(
            instance,
            small_params,
            n_workers=2,
            seed=4,
            async_params=MpAsyncParams(batch_size=5, max_wait=0.1),
        )
        assert result.algorithm == "multiprocessing_async"
        assert result.evaluations >= small_params.max_evaluations
        assert result.best_feasible() is not None
        assert result.extra["mean_pool_size"] > 0
        assert result.extra["carryover_neighbors"] >= 0
        assert result.extra["pool"]["crashes"] == 0
        front = result.front()
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_params_validation(self):
        with pytest.raises(SearchError):
            MpAsyncParams(batch_size=0)
        with pytest.raises(SearchError):
            MpAsyncParams(max_wait=-1.0)
        with pytest.raises(SearchError):
            MpAsyncParams(poll_timeout=0.0)

    def test_invalid_workers(self, instance):
        with pytest.raises(SearchError):
            run_multiprocessing_async_tsmo(instance, n_workers=0)


class TestAdaptiveMemoryPool:
    def test_harvest_and_capacity(self, instance):
        memory = AdaptiveMemory(capacity=5)
        sol = i1_construct(instance, rng=1)
        for k in range(4):
            memory.harvest(sol, score=float(k))
        assert len(memory.routes) == 5
        # Best-scored routes survive the truncation.
        assert all(r.score <= 1.0 for r in memory.routes)

    def test_construct_is_valid_solution(self, instance):
        memory = AdaptiveMemory(capacity=50)
        rng_pool = np.random.default_rng(0)
        for seed in range(3):
            sol = i1_construct(instance, rng=np.random.default_rng(seed))
            memory.harvest(sol, score=sol.objectives.distance)
        built = memory.construct(instance, rng_pool)
        assert isinstance(built, Solution)
        Solution._validate_routes(instance, built.routes)
        assert all(load <= instance.capacity for load in built.route_loads())

    def test_empty_pool_rejected(self, instance):
        with pytest.raises(SearchError, match="empty"):
            AdaptiveMemory(capacity=5).construct(instance, np.random.default_rng(0))

    def test_params_validation(self):
        with pytest.raises(SearchError):
            AdaptiveMemoryParams(pool_capacity=0)


class TestAdaptiveMemoryDriver:
    def test_run(self, instance):
        params = TSMOParams(
            max_evaluations=900, neighborhood_size=30, restart_after=6
        )
        result = run_adaptive_memory_tsmo(
            instance,
            params,
            AdaptiveMemoryParams(burst_evaluations=250, burst_neighborhood=25),
            seed=2,
        )
        assert result.algorithm == "adaptive_memory"
        assert result.evaluations >= params.max_evaluations
        assert result.best_feasible() is not None

    def test_budget_cap(self, instance):
        params = TSMOParams(max_evaluations=600, neighborhood_size=30)
        result = run_adaptive_memory_tsmo(
            instance,
            params,
            AdaptiveMemoryParams(burst_evaluations=200, burst_neighborhood=20),
            seed=3,
        )
        assert result.evaluations <= params.max_evaluations + 250
