"""Pareto dominance primitives (minimization convention).

A point ``a`` *dominates* ``b`` when it is no worse in every objective
and strictly better in at least one; ``a`` *weakly dominates* ``b``
when it is no worse in every objective.  All functions take either
:class:`~repro.core.objectives.ObjectiveVector` instances, sequences,
or 2-D numpy arrays of points (one row per point).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "dominates",
    "weakly_dominates",
    "non_dominated_mask",
    "non_dominated_indices",
    "non_dominated_sort",
    "as_points",
]


def as_points(points: Sequence | np.ndarray) -> np.ndarray:
    """Coerce a collection of objective vectors to a 2-D float array."""
    if isinstance(points, np.ndarray) and points.ndim == 2:
        return np.asarray(points, dtype=np.float64)
    rows = [
        p.as_array() if hasattr(p, "as_array") else np.asarray(p, dtype=np.float64)
        for p in points
    ]
    if not rows:
        return np.zeros((0, 0))
    return np.vstack(rows)


def dominates(a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def weakly_dominates(a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> bool:
    """True when ``a`` is no worse than ``b`` in every objective."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b))


def non_dominated_mask(points: Sequence | np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of a point set.

    Duplicates of a non-dominated point are all kept (they do not
    dominate each other).  The pairwise comparison is vectorized:
    ``O(n^2 d)`` in numpy, fine for the neighborhood sizes (≤ a few
    hundred) this library works with.
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    # dominated[i] == True iff some j dominates i.
    le = np.all(pts[:, None, :] <= pts[None, :, :], axis=2)  # j <= i elementwise
    lt = np.any(pts[:, None, :] < pts[None, :, :], axis=2)  # j < i somewhere
    dominated_by = le.T & lt.T  # [i, j]: j dominates i
    return ~dominated_by.any(axis=1)


def non_dominated_indices(points: Sequence | np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows, in input order."""
    return np.flatnonzero(non_dominated_mask(points))


def non_dominated_sort(points: Sequence | np.ndarray) -> list[np.ndarray]:
    """Fast-non-dominated-sort into fronts (NSGA-II style).

    Returns a list of index arrays; front 0 is the Pareto front of the
    input, front 1 the front after removing front 0, and so on.  Used
    by the extension indicators and the adaptive-memory variant.
    """
    pts = as_points(points)
    n = pts.shape[0]
    if n == 0:
        return []
    remaining = np.arange(n)
    fronts: list[np.ndarray] = []
    while remaining.size:
        mask = non_dominated_mask(pts[remaining])
        fronts.append(remaining[mask])
        remaining = remaining[~mask]
    return fronts
