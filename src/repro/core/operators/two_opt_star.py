"""2-opt* — inter-route tail crossover (paper §II.B).

"2-opt* interchanges 2 tours by crossing the first half of one tour
with the second half of another and vice versa."  Given cut points on
two routes A and B, the move builds ``A[:i] + B[j:]`` and
``B[:j] + A[i:]``.  Degenerate cuts that reproduce the parent solution
are rejected; cuts at the very ends merge routes (one of the children
becomes empty and its vehicle is released), which — like relocate —
can reduce the vehicle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator
from repro.core.operators.feasibility import edge_admissible
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["TwoOptStar", "TwoOptStarMove"]


@dataclass(frozen=True, slots=True)
class TwoOptStarMove(Move):
    """Cross route ``route_a`` at ``cut_a`` with route ``route_b`` at ``cut_b``.

    ``boundary`` holds the customers adjacent to the two new crossing
    edges (up to four, depot excluded); it identifies the move in the
    tabu list independently of route renumbering.
    """

    route_a: int
    cut_a: int
    route_b: int
    cut_b: int
    boundary: frozenset[int]

    name = "2opt*"

    def apply(self, solution: Solution) -> Solution:
        ra = solution.routes[self.route_a]
        rb = solution.routes[self.route_b]
        if not (0 <= self.cut_a <= len(ra) and 0 <= self.cut_b <= len(rb)):
            raise OperatorError("stale 2-opt* move: cut points out of range")
        new_a = ra[: self.cut_a] + rb[self.cut_b :]
        new_b = rb[: self.cut_b] + ra[self.cut_a :]
        return solution.derive({self.route_a: new_a, self.route_b: new_b})

    @property
    def attribute(self) -> Hashable:
        return ("2opt*", self.boundary)


class TwoOptStar(Operator):
    """Random tail-crossover proposals between two routes."""

    name = "2opt*"

    def propose(
        self, solution: Solution, rng: np.random.Generator
    ) -> TwoOptStarMove | None:
        instance = solution.instance
        if solution.n_routes < 2:
            return None
        capacity = instance.capacity
        for _ in range(self.max_attempts):
            route_a = int(rng.integers(solution.n_routes))
            route_b = int(rng.integers(solution.n_routes))
            if route_a == route_b:
                continue
            ra = solution.routes[route_a]
            rb = solution.routes[route_b]
            cut_a = int(rng.integers(0, len(ra) + 1))
            cut_b = int(rng.integers(0, len(rb) + 1))
            # Degenerate cuts: (0, 0) and (len, len) merely relabel the
            # vehicles; skip them.
            if cut_a == 0 and cut_b == 0:
                continue
            if cut_a == len(ra) and cut_b == len(rb):
                continue
            # Capacity of both children (loads are prefix/suffix sums;
            # routes are short so direct summation is fine).
            demand = instance._demand_l
            load_a_head = sum(demand[c] for c in ra[:cut_a])
            load_b_head = sum(demand[c] for c in rb[:cut_b])
            load_a = solution.route_stats(route_a).load
            load_b = solution.route_stats(route_b).load
            if load_a_head + (load_b - load_b_head) > capacity:
                continue
            if load_b_head + (load_a - load_a_head) > capacity:
                continue
            # New crossing edges (depot at the boundaries).
            tail_a = ra[cut_a - 1] if cut_a > 0 else 0
            head_b = rb[cut_b] if cut_b < len(rb) else 0
            tail_b = rb[cut_b - 1] if cut_b > 0 else 0
            head_a = ra[cut_a] if cut_a < len(ra) else 0
            if edge_admissible(instance, tail_a, head_b) and edge_admissible(
                instance, tail_b, head_a
            ):
                boundary = frozenset(
                    c for c in (tail_a, head_b, tail_b, head_a) if c != 0
                )
                return TwoOptStarMove(
                    route_a=route_a,
                    cut_a=cut_a,
                    route_b=route_b,
                    cut_b=cut_b,
                    boundary=boundary,
                )
        return None
