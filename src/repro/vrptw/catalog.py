"""Named instance sets mirroring the paper's benchmark groups.

Tables I–IV of the paper each aggregate over a group of extended
Solomon problems:

* Table I  — 400 cities, small time windows: classes **C1, R1**;
* Table II — 400 cities, large time windows: classes **C2, R2**;
* Table III — 600 cities, small time windows: classes **C1, R1**;
* Table IV  — 600 cities, large time windows: classes **C2, R2**.

(The captions of Tables II and IV say "small time windows" but list the
(C2, R2) classes and the body text calls them the "large time windows"
problems; we follow the class lists.)

This module maps those groups to reproducible synthetic instances.  A
*scale* factor shrinks the city counts for laptop-size runs while
keeping the class mix; scale 1.0 regenerates the paper-sized problems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.vrptw.generator import GeneratorConfig, InstanceClass, generate_instance
from repro.vrptw.instance import Instance

__all__ = ["InstanceSpec", "TABLE_GROUPS", "instances_for_table", "make_instances"]


@dataclass(frozen=True, slots=True)
class InstanceSpec:
    """A reproducible pointer to one generated instance."""

    instance_class: InstanceClass
    n_customers: int
    seed: int
    replicate: int = 1

    def build(self, config: GeneratorConfig | None = None) -> Instance:
        """Materialize the instance."""
        return generate_instance(
            self.instance_class,
            self.n_customers,
            seed=self.seed,
            config=config,
            replicate=self.replicate,
        )


#: Instance-class mix and paper-scale city counts per table.
TABLE_GROUPS: dict[str, tuple[tuple[InstanceClass, ...], int]] = {
    "table1": ((InstanceClass.C1, InstanceClass.R1), 400),
    "table2": ((InstanceClass.C2, InstanceClass.R2), 400),
    "table3": ((InstanceClass.C1, InstanceClass.R1), 600),
    "table4": ((InstanceClass.C2, InstanceClass.R2), 600),
}

#: Seed base so each (table, class, replicate) triple gets a distinct,
#: stable seed.  Changing this constant redefines the benchmark set.
_SEED_BASE = 190_700


def instances_for_table(
    table: str,
    *,
    scale: float = 1.0,
    replicates: int = 1,
) -> list[InstanceSpec]:
    """Return the instance specs behind one of the paper's tables.

    Parameters
    ----------
    table:
        ``"table1"`` .. ``"table4"``.
    scale:
        Multiplier on the paper's city counts (``1.0`` → 400 or 600
        customers; the bench default uses a small fraction of that).
    replicates:
        Instances per class (the published sets have 10 per class; the
        paper averages over the group).
    """
    key = table.lower()
    if key not in TABLE_GROUPS:
        raise BenchmarkError(
            f"unknown table {table!r}; expected one of {sorted(TABLE_GROUPS)}"
        )
    if scale <= 0:
        raise BenchmarkError(f"scale must be positive, got {scale}")
    if replicates < 1:
        raise BenchmarkError(f"replicates must be >= 1, got {replicates}")
    classes, paper_size = TABLE_GROUPS[key]
    n_customers = max(8, round(paper_size * scale))
    table_index = int(key.removeprefix("table"))
    specs = []
    for class_pos, icls in enumerate(classes):
        for rep in range(1, replicates + 1):
            seed = _SEED_BASE + 1000 * table_index + 100 * class_pos + rep
            specs.append(
                InstanceSpec(
                    instance_class=icls,
                    n_customers=n_customers,
                    seed=seed,
                    replicate=rep,
                )
            )
    return specs


def make_instances(
    specs: list[InstanceSpec], config: GeneratorConfig | None = None
) -> list[Instance]:
    """Materialize a list of specs."""
    return [spec.build(config) for spec in specs]
