"""JSON persistence for table experiments.

Paper-scale runs (``REPRO_BENCH_SCALE=paper``) take a long time; this
module lets the harness run once and re-render/re-analyze forever:
:func:`save_table_data` writes every run's objective front and
runtime/accounting metadata to a human-readable JSON file, and
:func:`load_table_data` reconstructs a :class:`~repro.bench.tables.
TableData` whose derived columns (quality, coverage, speedup, t-tests)
are identical to the live one.  Solutions themselves are *not* stored
(use :meth:`repro.tabu.search.TSMOResult.save` for that); the table
machinery only ever reads objective vectors.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.tables import TableData
from repro.core.objectives import ObjectiveVector
from repro.errors import BenchmarkError
from repro.mo.archive import ArchiveEntry
from repro.persistence import atomic_write_text
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOResult

__all__ = ["save_table_data", "load_table_data"]

#: bumped when the on-disk layout changes.
FORMAT_VERSION = 1

#: every run record must carry exactly these fields.
_REQUIRED_FIELDS = (
    "instance",
    "algorithm",
    "processors",
    "iterations",
    "evaluations",
    "restarts",
    "wall_time",
    "simulated_time",
    "front",
    "params",
)


def _result_record(result: TSMOResult) -> dict:
    record = {
        "instance": result.instance_name,
        "algorithm": result.algorithm,
        "processors": result.processors,
        "iterations": result.iterations,
        "evaluations": result.evaluations,
        "restarts": result.restarts,
        "wall_time": result.wall_time,
        "simulated_time": result.simulated_time,
        "front": [
            [e.objectives.distance, e.objectives.vehicles, e.objectives.tardiness]
            for e in result.archive
        ],
        "params": {
            "max_evaluations": result.params.max_evaluations,
            "neighborhood_size": result.params.neighborhood_size,
            "tabu_tenure": result.params.tabu_tenure,
            "archive_capacity": result.params.archive_capacity,
            "nondom_capacity": result.params.nondom_capacity,
            "restart_after": result.params.restart_after,
            "hard_time_windows": result.params.hard_time_windows,
            "aspiration": result.params.aspiration,
        },
    }
    # Observability payloads appear only when the run was instrumented,
    # so default (uninstrumented) files stay byte-identical to the
    # pre-instrumentation format — crash/resume byte-diffs depend on it.
    if result.profile is not None:
        record["profile"] = result.profile
    if result.metrics is not None:
        record["metrics"] = result.metrics
    return record


def _record_result(record: dict, *, run_index: int | None = None) -> TSMOResult:
    """Rebuild a :class:`TSMOResult` from a stored record, validating it.

    A malformed record (hand-edited file, version skew, torn write that
    slipped past the JSON parser) raises :class:`BenchmarkError` naming
    the offending run index and field instead of a bare ``KeyError``
    deep inside the table machinery.
    """
    where = "record" if run_index is None else f"run {run_index}"
    if not isinstance(record, dict):
        raise BenchmarkError(
            f"{where}: expected a mapping, got {type(record).__name__}"
        )
    missing = [field for field in _REQUIRED_FIELDS if field not in record]
    if missing:
        raise BenchmarkError(f"{where}: missing field(s): {', '.join(missing)}")
    if not isinstance(record["params"], dict):
        raise BenchmarkError(f"{where}: field 'params' must be a mapping")
    try:
        params = TSMOParams(**record["params"])
    except TypeError as exc:
        raise BenchmarkError(f"{where}: field 'params' is invalid: {exc}") from exc
    try:
        archive = [
            ArchiveEntry(None, ObjectiveVector(float(d), int(v), float(t)))
            for d, v, t in record["front"]
        ]
    except (TypeError, ValueError) as exc:
        raise BenchmarkError(f"{where}: field 'front' is malformed: {exc}") from exc
    try:
        result = TSMOResult(
            instance_name=record["instance"],
            algorithm=record["algorithm"],
            params=params,
            archive=archive,
            iterations=int(record["iterations"]),
            evaluations=int(record["evaluations"]),
            restarts=int(record["restarts"]),
            # Timing fields are None for results that never measured
            # them (e.g. pure-sequential runs have no simulated clock).
            wall_time=(
                None if record["wall_time"] is None else float(record["wall_time"])
            ),
            simulated_time=(
                None
                if record["simulated_time"] is None
                else float(record["simulated_time"])
            ),
            processors=int(record["processors"]),
        )
    except (TypeError, ValueError) as exc:
        raise BenchmarkError(f"{where}: invalid field value: {exc}") from exc
    # Optional observability payloads (instrumented runs only).
    result.profile = record.get("profile")
    result.metrics = record.get("metrics")
    return result


def save_table_data(data: TableData, path: str | Path) -> Path:
    """Write a table experiment to JSON; returns the path."""
    records = [
        _result_record(result)
        for key in data.results
        for runs in data.results[key].values()
        for result in runs
    ]
    payload = {
        "format_version": FORMAT_VERSION,
        "table": data.table,
        "n_runs": len(records),
        "runs": records,
    }
    out = Path(path)
    # Crash-safe: a paper-scale run must never leave a half-written
    # results file where the finished one should be.
    atomic_write_text(out, json.dumps(payload, indent=1))
    return out


def load_table_data(path: str | Path) -> TableData:
    """Reload a table experiment written by :func:`save_table_data`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"cannot read table data from {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise BenchmarkError(
            f"{path} has format version {version}, expected {FORMAT_VERSION}"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list):
        raise BenchmarkError(f"{path}: field 'runs' must be a list")
    data = TableData(table=payload["table"])
    for run_index, record in enumerate(runs):
        data.add(_record_result(record, run_index=run_index))
    return data
