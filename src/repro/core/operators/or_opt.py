"""Or-opt — move two consecutive customers within their tour (paper §II.B).

"or-opt moves two consecutive customers to a different place in the
same tour."  The pair keeps its internal order; only the entering and
leaving edges are new, so only those are screened by the local
feasibility criterion.  Capacity is untouched (same route).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator
from repro.core.operators.feasibility import segment_insertion_admissible
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["OrOpt", "OrOptMove"]

#: The segment length Or-opt relocates (the paper fixes it at 2).
SEGMENT_LENGTH = 2


@dataclass(frozen=True, slots=True)
class OrOptMove(Move):
    """Move ``route[start : start+2]`` to position ``insert_at`` of the remainder.

    ``insert_at`` indexes into the route *after* removing the segment.
    """

    route_index: int
    start: int
    insert_at: int
    segment: tuple[int, ...]

    name = "oropt"

    def apply(self, solution: Solution) -> Solution:
        route = solution.routes[self.route_index]
        end = self.start + SEGMENT_LENGTH
        if route[self.start : end] != self.segment:
            raise OperatorError("stale or-opt move: segment no longer in place")
        remainder = route[: self.start] + route[end:]
        new_route = (
            remainder[: self.insert_at] + self.segment + remainder[self.insert_at :]
        )
        return solution.derive({self.route_index: new_route})

    @property
    def attribute(self) -> Hashable:
        return ("oropt", frozenset(self.segment))


class OrOpt(Operator):
    """Random intra-route pair-relocation proposals."""

    name = "oropt"

    def propose(self, solution: Solution, rng: np.random.Generator) -> OrOptMove | None:
        instance = solution.instance
        # Need at least 3 customers on the route: a pair plus at least
        # one alternative insertion point.
        eligible = [
            i for i, r in enumerate(solution.routes) if len(r) >= SEGMENT_LENGTH + 1
        ]
        if not eligible:
            return None
        for _ in range(self.max_attempts):
            route_index = eligible[int(rng.integers(len(eligible)))]
            route = solution.routes[route_index]
            n = len(route)
            start = int(rng.integers(0, n - SEGMENT_LENGTH + 1))
            segment = route[start : start + SEGMENT_LENGTH]
            remainder = route[:start] + route[start + SEGMENT_LENGTH :]
            insert_at = int(rng.integers(0, len(remainder) + 1))
            if insert_at == start:
                continue  # reproduces the parent route
            i = remainder[insert_at - 1] if insert_at > 0 else 0
            j = remainder[insert_at] if insert_at < len(remainder) else 0
            if segment_insertion_admissible(instance, i, segment, j):
                return OrOptMove(
                    route_index=route_index,
                    start=start,
                    insert_at=insert_at,
                    segment=segment,
                )
        return None
