"""Tests for the persistent fault-tolerant worker pool.

Process-free tests (fault-plan parsing, parameter validation, the
execute_task determinism invariant) run first; the process-backed
tests shrink every supervision interval so failure paths resolve in
well under a second of policing time.
"""

import time

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.core.evaluation import Evaluator
from repro.core.operators.registry import default_registry
from repro.errors import WorkerPoolError
from repro.parallel.messages import PoolTask
from repro.parallel.pool import FaultPlan, PoolParams, WorkerPool, execute_task
from repro.vrptw.generator import generate_instance

#: supervision knobs shrunk for tests: failures resolve in milliseconds.
FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


@pytest.fixture(scope="module")
def routes(instance):
    return i1_construct(instance, rng=1).routes


def run_on_master(instance, routes, count, seed, batch_size=None):
    """Ground truth: the same task executed inline, no processes."""
    task = PoolTask(
        task_id=0,
        attempt=0,
        routes=routes,
        count=count,
        batch_size=batch_size or count,
        iteration=1,
        seed=seed,
    )
    neighbors = []
    for batch in execute_task(
        instance, Evaluator(instance), default_registry(), task, -1
    ):
        neighbors.extend(batch.neighbors)
    return tuple(neighbors)


class TestFaultPlanParsing:
    def test_kill_delay_and_mid_task_kill(self):
        plan = FaultPlan.from_env("kill:1@3, delay:0@2:0.5, kill:2@0+4")
        assert plan.kills == ((1, 3, None), (2, 0, 4))
        assert plan.delays == ((0, 2, 0.5),)
        assert plan.action(1, 3) == ("kill", None)
        assert plan.action(2, 0) == ("kill", 4)
        assert plan.action(0, 2) == ("delay", 0.5)
        assert plan.action(0, 0) is None

    def test_empty_spec_is_no_plan(self):
        assert FaultPlan.from_env("") is None
        assert FaultPlan.from_env("   ") is None

    def test_plan_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan(kills=((0, 0, None),))

    @pytest.mark.parametrize(
        "spec", ["kill:x@y", "delay:0@1:soon", "boom:1@2", "kill:1"]
    )
    def test_malformed_rejected(self, spec):
        with pytest.raises(WorkerPoolError, match="malformed"):
            FaultPlan.from_env(spec)


class TestPoolParams:
    def test_defaults_valid(self):
        PoolParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(heartbeat_interval=0.0),
            dict(heartbeat_timeout=0.1, heartbeat_interval=0.25),
            dict(task_deadline=0.0),
            dict(max_retries=-1),
            dict(respawn_cap=-1),
            dict(backoff_base=-0.1),
            dict(backoff_base=1.0, backoff_cap=0.5),
            dict(poll_interval=0.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(WorkerPoolError):
            PoolParams(**kwargs)


class TestExecuteTaskDeterminism:
    def test_same_seed_same_neighbors(self, instance, routes):
        a = run_on_master(instance, routes, 12, seed=77)
        b = run_on_master(instance, routes, 12, seed=77)
        assert a == b
        assert len(a) == 12

    def test_batching_does_not_change_output(self, instance, routes):
        whole = run_on_master(instance, routes, 12, seed=77)
        streamed = run_on_master(instance, routes, 12, seed=77, batch_size=3)
        assert whole == streamed


class TestWorkerPoolHealthy:
    def test_submit_gather_matches_master(self, instance, routes):
        with WorkerPool(instance, 1, params=FAST) as pool:
            tid = pool.submit(routes, 10, seed=42, iteration=1)
            outcome = pool.gather([tid])[tid]
            # Determinism across the process boundary: the worker's
            # neighbors equal an inline execution of the same task.
            assert outcome.neighbors == run_on_master(instance, routes, 10, seed=42)
            assert outcome.cache_delta[1] > 0  # misses were counted

            with pytest.raises(WorkerPoolError, match="count"):
                pool.submit(routes, 0, seed=1)
            with pytest.raises(WorkerPoolError, match="exactly one"):
                pool.submit(routes, 5)
            with pytest.raises(WorkerPoolError, match="exactly one"):
                pool.submit(routes, 5, seed=1, rng_state={"state": 0})

            report = pool.report()
        assert report["crashes"] == 0
        assert report["respawns"] == 0
        assert report["degraded"] is False
        assert report["tasks_completed"] == 1
        assert report["latency"]["p50"] is not None
        assert len(report["per_worker"]) == 1

        with pytest.raises(WorkerPoolError, match="closed"):
            pool.submit(routes, 5, seed=1)

    def test_invalid_worker_count(self, instance):
        with pytest.raises(WorkerPoolError):
            WorkerPool(instance, 0)


class TestFaultTolerance:
    def test_kill_before_task_retries_and_respawns(self, instance, routes):
        plan = FaultPlan(kills=((0, 0, None),))
        with WorkerPool(instance, 1, params=FAST, fault_plan=plan) as pool:
            tid = pool.submit(routes, 10, seed=42, iteration=1)
            outcome = pool.gather([tid])[tid]
            report = pool.report()
        # The injected crash, its retry and the respawn — exactly once.
        assert report["crashes"] == 1
        assert report["retries"] == 1
        assert report["respawns"] == 1
        assert report["degraded"] is False
        assert report["faults_planned"] == {"kills": 1, "delays": 0}
        # Deterministic re-seeding: the retried task regenerates the
        # identical neighbor sequence.
        assert outcome.neighbors == run_on_master(instance, routes, 10, seed=42)

    def test_mid_task_kill_is_exactly_once(self, instance, routes):
        # Worker dies after streaming one 3-neighbor batch; the retry
        # must resume past the delivered prefix: no loss, no duplicates.
        plan = FaultPlan(kills=((0, 0, 1),))
        with WorkerPool(instance, 1, params=FAST, fault_plan=plan) as pool:
            tid = pool.submit(routes, 12, seed=42, iteration=1, batch_size=3)
            outcome = pool.gather([tid])[tid]
            report = pool.report()
        assert report["crashes"] == 1
        assert report["retries"] == 1
        expected = run_on_master(instance, routes, 12, seed=42)
        assert len(outcome.neighbors) == 12
        assert outcome.neighbors == expected

    def test_delayed_worker_is_cut_off_as_straggler(self, instance, routes):
        # The injected 30 s delay dwarfs the 0.75 s deadline, so the
        # cutoff decision has a 40x margin against scheduler jitter.
        # The deadline clock starts when the incarnation is first heard
        # (plus boot_grace while unheard), so neither the first worker's
        # boot nor the respawned replacement's boot — arbitrarily slow
        # under full-suite load — can count against the task and
        # produce a second spurious straggler.
        plan = FaultPlan(delays=((0, 0, 30.0),))
        params = PoolParams(
            heartbeat_interval=0.05,
            heartbeat_timeout=10.0,
            task_deadline=0.75,
            # Must stay well under the injected delay: even if the slot
            # were somehow never heard, deadline + boot_grace (10.75 s)
            # still cuts the 30 s sleeper off as a straggler.
            boot_grace=10.0,
            backoff_base=0.01,
            poll_interval=0.02,
        )
        with WorkerPool(instance, 1, params=params, fault_plan=plan) as pool:
            tid = pool.submit(routes, 8, seed=9, iteration=1)
            outcome = pool.gather([tid])[tid]
            report = pool.report()
        assert report["stragglers"] == 1
        assert report["retries"] == 1
        assert report["respawns"] == 1
        assert outcome.neighbors == run_on_master(instance, routes, 8, seed=9)

    def test_total_collapse_degrades_to_master(self, instance, routes):
        # Both workers die on their first task and the respawn budget is
        # zero: the pool must degrade and still complete every task.
        plan = FaultPlan(kills=((0, 0, None), (1, 0, None)))
        params = PoolParams(
            heartbeat_interval=0.05,
            heartbeat_timeout=10.0,
            task_deadline=10.0,
            backoff_base=0.01,
            poll_interval=0.02,
            respawn_cap=0,
        )
        with WorkerPool(instance, 2, params=params, fault_plan=plan) as pool:
            tids = [pool.submit(routes, 6, seed=s, iteration=1) for s in (1, 2, 3)]
            outcomes = pool.gather(tids)
            report = pool.report()
        assert report["degraded"] is True
        assert report["crashes"] == 2
        assert report["respawns"] == 0
        assert len(outcomes) == 3
        for tid, seed in zip(tids, (1, 2, 3)):
            assert outcomes[tid].neighbors == run_on_master(
                instance, routes, 6, seed=seed
            )

    def test_report_dump_on_request(self, instance, routes, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_REPORT_DIR", str(tmp_path))
        with WorkerPool(instance, 1, params=FAST) as pool:
            tid = pool.submit(routes, 4, seed=5, iteration=1)
            pool.gather([tid])
        dumps = list(tmp_path.glob("pool-*.json"))
        assert len(dumps) == 1
        import json

        payload = json.loads(dumps[0].read_text())
        assert payload["tasks_completed"] == 1
        assert payload["n_workers"] == 1


class TestShutdownSurface:
    def test_submit_and_poll_after_shutdown_raise(self, instance, routes):
        # Regression: submitting to a shut-down pool used to enqueue
        # onto dead worker queues and hang (a later poll would dispatch
        # to a terminated process); now both raise immediately.
        pool = WorkerPool(instance, 1, params=FAST)
        tid = pool.submit(routes, 4, seed=1, iteration=1)
        pool.gather([tid])
        pool.shutdown()
        with pytest.raises(WorkerPoolError, match="shut-down"):
            pool.submit(routes, 4, seed=2, iteration=1)
        with pytest.raises(WorkerPoolError, match="shut-down"):
            pool.poll(0.01)
        with pytest.raises(WorkerPoolError):
            pool.cancel_tag("any")

    def test_report_readable_after_shutdown(self, instance, routes):
        with WorkerPool(instance, 1, params=FAST) as pool:
            tid = pool.submit(routes, 4, seed=1, iteration=1)
            pool.gather([tid])
        report = pool.report()  # the context manager already closed it
        assert report["tasks_completed"] == 1
        assert report["n_workers"] == 1
        pool.shutdown()  # idempotent

    def test_shutdown_is_close_alias(self, instance):
        assert WorkerPool.shutdown is WorkerPool.close


class TestCancelTag:
    def test_pending_tasks_dropped_inflight_drained(self, instance, routes):
        with WorkerPool(instance, 1, params=FAST) as pool:
            keep = pool.submit(routes, 4, seed=1, iteration=1, tag="keep")
            doomed = [
                pool.submit(routes, 4, seed=s, iteration=1, tag="doomed")
                for s in (2, 3, 4)
            ]
            cancelled = pool.cancel_tag("doomed")
            assert sorted(cancelled) == sorted(doomed)
            assert pool.cancel_tag("doomed") == []  # idempotent
            outcome = pool.gather([keep])[keep]
            # No cancelled batch is ever delivered after cancel_tag.
            deadline = 40
            while pool.backlog() and deadline:
                assert all(e.tag != "doomed" for e in pool.poll(0.02))
                deadline -= 1
            report = pool.report()
        assert outcome.neighbors == run_on_master(instance, routes, 4, seed=1)
        assert report["cancelled_tasks"] == 3
        assert report["tasks_completed"] >= 1

    def test_events_carry_tags(self, instance, routes):
        with WorkerPool(instance, 1, params=FAST) as pool:
            pool.submit(routes, 4, seed=7, iteration=1, tag="job-x")
            tags = set()
            neighbors = []
            while pool.backlog():
                for event in pool.poll(0.05):
                    tags.add(event.tag)
                    neighbors.extend(event.neighbors)
            assert tags == {"job-x"}
            assert tuple(neighbors) == run_on_master(instance, routes, 4, seed=7)


class TestCancelCompletionRace:
    """A task finishing while its cancel is in flight must count once.

    The window: the worker streams the final batch into the result
    queue, and before the master drains it ``cancel_tag`` marks the
    task cancelled.  The invariant pinned here is conservation —
    every resolved task lands in exactly one of ``tasks_completed`` or
    ``cancelled_tasks`` — plus silence (no event with the tag is ever
    delivered after ``cancel_tag`` returns).
    """

    def test_finished_but_undrained_task_counts_once(self, instance, routes):
        # The injected delay guarantees the first poll dispatches the
        # task but cannot deliver any of its output; the sleep then
        # guarantees the final batch is sitting undrained in the result
        # queue when the cancel lands.
        plan = FaultPlan(delays=((0, 0, 0.2),))
        with WorkerPool(instance, 1, params=FAST, fault_plan=plan) as pool:
            tid = pool.submit(routes, 4, seed=3, iteration=1, tag="j")
            assert pool.poll(0.001) == []
            time.sleep(1.0)  # worker finishes; final batch lands undrained
            assert pool.cancel_tag("j") == [tid]
            assert pool.cancel_tag("j") == []  # idempotent, still counted once
            deadline = 40
            while pool.backlog() and deadline:
                assert pool.poll(0.02) == []  # the finish drains silently
                deadline -= 1
            report = pool.report()
        assert report["tasks_completed"] == 0
        assert report["cancelled_tasks"] == 1
        assert report["cancelled_completions"] == 1
        assert report["crashes"] == 0

    def test_tag_reuse_after_cancel_is_fresh(self, instance, routes):
        # A new task under a previously-cancelled tag must behave as if
        # the tag were never seen: delivered exactly once, in full.
        with WorkerPool(instance, 1, params=FAST) as pool:
            first = pool.submit(routes, 4, seed=5, iteration=1, tag="j")
            assert pool.cancel_tag("j") == [first]
            second = pool.submit(routes, 4, seed=6, iteration=2, tag="j")
            outcome = pool.gather([second])[second]
            report = pool.report()
        assert outcome.neighbors == run_on_master(instance, routes, 4, seed=6)
        assert report["tasks_completed"] == 1
        assert report["cancelled_tasks"] == 1
        assert report["cancelled_completions"] == 0  # dropped pre-dispatch

    def test_mixed_workload_counts_are_conserved(self, instance, routes):
        submitted = 6
        with WorkerPool(instance, 2, params=FAST) as pool:
            ids = [
                pool.submit(
                    routes, 4, seed=s, iteration=1, tag="a" if s % 2 else "b"
                )
                for s in range(submitted)
            ]
            pool.poll(0.05)
            pool.cancel_tag("a")
            deadline = 100
            while pool.backlog() and deadline:
                pool.poll(0.02)
                deadline -= 1
            report = pool.report()
        assert deadline > 0, "pool failed to drain"
        assert len(ids) == submitted
        assert (
            report["tasks_completed"] + report["cancelled_tasks"] == submitted
        )
        assert report["cancelled_completions"] <= report["cancelled_tasks"]
