"""Shared-memory instance broadcast for the real-process pool.

Every worker spawn used to unpickle the full :class:`Instance` — on a
400-customer problem that is ~1.3 MB, dominated by the ``(N+1)^2``
float64 travel matrix, paid again on every respawn.  This module puts
the seven instance arrays into one :mod:`multiprocessing.shared_memory`
segment at pool startup; workers attach by name and rebuild the
instance with :meth:`Instance.from_validated_arrays` (no validation, no
O(N^2) travel recompute), so the per-spawn payload collapses to a
~300-byte :class:`SharedInstanceRef` descriptor.

Lifecycle contract (see ``WorkerPool``):

* the **master** calls :func:`share_instance` once, passes the
  ``.ref`` to workers, and calls :meth:`SharedInstance.destroy` in
  ``shutdown()`` — unconditionally, on every exit path, which both
  closes its mapping and unlinks the segment;
* **workers** call :meth:`SharedInstanceRef.attach` and keep the
  mapping for the life of the process (worker death releases it; the
  master's ``unlink`` is what removes the segment from the system).

Python 3.11 wrinkle: ``SharedMemory(name=...)`` registers the segment
with the resource tracker even on a plain attach (``track=False`` only
exists from 3.13).  That is harmless *here*: spawned workers inherit
the master's tracker process (the fd rides in the spawn preparation
data), and the tracker cache is a set, so the duplicate registration
dedupes to a no-op.  Crucially, :meth:`attach` must NOT "fix" this by
unregistering — the cache is shared, so a child-side unregister would
erase the master's sole registration and break both ``unlink()``
bookkeeping and the crashed-master safety net (the tracker unlinking
the segment when the creating interpreter dies uncleanly).
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.vrptw.instance import Instance

__all__ = [
    "SharedInstance",
    "SharedInstanceRef",
    "SharedInstanceStore",
    "instance_fingerprint",
    "share_instance",
]

#: (field name, ndim) of every array shipped through the segment, in
#: segment order.  All are float64; 1-D arrays have length ``n_sites``
#: and the travel matrix is ``n_sites x n_sites``.
_FIELDS: tuple[tuple[str, int], ...] = (
    ("x", 1),
    ("y", 1),
    ("demand", 1),
    ("ready_time", 1),
    ("due_date", 1),
    ("service_time", 1),
    ("travel", 2),
)


def _layout(n_sites: int) -> tuple[dict[str, tuple[int, tuple[int, ...]]], int]:
    """Per-field (byte offset, shape) and the total segment size."""
    itemsize = np.dtype(np.float64).itemsize
    offsets: dict[str, tuple[int, tuple[int, ...]]] = {}
    pos = 0
    for name, ndim in _FIELDS:
        shape = (n_sites,) if ndim == 1 else (n_sites, n_sites)
        offsets[name] = (pos, shape)
        pos += itemsize * int(np.prod(shape))
    return offsets, pos


@dataclass(frozen=True, slots=True)
class SharedInstanceRef:
    """What actually crosses the process boundary: name + metadata.

    Pickles to a few hundred bytes regardless of instance size.  The
    scalars (``capacity``, ``n_vehicles``, ``instance_name``) ride here
    rather than in the segment — they are cheap, and keeping the segment
    pure float64 keeps the layout trivial.
    """

    segment: str
    n_sites: int
    instance_name: str
    capacity: float
    n_vehicles: int

    def attach(self) -> tuple[Instance, shared_memory.SharedMemory]:
        """Map the segment and rebuild the instance around its buffers.

        Returns the instance *and* the mapping: the caller must keep
        the :class:`~multiprocessing.shared_memory.SharedMemory` object
        alive as long as the instance is in use (the arrays are views
        into its buffer) and ``close()`` it when done.  Never
        ``unlink()`` from an attach — the creator owns the segment.
        """
        # NB: this re-registers the name with the (shared) resource
        # tracker on 3.11/3.12; the set-backed cache dedupes it, and
        # unregistering here would clobber the creator's registration —
        # see the module docstring.
        shm = shared_memory.SharedMemory(name=self.segment)
        offsets, _ = _layout(self.n_sites)
        arrays = {
            name: np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=off)
            for name, (off, shape) in offsets.items()
        }
        instance = Instance.from_validated_arrays(
            name=self.instance_name,
            capacity=self.capacity,
            n_vehicles=self.n_vehicles,
            **arrays,
        )
        return instance, shm


@dataclass(slots=True)
class SharedInstance:
    """The creator's handle: the live segment plus its wire descriptor."""

    ref: SharedInstanceRef
    shm: shared_memory.SharedMemory
    _destroyed: bool = False

    def destroy(self) -> None:
        """Close and unlink the segment.  Idempotent, never raises.

        Called from ``WorkerPool.shutdown`` on every exit path; workers
        that are still attached keep their mapping valid until they
        exit (POSIX unlink semantics), so destroy-before-join is safe.
        """
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - already closed
            pass
        try:
            self.shm.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass


def instance_fingerprint(instance: Instance) -> str:
    """A content hash identifying an instance's *data*, not its object.

    sha256 over the scalar metadata and the raw bytes of every shipped
    array (travel included, so a hand-edited matrix never collides with
    the euclidean one its coordinates imply).  Two instances with equal
    fingerprints are interchangeable for solving: same neighborhoods,
    same objectives, same trajectories per seed.  This is the dedup key
    of :class:`SharedInstanceStore`, the identity recorded in the serve
    ledger's ``accepted`` entries and in serve-job checkpoints, and the
    thing recovery compares before resuming a job — a restarted
    scheduler constructed over a *different* instance must fail those
    jobs loudly, never resume them silently.
    """
    digest = hashlib.sha256()
    # capacity normalized through float: the wire codec
    # (``instance_to_wire``) coerces it, and an int-vs-float capacity
    # must not make otherwise-identical instances look different.
    digest.update(
        f"{instance.name}|{float(instance.capacity)!r}|"
        f"{int(instance.n_vehicles)}|{instance.n_sites}".encode()
    )
    for name, _ in _FIELDS:
        arr = np.ascontiguousarray(getattr(instance, name), dtype=np.float64)
        digest.update(arr.tobytes())
    return digest.hexdigest()


def share_instance(instance: Instance) -> SharedInstance:
    """Copy an instance's arrays into a fresh shared-memory segment.

    The segment is unlinked before re-raising if anything fails between
    its creation and the handle's return — a half-built broadcast must
    not leak into ``/dev/shm`` just because the copy (or the ref
    construction) blew up before any owner existed to destroy it.
    """
    n_sites = instance.n_sites
    offsets, total = _layout(n_sites)
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        for name, (off, shape) in offsets.items():
            view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf, offset=off)
            view[:] = getattr(instance, name)
        ref = SharedInstanceRef(
            segment=shm.name,
            n_sites=n_sites,
            instance_name=instance.name,
            capacity=instance.capacity,
            n_vehicles=instance.n_vehicles,
        )
    except BaseException:
        try:
            shm.close()
        finally:
            shm.unlink()
        raise
    return SharedInstance(ref=ref, shm=shm)


class SharedInstanceStore:
    """A refcounted registry of shared instance segments.

    The multi-tenant solve service shares N *different* instances
    concurrently — one segment per distinct instance content, not one
    per job.  :meth:`acquire` keys segments by
    :func:`instance_fingerprint`, so two jobs solving the same instance
    map the same segment; each acquire registers an *owner* (the job
    id) and :meth:`release` unlinks the segment when its last owner
    reaches a terminal state.  Single-threaded by design: the scheduler
    pump (one event loop) is the only caller, exactly like the pool.

    :meth:`segment_count` exists for the leak assertions — it must read
    0 after every owner released (or after :meth:`close`).
    """

    def __init__(self) -> None:
        #: fingerprint -> (live segment handle, owner ids).
        self._entries: dict[str, tuple[SharedInstance, set[object]]] = {}
        self._closed = False

    def acquire(
        self,
        instance: Instance,
        owner: object,
        *,
        fingerprint: str | None = None,
    ) -> SharedInstanceRef:
        """Register ``owner`` on ``instance``'s segment (creating it on
        first acquire) and return the wire ref tasks should carry."""
        if self._closed:
            raise ValueError("cannot acquire from a closed SharedInstanceStore")
        fp = fingerprint or instance_fingerprint(instance)
        entry = self._entries.get(fp)
        if entry is None:
            shared = share_instance(instance)
            entry = (shared, set())
            self._entries[fp] = entry
        entry[1].add(owner)
        return entry[0].ref

    def release(self, fingerprint: str, owner: object) -> bool:
        """Drop one owner; unlink the segment when none remain.

        Idempotent per ``(fingerprint, owner)`` — terminal transitions
        may race a close, and a double release must never unlink a
        segment another job still maps.  Returns whether the segment
        was destroyed by this call.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            return False
        entry[1].discard(owner)
        if entry[1]:
            return False
        del self._entries[fingerprint]
        entry[0].destroy()
        return True

    def segment_count(self) -> int:
        """Live segments (the number that must return to zero)."""
        return len(self._entries)

    def fingerprints(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def close(self) -> None:
        """Destroy every remaining segment.  Idempotent, never raises."""
        self._closed = True
        entries, self._entries = self._entries, {}
        for shared, _ in entries.values():
            shared.destroy()
