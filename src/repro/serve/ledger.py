"""The durable job ledger: what makes the scheduler *supervised*.

Every job the solve service accepts is journaled to one append-only,
fsynced JSONL file (``serve_ledger.jsonl`` in the scheduler's
checkpoint directory) through the same durability discipline as the
run manifest: one complete line per record, flushed and fsynced before
the call returns, so a crash — SIGKILL, OOM, node loss — can tear at
most the very last line.  The ledger is an *episode* log:

* ``accepted`` opens a job's episode and carries its full serialized
  :class:`~repro.serve.job.JobSpec` (everything a restarted scheduler
  needs to rebuild the job);
* ``done`` / ``cancelled`` / ``failed`` close it — exactly one
  terminal record per episode is the conservation invariant
  :meth:`JobLedger.audit` checks;
* ``retry`` / ``preempted`` / ``recovered`` / ``checkpoint_corrupt``
  are informational waypoints inside an episode.

:meth:`JobLedger.replay` returns the *open* episodes — the jobs a
crashed scheduler accepted but never finished.  A restarted scheduler
re-admits every one of them with ``resume=True``: jobs that reached a
periodic checkpoint continue bit-identically from their snapshot,
jobs that never snapshotted restart fresh, and either way no accepted
job is ever silently lost.
"""

from __future__ import annotations

import json

from pathlib import Path
from typing import Any, Dict, Iterator, Tuple

from repro.errors import LedgerError
from repro.obs.timeutil import utc_timestamp
from repro.persistence.atomic import append_line, iter_durable_lines

__all__ = ["JobLedger", "LEDGER_FILENAME", "TERMINAL_EVENTS"]

#: ledger line schema version.
LEDGER_VERSION = 1

#: the ledger file's name inside the scheduler's checkpoint directory.
LEDGER_FILENAME = "serve_ledger.jsonl"

#: events that close a job episode.
TERMINAL_EVENTS = frozenset({"done", "cancelled", "failed"})

#: every event kind the ledger accepts.  ``wrong_instance`` is a
#: waypoint (like ``checkpoint_corrupt``): it marks that recovery found
#: a job whose recorded instance fingerprint disagrees with the
#: instance actually available, just before the terminal ``failed``.
EVENT_KINDS = TERMINAL_EVENTS | {
    "accepted",
    "retry",
    "preempted",
    "recovered",
    "checkpoint_corrupt",
    "wrong_instance",
}


class JobLedger:
    """Reader/writer of one scheduler's durable job journal."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, event: str, job_id: str, **fields: Any) -> None:
        """Append one durable record (write + flush + fsync)."""
        if event not in EVENT_KINDS:
            raise LedgerError(f"unknown ledger event kind {event!r}")
        entry = {
            "v": LEDGER_VERSION,
            "event": event,
            "job": job_id,
            "written_at": utc_timestamp(),
        }
        entry.update(fields)
        append_line(self.path, json.dumps(entry, sort_keys=True))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Dict[str, Any]]:
        """Yield every well-formed record in append order.

        A torn *final* line (the crash-mid-append signature the append
        discipline explicitly permits) is dropped; malformed content
        anywhere earlier raises :class:`~repro.errors.LedgerError` —
        recovering jobs from a lying ledger could lose or duplicate
        accepted work.
        """
        if not self.path.exists():
            return
        for line_no, line, is_last in iter_durable_lines(self.path):
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("ledger entry is not an object")
                if entry.get("v") != LEDGER_VERSION:
                    raise ValueError(
                        f"unsupported ledger version {entry.get('v')!r}"
                    )
                if entry.get("event") not in EVENT_KINDS:
                    raise ValueError(f"unknown event {entry.get('event')!r}")
                if not entry.get("job"):
                    raise ValueError("ledger entry names no job")
            except (ValueError, TypeError) as exc:
                if is_last:
                    # torn tail: the record was never durably complete,
                    # so whatever it described simply did not happen.
                    break
                raise LedgerError(
                    f"ledger {self.path} line {line_no} is corrupt: {exc}"
                ) from exc
            yield entry

    def replay(self) -> Dict[str, Dict[str, Any]]:
        """Map each *open* episode's job id to its ``accepted`` record.

        These are exactly the jobs a restarted scheduler must re-admit:
        accepted (durably) but never driven to a terminal state.
        Preserves acceptance order (dict insertion order).
        """
        open_episodes: Dict[str, Dict[str, Any]] = {}
        for entry in self.entries():
            event = entry["event"]
            if event == "accepted":
                open_episodes[entry["job"]] = entry
            elif event in TERMINAL_EVENTS:
                open_episodes.pop(entry["job"], None)
        return open_episodes

    def audit(self) -> Dict[str, Any]:
        """The conservation audit over the whole ledger.

        Counts every event kind and checks the episode invariant:
        every ``accepted`` is closed by exactly one terminal record
        (``open == 0``), no terminal arrives without an open episode
        (``orphan_terminals == 0`` — a duplicate terminal would
        double-count a job), and no job is re-accepted while its
        episode is still open (``duplicate_accepts == 0``).
        """
        counts = {kind: 0 for kind in sorted(EVENT_KINDS)}
        open_jobs: Dict[str, bool] = {}
        orphan_terminals = 0
        duplicate_accepts = 0
        for entry in self.entries():
            event, job = entry["event"], entry["job"]
            counts[event] += 1
            if event == "accepted":
                if open_jobs.get(job):
                    duplicate_accepts += 1
                open_jobs[job] = True
            elif event in TERMINAL_EVENTS:
                if not open_jobs.get(job):
                    orphan_terminals += 1
                open_jobs[job] = False
        open_count = sum(1 for still_open in open_jobs.values() if still_open)
        terminal = sum(counts[kind] for kind in TERMINAL_EVENTS)
        return {
            "events": counts,
            "accepted": counts["accepted"],
            "terminal": terminal,
            "open": open_count,
            "orphan_terminals": orphan_terminals,
            "duplicate_accepts": duplicate_accepts,
            "conserved": (
                open_count == 0
                and orphan_terminals == 0
                and duplicate_accepts == 0
                and counts["accepted"] == terminal
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"JobLedger({str(self.path)!r})"
