"""Direct (in-process) tests of the repro-bench CLI wiring."""

import pytest

from repro.bench.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    # Shrink everything so CLI paths run in seconds.
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    monkeypatch.setenv("REPRO_BENCH_RUNS", "2")


class TestCLI:
    def test_fig1_prints_figure(self, capsys):
        assert main(["fig1", "--evaluations", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_table_prints_rows_and_wall_time(self, capsys):
        assert main(["table1", "--evaluations", "300", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Sequential TSMO" in out
        assert "TSMO coll." in out
        assert "regenerated in" in out

    def test_seed_override_changes_nothing_structural(self, capsys):
        assert main(["table1", "--evaluations", "300", "--seed", "99", "--quiet"]) == 0
        assert "Sequential TSMO" in capsys.readouterr().out

    def test_progress_lines_go_to_stderr(self, capsys):
        assert main(["table1", "--evaluations", "300"]) == 0
        captured = capsys.readouterr()
        assert "..." in captured.err
        assert "..." not in captured.out.split("Algorithm")[0]

    def test_invalid_target_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_save_and_render_roundtrip(self, capsys, tmp_path):
        saved = tmp_path / "t1.json"
        assert (
            main(["table1", "--evaluations", "300", "--quiet", "--save", str(saved)])
            == 0
        )
        first = capsys.readouterr().out
        assert saved.exists()
        assert main(["render", str(saved)]) == 0
        rendered = capsys.readouterr().out
        # The re-rendered rows match the live run's rows.
        live_rows = [l for l in first.splitlines() if "TSMO" in l]
        rerendered_rows = [l for l in rendered.splitlines() if "TSMO" in l]
        assert live_rows == rerendered_rows

    def test_render_without_path_fails(self, capsys):
        assert main(["render"]) == 2
