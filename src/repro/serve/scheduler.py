"""The multi-tenant solve scheduler: one pool, many jobs, fair shares.

:class:`SolveScheduler` multiplexes any number of concurrent solve
jobs onto **one** shared :class:`~repro.parallel.pool.WorkerPool` for
a single problem instance (the workers hold the instance and its
O(N²) travel matrix; shipping a new instance means starting a new
scheduler).  The design is built around one invariant:

    *only the pump touches the pool.*

The pool is not thread-safe, so every pool call — dispatch, poll,
cancel — happens inside the single :meth:`_pump` coroutine; the
blocking ``pool.poll`` runs via ``asyncio.to_thread`` so the event
loop stays live for submissions.  Client-facing methods
(:meth:`submit`, :meth:`cancel`) only mutate scheduler state; the pump
applies their effects between polls.

Scheduling is three layered decisions, made every pump cycle:

* **admission** — :meth:`submit` bounds the wait queue
  (``max_queued``): overload is *rejected* loudly with
  :class:`~repro.errors.AdmissionError`, never silently dropped.
  Admission into the running set (``max_active``) pops the bounded
  queue highest-priority-first, FIFO within a priority level.
* **fairness** — a weighted :class:`DeficitRoundRobin` over *tenants*
  arbitrates which ready job dispatches its next iteration; the charge
  is the iteration's neighbor count, so tenants receive pool work in
  proportion to their weights regardless of how many jobs each has
  in flight.
* **flow control** — dispatch stops once the pool backlog reaches
  ``max_inflight`` tasks, so the fairness decision is re-made at every
  slot rather than buried in a deep FIFO queue.

Exactly-once per job rides on the pool's own machinery: every task is
tagged with its job id, retries re-seed deterministically, and the
delivered-prefix offsets guarantee no neighbor is lost or duplicated —
the service adds nothing but the tag.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time

from dataclasses import dataclass

from repro.errors import AdmissionError, ServeError, WorkerPoolError
from repro.obs import NULL_OBS
from repro.parallel.pool import WorkerPool
from repro.persistence import CheckpointPlan
from repro.serve.job import Job, JobSpec, JobState

__all__ = ["DeficitRoundRobin", "ServeParams", "SolveScheduler"]

#: histogram buckets for job latency / queue-wait observations (seconds).
_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


@dataclass(frozen=True, slots=True)
class ServeParams:
    """Knobs of the solve service.

    ``quantum`` is the deficit round-robin credit (in neighbors) a
    weight-1.0 tenant accrues per replenishment round; larger values
    trade fairness granularity for fewer arbitration decisions.
    ``max_inflight`` bounds the pool backlog the dispatcher maintains
    (default ``2 * n_workers``: enough to keep every worker busy while
    the next fairness decision is being made).
    """

    max_active: int = 64
    max_queued: int = 128
    pump_interval: float = 0.02
    quantum: float = 32.0
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ServeError("max_active must be >= 1")
        if self.max_queued < 0:
            raise ServeError("max_queued must be >= 0")
        if self.pump_interval <= 0:
            raise ServeError("pump_interval must be positive")
        if self.quantum <= 0:
            raise ServeError("quantum must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServeError("max_inflight must be >= 1")


class DeficitRoundRobin:
    """Weighted deficit round-robin over tenants (pure, deterministic).

    Each tenant holds a *deficit* (spendable credit).  A replenishment
    round grants every backlogged tenant ``quantum * weight`` credit;
    serving a tenant charges the served work's cost.  :meth:`pick`
    collapses the round loop analytically: it computes how many whole
    rounds each backlogged tenant needs before it can afford its next
    item, grants that many rounds to all of them at once, and serves
    the first affordable tenant in rotation order — O(tenants) per
    decision, bit-for-bit reproducible, and long-run service shares
    proportional to weights.

    Idle tenants forfeit accumulated credit (the classic DRR rule):
    fairness divides the pool among tenants that *want* work now, and
    a tenant returning from idle must not burst ahead on stale credit.
    """

    def __init__(self, quantum: float = 32.0) -> None:
        if quantum <= 0:
            raise ServeError("quantum must be positive")
        self.quantum = float(quantum)
        self._deficit: dict[str, float] = {}
        self._weight: dict[str, float] = {}
        self._order: list[str] = []
        self._cursor = 0

    def ensure(self, tenant: str, weight: float = 1.0) -> None:
        """Register a tenant (idempotent; first registration wins the
        rotation position, :meth:`set_weight` adjusts later)."""
        if tenant not in self._weight:
            self._order.append(tenant)
            self._deficit[tenant] = 0.0
            self._weight[tenant] = float(weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServeError("tenant weight must be positive")
        self.ensure(tenant, weight)
        self._weight[tenant] = float(weight)

    def pick(self, costs: dict[str, float]) -> str | None:
        """Choose which backlogged tenant serves next.

        ``costs`` maps each tenant with ready work to the cost of its
        next item; the winner's deficit is charged.  Returns ``None``
        only for an empty ``costs``.
        """
        if not costs:
            return None
        for tenant in costs:
            self.ensure(tenant)
        # Idle tenants lose their savings.
        for tenant in self._order:
            if tenant not in costs:
                self._deficit[tenant] = 0.0
        # Rotation order starting at the cursor.
        n = len(self._order)
        rotation = [
            self._order[(self._cursor + i) % n]
            for i in range(n)
            if self._order[(self._cursor + i) % n] in costs
        ]
        rounds = {
            tenant: max(
                0,
                math.ceil(
                    (costs[tenant] - self._deficit[tenant])
                    / (self.quantum * self._weight[tenant])
                ),
            )
            for tenant in rotation
        }
        need = min(rounds.values())
        winner = next(t for t in rotation if rounds[t] == need)
        if need:
            for tenant in rotation:
                self._deficit[tenant] += need * self.quantum * self._weight[tenant]
        self._deficit[winner] -= costs[winner]
        self._cursor = (self._order.index(winner) + 1) % n
        return winner

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DeficitRoundRobin(quantum={self.quantum}, tenants={self._order})"


class SolveScheduler:
    """Multi-tenant solve service over one shared worker pool.

    Use as an async context manager (or call :meth:`start` /
    :meth:`close` explicitly)::

        async with SolveScheduler(instance, n_workers=2) as scheduler:
            job = scheduler.submit(JobSpec(job_id="a", seed=7))
            result = await job.wait()

    ``checkpoint_dir`` enables per-job snapshots: each job writes
    ``serve_<job>.ckpt`` on its ``checkpoint_every`` cadence, and a job
    resubmitted with ``resume=True`` — to this scheduler or a brand-new
    one after a crash — continues from its snapshot bit-identically.
    """

    def __init__(
        self,
        instance,
        *,
        n_workers: int = 2,
        params: ServeParams | None = None,
        pool_params=None,
        tenant_weights: dict[str, float] | None = None,
        checkpoint_dir=None,
        checkpoint_every: int | None = None,
        obs=NULL_OBS,
        fault_plan=None,
    ) -> None:
        if n_workers < 1:
            raise ServeError("need at least one worker process")
        self.instance = instance
        self.n_workers = n_workers
        self.params = params or ServeParams()
        self.pool_params = pool_params
        self.fault_plan = fault_plan
        self.obs = obs
        self._weights = dict(tenant_weights or {})
        self._plan = (
            CheckpointPlan(checkpoint_dir, every=checkpoint_every)
            if checkpoint_dir is not None
            else None
        )
        self._drr = DeficitRoundRobin(self.params.quantum)
        for tenant, weight in self._weights.items():
            self._drr.set_weight(tenant, weight)
        self._jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, Job]] = []
        self._active: dict[str, Job] = {}
        self._seq = 0
        self._pool: WorkerPool | None = None
        self._pump_task: asyncio.Task | None = None
        self._stopping = False
        self._closed = False
        self._max_inflight = self.params.max_inflight or 2 * n_workers
        # Service counters (always on; obs mirrors them when enabled).
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.cancelled = 0
        self.failed = 0
        self.peak_active = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and the pump (needs a running loop)."""
        if self._closed:
            raise ServeError("cannot restart a closed scheduler")
        if self._pool is None:
            self._pool = WorkerPool(
                self.instance,
                self.n_workers,
                params=self.pool_params,
                fault_plan=self.fault_plan,
                obs=self.obs,
            )
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="repro-serve-pump"
            )

    async def __aenter__(self) -> "SolveScheduler":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, *, drain: bool = False) -> None:
        """Stop the service.

        ``drain=True`` first waits for every queued and running job to
        reach a terminal state; ``drain=False`` (the default) stops
        after the current poll — unfinished jobs fail with a
        :class:`~repro.errors.ServeError` telling the caller to
        resubmit with ``resume=True``, and their checkpoint files stay
        on disk.
        """
        if self._closed:
            return
        if drain and self._pump_task is not None:
            pending = [job._future for job in self._jobs.values()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._stopping = True
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        for job in self._jobs.values():
            if not job._future.done():
                job._fail(
                    ServeError(
                        f"scheduler closed before job {job.job_id!r} finished "
                        f"({job.evaluations} evaluations served); resubmit "
                        "with resume=True to continue from its checkpoint"
                    )
                )
        if self._pool is not None:
            self._pool.close()
        self._closed = True

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one job (or refuse it, loudly).

        Raises :class:`~repro.errors.AdmissionError` when the bounded
        wait queue is full or the scheduler is shutting down — the
        request never entered any queue, so the client can back off and
        resubmit.  Must run inside the scheduler's event loop.
        """
        if self._closed or self._stopping:
            raise AdmissionError(
                f"scheduler is shut down; job {spec.job_id!r} was not accepted"
            )
        if spec.job_id in self._jobs:
            raise ServeError(f"duplicate job id {spec.job_id!r}")
        if spec.resume and self._plan is None:
            raise ServeError(
                f"job {spec.job_id!r} requests resume but the scheduler has "
                "no checkpoint directory"
            )
        if len(self._heap) >= self.params.max_queued:
            self.rejected += 1
            if self.obs.enabled:
                self.obs.metrics.inc("serve.admission_rejects")
                self._emit_state(spec.job_id, "rejected")
            raise AdmissionError(
                f"admission queue full ({self.params.max_queued} jobs "
                f"waiting); job {spec.job_id!r} rejected — back off and "
                "resubmit"
            )
        future = asyncio.get_running_loop().create_future()
        job = Job(spec, future, now=time.monotonic())
        self._jobs[spec.job_id] = job
        heapq.heappush(self._heap, (-spec.priority, self._seq, job))
        self._seq += 1
        self.submitted += 1
        if self.obs.enabled:
            self._emit_state(spec.job_id, JobState.QUEUED)
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns False if already terminal.

        Queued jobs cancel immediately; running jobs are cancelled by
        the pump, which drops their pending pool tasks and discards the
        remaining batches of in-flight ones (graceful drain — workers
        are never killed, other jobs keep their cached state).
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        if job.done():
            return False
        if job.state == JobState.QUEUED:
            self._finish_cancelled(job)
        else:
            job.cancel_requested = True
        return True

    def get_job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def report(self) -> dict:
        """Service counters plus the pool's own report (always readable,
        including after :meth:`close`)."""
        queued = sum(
            1 for j in self._jobs.values() if j.state == JobState.QUEUED
        )
        out = {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "active": len(self._active),
            "queued": queued,
            "peak_active": self.peak_active,
        }
        if self._pool is not None:
            out["pool"] = self._pool.report()
        return out

    # ------------------------------------------------------------------
    # The pump: the single owner of every pool interaction
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        pool = self._pool
        interval = self.params.pump_interval
        try:
            while True:
                if self._stopping:
                    return
                self._apply_cancellations()
                self._admit()
                self._dispatch()
                self._update_gauges()
                if pool.backlog():
                    events = await asyncio.to_thread(pool.poll, interval)
                    self._route(events)
                else:
                    await asyncio.sleep(interval)
        except Exception as exc:  # noqa: BLE001 - the pump must not die silently
            wrapped = ServeError(f"solve-service pump failed: {exc}")
            wrapped.__cause__ = exc
            for job in list(self._jobs.values()):
                if not job._future.done():
                    job._fail(wrapped)
                    self.failed += 1
            self._active.clear()

    def _route(self, events) -> None:
        for event in events:
            job = self._active.get(event.tag)
            if job is None or job.cancel_requested:
                continue
            try:
                job._on_event(event)
            except Exception as exc:  # CrashInjected, SearchInterrupted, ...
                self._fail_job(job, exc)
        for job in list(self._active.values()):
            if job._finished and not job._pending_finals:
                self._finish_job(job)

    def _admit(self) -> None:
        while self._heap and len(self._active) < self.params.max_active:
            _, _, job = heapq.heappop(self._heap)
            if job.state != JobState.QUEUED:
                continue  # cancelled while waiting
            policy = None
            if self._plan is not None and (
                job.spec.checkpoint_every is not None
                or job.spec.resume
                or self._plan.every is not None
            ):
                policy = self._plan.policy_for_job(
                    job.job_id,
                    every=job.spec.checkpoint_every,
                    resume=job.spec.resume,
                )
            self._drr.ensure(job.tenant, self._weights.get(job.tenant, 1.0))
            try:
                job._start(self.instance, policy, self.obs)
            except Exception as exc:
                self._fail_job(job, exc)
                continue
            self._active[job.job_id] = job
            self.peak_active = max(self.peak_active, len(self._active))
            if self.obs.enabled:
                self._emit_state(job.job_id, JobState.RUNNING)
            if job._finished:  # zero budget left (e.g. resumed past it)
                self._finish_job(job)

    def _dispatch(self) -> None:
        pool = self._pool
        while pool.backlog() < self._max_inflight:
            ready: dict[str, Job] = {}
            for job in self._active.values():
                if job._ready and job.tenant not in ready:
                    ready[job.tenant] = job
            if not ready:
                return
            costs = {
                tenant: float(job._iteration_cost())
                for tenant, job in ready.items()
            }
            tenant = self._drr.pick(costs)
            job = ready[tenant]
            try:
                job._dispatch(pool)
            except Exception as exc:
                self._fail_job(job, exc)

    def _apply_cancellations(self) -> None:
        for job in list(self._active.values()):
            if job.cancel_requested:
                self._pool.cancel_tag(job.job_id)
                del self._active[job.job_id]
                self._finish_cancelled(job)

    # ------------------------------------------------------------------
    # Terminal transitions
    # ------------------------------------------------------------------
    def _finish_job(self, job: Job) -> None:
        del self._active[job.job_id]
        job._finalize(self.n_workers)
        self.completed += 1
        if self.obs.enabled:
            m = self.obs.metrics
            m.inc("serve.jobs_completed")
            m.observe(
                "serve.job_latency_s",
                job.finished_at - job.submitted_at,
                buckets=_LATENCY_BUCKETS,
            )
            m.observe(
                "serve.job_queue_wait_s",
                job.started_at - job.submitted_at,
                buckets=_LATENCY_BUCKETS,
            )
            self._emit_state(job.job_id, JobState.DONE)

    def _finish_cancelled(self, job: Job) -> None:
        job._cancelled()
        self.cancelled += 1
        if self.obs.enabled:
            self.obs.metrics.inc("serve.jobs_cancelled")
            self._emit_state(job.job_id, JobState.CANCELLED)

    def _fail_job(self, job: Job, exc: BaseException) -> None:
        self._active.pop(job.job_id, None)
        if self._pool is not None and not self._pool._closed:
            try:
                self._pool.cancel_tag(job.job_id)
            except WorkerPoolError:  # pragma: no cover - defensive
                pass
        job._fail(exc)
        self.failed += 1
        if self.obs.enabled:
            self.obs.metrics.inc("serve.jobs_failed")
            self._emit_state(job.job_id, JobState.FAILED)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit_state(self, job_id: str, state: str) -> None:
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.emit("job_state", span=f"job-{job_id}", job=job_id, state=state)

    def _update_gauges(self) -> None:
        if self.obs.enabled:
            m = self.obs.metrics
            m.gauge("serve.jobs_active", len(self._active))
            m.gauge(
                "serve.jobs_queued",
                sum(1 for j in self._jobs.values() if j.state == JobState.QUEUED),
            )
            m.gauge("serve.peak_active", self.peak_active)
