"""Collaborative multisearch TSMO (paper §III.E).

"The third approach is asynchronous and is placed in the realm of
multisearch parallel algorithms.  The parameters of the algorithm for
each, but the first, are disturbed by a random variable derived from a
normal distribution with mean 0 and a standard deviation that is the
quarter of the parameter to be disturbed.  The algorithms then work in
a similar way to the sequential algorithm, but after an initial phase
they communicate improving solutions that they found along the pareto
front."

Protocol per searcher:

* run a full sequential TSMO with its own (perturbed) parameters,
  memories and evaluation budget;
* *initial phase*: from the start until the searcher's archive has not
  accepted a new solution for ``restart_after`` iterations — "the
  algorithm has found an initial set of good solutions, and has
  finally made a number of non-improving moves";
* afterwards, every archive-improving solution is sent to exactly one
  other searcher, chosen by the head of a per-searcher random
  *communication list* that rotates after each send ("to keep the
  communication overhead small and to prevent all processes from
  searching the same region");
* incoming solutions are offered to the receiver's ``M_nondom`` —
  restarts can then jump into regions discovered by peers.

There is no work sharing: "essentially it performs a sequential
algorithm with communication between the processors", so the simulated
runtime *exceeds* the sequential baseline by the communication and
message-handling overhead (growing with the number of searchers) —
the paper's negative speedups — while the exchanged elites and the
parameter diversity buy the better fronts and markedly lower vehicle
counts.

The reported archive merges the searchers' fronts into one archive of
the configured capacity, and the reported evaluations are the total
across searchers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.stats_cache import RouteStatsCache
from repro.errors import SimulationError
from repro.core.objectives import ObjectiveVector
from repro.mo.archive import ParetoArchive
from repro.obs import NULL_OBS
from repro.parallel.base import simulation_context
from repro.parallel.costmodel import CostModel
from repro.parallel.des import Mailbox
from repro.parallel.messages import SolutionMessage
from repro.rng import RngFactory
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult, decode_routes, encode_solution
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.instance import Instance

__all__ = ["CollabParams", "run_collaborative_tsmo"]


def _encode_message(msg: SolutionMessage) -> tuple:
    return (msg.sender, encode_solution(msg.solution), tuple(msg.objectives))


def _decode_message(instance: Instance, data: tuple) -> SolutionMessage:
    sender, routes, objectives = data
    return SolutionMessage(
        sender=sender,
        solution=decode_routes(instance, routes),
        objectives=ObjectiveVector(*objectives),
    )


class _CollabBarrier:
    """Checkpoint coordinator for the collaborative searchers.

    Unlike the master–worker variants, no single process ever owns the
    global state, so snapshots use a barrier: when round ``k`` is due
    (a searcher's own evaluation count reaches ``k * every``), each
    live searcher pauses at its loop top.
    The *last* arriver — possibly a searcher that just finished its
    budget — becomes the leader: it captures the global state
    synchronously (every engine, comm lists, inbox buffers, in-flight
    messages, cluster streams, the simulated clock), commits the
    checkpoint, and releases the waiters in rank order through
    per-rank mailboxes.  The stored spawn order (leader first, then
    waiters in release order) lets the resuming run reproduce the
    exact event interleaving after the barrier.

    As with the asynchronous drain, the barrier is an extra
    synchronization: the checkpoint cadence is part of the protocol
    (crash+resume under a policy matches an uninterrupted run under
    the *same* policy).
    """

    def __init__(self, env, policy, n_searchers, total_count, capture):
        self.env = env
        self.policy = policy
        self.n = n_searchers
        self.total_count = total_count  # () -> total evaluations
        self.capture = capture  # (leader, live_order) -> state dict
        self.k = 1
        self.arrived: set[int] = set()
        self.finished_ranks: set[int] = set()
        self.boxes = [Mailbox(env, f"ckpt-barrier-{r}") for r in range(n_searchers)]

    def due(self, rank: int, own_count: int) -> bool:
        # An interrupt never moves the barrier off its scheduled
        # rounds (that would change the protocol and break
        # bit-identical resume); the scheduled commit raises
        # SearchInterrupted instead.  Only without a cadence does an
        # interrupt trigger an immediate round.
        every = self.policy.every
        if every is not None:
            return own_count >= self.k * every
        return self.policy.interrupt.is_set()

    def maybe_crash(self) -> None:
        self.policy.maybe_crash(self.total_count())

    def arrive(self, rank: int):
        """Pause at the barrier (``yield from`` this at the loop top)."""
        self.arrived.add(rank)
        if self.arrived | self.finished_ranks == set(range(self.n)):
            self._complete(leader=rank, leader_live=True)
            return
        yield self.boxes[rank].get()

    def finished(self, rank: int) -> None:
        """A searcher exhausted its budget; stop waiting for it."""
        self.finished_ranks.add(rank)
        if (
            self.arrived
            and self.arrived | self.finished_ranks == set(range(self.n))
        ):
            self._complete(leader=rank, leader_live=False)

    def _complete(self, leader: int, leader_live: bool) -> None:
        waiting = sorted(self.arrived - {leader})
        live_order = ([leader] if leader_live else []) + waiting
        self.arrived.clear()
        state = self.capture(leader, live_order)
        if self.policy.every is not None and live_order:
            slowest = min(state["counts"][r] for r in live_order)
            self.k = slowest // self.policy.every + 1
        # Store the *post-advance* round index: a resumed run must wait
        # for round k+1, not replay round k (an extra barrier round
        # would perturb same-time event ordering and the clock).
        state["barrier_k"] = self.k
        # commit may raise SearchInterrupted: waiters stay parked and
        # the exception unwinds env.run() — exactly the wanted exit.
        try:
            self.policy.commit(self.total_count(), state, kind="collaborative")
        finally:
            if not self.policy.interrupt.is_set():
                for r in waiting:
                    self.boxes[r].put(True)


@dataclass(frozen=True, slots=True)
class CollabParams:
    """Knobs specific to the collaborative variant."""

    #: perturb parameters of searchers 1..P-1 (searcher 0 keeps the
    #: baseline parameters, as in the paper).
    perturb: bool = True
    #: iterations without an archive improvement that end the initial
    #: phase.  ``None`` follows the paper and reuses each searcher's
    #: ``restart_after``; benchmark runs with shrunken budgets set it
    #: proportionally smaller so the communication phase is actually
    #: reached.
    initial_phase_patience: int | None = None

    def __post_init__(self) -> None:
        if self.initial_phase_patience is not None and self.initial_phase_patience < 0:
            raise SimulationError("initial_phase_patience must be >= 0")


def run_collaborative_tsmo(
    instance: Instance,
    params: TSMOParams | None = None,
    n_processors: int = 3,
    seed: int | np.random.SeedSequence | None = None,
    cost_model: CostModel | None = None,
    collab_params: CollabParams | None = None,
    *,
    registry: OperatorRegistry | None = None,
    trace: TrajectoryRecorder | None = None,
    checkpoint=None,
    obs=NULL_OBS,
) -> TSMOResult:
    """Run the collaborative multisearch TSMO on the simulated cluster.

    ``trace``, when given, records searcher 0's trajectory.

    Checkpointing uses the :class:`_CollabBarrier` protocol: snapshots
    capture every searcher plus the rotated communication lists,
    undelivered inter-searcher messages (buffered and in transit) and
    the simulated clock; crash injection triggers on the *total*
    evaluation count across searchers.
    """
    params = params or TSMOParams()
    cparams = collab_params or CollabParams()
    if n_processors < 2:
        raise SimulationError("multisearch needs >= 2 searchers")
    obs.set_unit("simulated")
    registry = registry or default_registry()
    factory = RngFactory(seed)
    searcher_rngs = factory.generators(n_processors)
    commlist_rng = factory.generator()
    cluster_seed = factory.seed_sequence()
    env, cluster, _ = simulation_context(n_processors, cost_model, cluster_seed, 0)
    cost = cluster.cost

    # One route-stats cache shared across all searchers: on a shared-
    # memory machine the memo is common infrastructure, and the
    # searchers roam overlapping regions of the same instance, so
    # cross-searcher hits are real.
    shared_cache = RouteStatsCache(instance)
    engines: list[TSMOEngine] = []
    for rank in range(n_processors):
        rng = searcher_rngs[rank]
        local_params = params
        if cparams.perturb and rank > 0:
            local_params = params.perturbed(rng)
        engines.append(
            TSMOEngine(
                instance,
                local_params,
                rng,
                evaluator=Evaluator(
                    instance, params.max_evaluations, stats_cache=shared_cache
                ),
                registry=registry,
                trace=trace if rank == 0 else None,
                # All searchers share one bundle; restore_state replaces
                # (rather than merges), so the n-fold restore at a
                # resumed barrier is idempotent.
                obs=obs,
            )
        )

    # Per-searcher random communication list over the other searchers.
    comm_lists: list[list[int]] = []
    for rank in range(n_processors):
        others = [r for r in range(n_processors) if r != rank]
        comm_lists.append(list(commlist_rng.permutation(others)))

    finish_times = [0.0] * n_processors
    sends = [0] * n_processors
    receives = [0] * n_processors
    # Phase state lives in per-rank lists (not searcher locals) so the
    # checkpoint barrier can capture and restore it.
    initial_phase = [True] * n_processors
    last_improvement = [0] * n_processors

    resumed = (
        checkpoint.load_resume_state(kind="collaborative")
        if checkpoint is not None
        else None
    )

    def capture(leader: int, live_order: list[int]) -> dict:
        return {
            "engines": [engine.snapshot() for engine in engines],
            "counts": [engine.evaluator.count for engine in engines],
            "comm_lists": [list(c) for c in comm_lists],
            "initial_phase": list(initial_phase),
            "last_improvement": list(last_improvement),
            "finish_times": list(finish_times),
            "sends": list(sends),
            "receives": list(receives),
            "finished": sorted(barrier.finished_ranks),
            "live_order": live_order,
            "barrier_k": barrier.k,
            "inboxes": [
                [_encode_message(m) for m in cluster.inbox(r)._buffer]
                for r in range(n_processors)
            ],
            "pending": [
                (remaining, dst, _encode_message(payload))
                for remaining, dst, payload in cluster.pending_deliveries()
            ],
            "cluster": cluster.export_state(),
            "env_now": env.now,
        }

    barrier = (
        _CollabBarrier(
            env,
            checkpoint,
            n_processors,
            lambda: sum(engine.evaluator.count for engine in engines),
            capture,
        )
        if checkpoint is not None
        else None
    )

    if resumed is not None:
        if len(resumed["engines"]) != n_processors:
            raise SimulationError(
                f"snapshot has {len(resumed['engines'])} searchers, "
                f"run asked for {n_processors}"
            )
        for engine, state in zip(engines, resumed["engines"]):
            engine.restore(state)
        for comm, stored in zip(comm_lists, resumed["comm_lists"]):
            comm[:] = list(stored)
        initial_phase[:] = resumed["initial_phase"]
        last_improvement[:] = resumed["last_improvement"]
        finish_times[:] = resumed["finish_times"]
        sends[:] = resumed["sends"]
        receives[:] = resumed["receives"]
        cluster.restore_state(resumed["cluster"])
        env.now = resumed["env_now"]
        for rank, buffered in enumerate(resumed["inboxes"]):
            for data in buffered:
                cluster.inbox(rank)._buffer.append(_decode_message(instance, data))
        cluster.restore_deliveries(
            [
                (remaining, dst, _decode_message(instance, data))
                for remaining, dst, data in resumed["pending"]
            ]
        )
        barrier.k = resumed["barrier_k"]
        barrier.finished_ranks = set(resumed["finished"])
        checkpoint.note_resumed(sum(engine.evaluator.count for engine in engines))

    def searcher(rank: int):
        engine = engines[rank]
        inbox = cluster.inbox(rank)
        comm = comm_lists[rank]
        profiler = obs.profiler
        tracer = obs.tracer
        span = f"searcher-{rank}"
        if resumed is None:
            yield cluster.compute(rank, cost.init_cost(instance.n_customers))
            engine.initialize()
        patience = (
            cparams.initial_phase_patience
            if cparams.initial_phase_patience is not None
            else engine.params.restart_after
        )
        # A resumed searcher restarts exactly where the barrier paused
        # it: past the arrival check (the snapshot's round is done) but
        # before the crash/done checks, like the original post-release.
        skip_arrival = resumed is not None
        while True:
            if barrier is not None:
                if not skip_arrival and barrier.due(rank, engine.evaluator.count):
                    yield from barrier.arrive(rank)
                barrier.maybe_crash()
            skip_arrival = False
            if engine.done:
                break
            # Drain foreign elites into the medium-term memory.
            while (msg := inbox.get_nowait()) is not None:
                t0 = env.now
                yield cluster.receive_overhead(rank, 1, streamed=False)
                if profiler.enabled:
                    profiler.add("communicate", env.now - t0)
                if tracer.enabled:
                    tracer.emit(
                        "comm_recv", span=span, peer=msg.sender, kind="elite"
                    )
                receives[rank] += 1
                engine.memories.nondom.try_add(msg.solution, msg.objectives)
            version_before = engine.memories.archive.version
            misses_before = shared_cache.misses
            neighbors = engine.generate_neighborhood()
            nominal = cost.eval_cost * len(neighbors)
            if cost.miss_scan_cost > 0.0:
                nominal += cost.miss_scan_cost * (shared_cache.misses - misses_before)
            t0 = env.now
            yield cluster.compute(rank, nominal)
            t1 = env.now
            yield cluster.compute(rank, cost.selection_cost(len(neighbors)))
            if profiler.enabled:
                profiler.add("evaluate", t1 - t0)
                profiler.add("select", env.now - t1)
            engine.select_and_update(neighbors)
            improved = engine.memories.archive.version != version_before
            if improved:
                last_improvement[rank] = engine.iteration
            if initial_phase[rank]:
                if engine.iteration - last_improvement[rank] >= patience:
                    initial_phase[rank] = False
            elif improved and comm:
                dst = comm.pop(0)
                comm.append(dst)
                if tracer.enabled:
                    tracer.emit("comm_send", span=span, peer=dst, kind="elite")
                cluster.send(
                    rank,
                    dst,
                    SolutionMessage(
                        sender=rank,
                        solution=engine.current,
                        objectives=engine.current.objectives,
                    ),
                    n_items=1,
                )
                sends[rank] += 1
        # The finish time must be on record BEFORE the barrier learns
        # this searcher is done — finished() may complete a pending
        # round and snapshot finish_times right away.
        finish_times[rank] = env.now
        if barrier is not None:
            barrier.finished(rank)

    if resumed is None:
        for rank in range(n_processors):
            env.process(searcher(rank), name=f"searcher-{rank}")
    else:
        # Leader first, then the released waiters in rank order — the
        # spawn order reproduces the post-barrier event interleaving of
        # the original run.  Finished searchers are not respawned.
        for rank in resumed["live_order"]:
            env.process(searcher(rank), name=f"searcher-{rank}")

    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start

    # Merge the searchers' fronts into one bounded archive, so quality
    # columns and coverage compare like against like (same capacity as
    # the other variants' archives).
    merged: ParetoArchive = ParetoArchive(params.archive_capacity)
    for engine in engines:
        for entry in engine.memories.archive.entries:
            merged.try_add(entry.item, entry.objectives)

    metrics = profile = None
    if obs.enabled:
        m = obs.metrics
        m.gauge("cache.hits", shared_cache.hits)
        m.gauge("cache.misses", shared_cache.misses)
        m.gauge("cache.evictions", shared_cache.evictions)
        m.gauge("cache.size", len(shared_cache))
        m.gauge("comm.messages_sent", cluster.messages_sent)
        m.gauge("collab.exchanges", sum(sends))
        metrics = m.snapshot()
        profile = obs.profiler.summary()
    result = TSMOResult(
        instance_name=instance.name,
        algorithm="collaborative",
        params=params,
        archive=list(merged.entries),
        iterations=sum(e.iteration for e in engines),
        evaluations=sum(e.evaluator.count for e in engines),
        restarts=sum(e.restarts for e in engines),
        wall_time=wall,
        simulated_time=max(finish_times),
        processors=n_processors,
        trace=trace,
        cache_stats=shared_cache.snapshot(),
        metrics=metrics,
        profile=profile,
    )
    result.extra["messages_sent"] = cluster.messages_sent
    result.extra["exchanges"] = sum(sends)
    # Send/receive conservation: every sent elite is either drained by
    # its receiver (a receive) or still sits in an inbox when the
    # receiver's budget ran out first (undelivered).  Both sides are
    # exported so the invariant is checkable:
    #     sum(sends) == sum(receives) + undelivered_solutions
    result.extra["per_searcher_sends"] = list(sends)
    result.extra["per_searcher_receives"] = list(receives)
    result.extra["undelivered_solutions"] = sum(
        len(cluster.inbox(rank)) for rank in range(n_processors)
    )
    result.extra["per_searcher_evaluations"] = [e.evaluator.count for e in engines]
    result.extra["per_searcher_finish"] = list(finish_times)
    return result
