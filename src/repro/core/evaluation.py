"""Solution evaluation and the evaluation budget counter.

The paper's stopping criterion is a fixed budget of solution
*evaluations* (100,000 in Tables I–IV), shared between master and
workers in the parallel variants.  :class:`Evaluator` is the single
place where that budget is counted: every neighbor that gets its
objectives computed passes through :meth:`Evaluator.evaluate` or
:meth:`Evaluator.evaluate_move`, whether it runs on the (simulated)
master or a worker.

:meth:`Evaluator.evaluate_move` is the delta-evaluation fast path: it
scores a sampled move from its :meth:`~repro.core.operators.base.Move.
route_edits` alone — parent statistics for untouched routes, the
shared :class:`~repro.core.stats_cache.RouteStatsCache` for edited
ones — without materializing the child :class:`Solution`.  Because the
per-route statistics are a pure function of the route tuple and the
summation order matches ``Solution.objectives`` exactly (parent route
order, then added routes), the result is bit-identical to
``move.apply(parent).objectives``.

The module also provides :func:`evaluate`, a standalone function that
recomputes the objective triple of a permutation directly — used by
tests as an independent oracle against the incremental per-route
caching in :class:`repro.core.solution.Solution`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.objectives import ObjectiveVector
from repro.core.operators.base import Move
from repro.core.routes import route_stats
from repro.core.solution import Solution
from repro.core.stats_cache import RouteStatsCache
from repro.errors import SearchError
from repro.obs.registry import NULL_REGISTRY
from repro.vrptw.instance import Instance

__all__ = ["Evaluator", "evaluate", "evaluate_permutation"]


def evaluate(instance: Instance, solution: Solution) -> ObjectiveVector:
    """Recompute a solution's objectives from scratch (oracle path).

    Ignores any cached route statistics on the solution; use
    ``solution.objectives`` for the fast cached value.
    """
    distance = 0.0
    tardiness = 0.0
    for route in solution.routes:
        st = route_stats(instance, route)
        distance += st.distance
        tardiness += st.tardiness
    return ObjectiveVector(
        distance=distance, vehicles=len(solution.routes), tardiness=tardiness
    )


def evaluate_permutation(
    instance: Instance, permutation: Sequence[int] | np.ndarray
) -> ObjectiveVector:
    """Evaluate a raw giant-tour permutation exactly as the paper defines.

    * ``f1``: sum of ``t[p_k, p_{k+1}]`` over the whole string (legs
      between consecutive depot markers cost 0);
    * ``f2``: count of positions where a ``0`` is followed by a
      customer;
    * ``f3``: total tardiness from the arrival-time recursion.

    This is the literal transcription of §II of the paper and serves as
    the reference implementation in property tests.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    legs = instance.travel[perm[:-1], perm[1:]]
    distance = float(legs.sum())
    vehicles = int(np.count_nonzero((perm[:-1] == 0) & (perm[1:] != 0)))

    tardiness = 0.0
    time = 0.0
    due = instance._due_l
    ready = instance._ready_l
    service = instance._service_l
    travel_rows = instance._travel_rows
    prev = 0
    for site in perm.tolist()[1:]:
        time += travel_rows[prev][site]
        late = time - due[site]
        if late > 0.0:
            tardiness += late
        if site == 0:
            time = 0.0  # next vehicle departs the depot fresh at time 0
        else:
            r = ready[site]
            if time < r:
                time = r
            time += service[site]
        prev = site
    return ObjectiveVector(distance=distance, vehicles=vehicles, tardiness=tardiness)


class Evaluator:
    """Counts evaluations against the paper's budget.

    Parameters
    ----------
    instance:
        The problem being solved.
    max_evaluations:
        The evaluation budget (``MaximumEvaluations`` in Algorithm 1).
        ``None`` means unlimited.
    stats_cache:
        The route-statistics memo backing :meth:`evaluate_move`.  Pass
        one explicitly to share it between evaluators (the
        collaborative driver shares a single cache across all
        searchers); by default each evaluator owns a fresh cache.
    """

    __slots__ = (
        "instance",
        "max_evaluations",
        "count",
        "stats_cache",
        "metrics",
        "_memo_parent",
        "_memo_pd",
        "_memo_pt",
        "_kernel",
    )

    def __init__(
        self,
        instance: Instance,
        max_evaluations: int | None = None,
        stats_cache: RouteStatsCache | None = None,
    ) -> None:
        if max_evaluations is not None and max_evaluations < 1:
            raise SearchError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.instance = instance
        self.max_evaluations = max_evaluations
        self.count = 0
        self.stats_cache = (
            stats_cache if stats_cache is not None else RouteStatsCache(instance)
        )
        # Metrics hook for instrumented runs; NULL_REGISTRY's disabled
        # flag keeps the hot-loop cost to one attribute check.
        self.metrics = NULL_REGISTRY
        # Per-parent memo of objective prefix sums (see evaluate_move).
        # The strong reference also pins the parent, so the identity
        # check can never alias a recycled object id.
        self._memo_parent: Solution | None = None
        self._memo_pd: list[float] = []
        self._memo_pt: list[float] = []
        # Lazily built batch-kernel state (see repro.core.batch_eval).
        self._kernel = None

    @property
    def exhausted(self) -> bool:
        """True once the budget has been spent."""
        return self.max_evaluations is not None and self.count >= self.max_evaluations

    @property
    def remaining(self) -> int | None:
        """Evaluations left in the budget (``None`` when unlimited)."""
        if self.max_evaluations is None:
            return None
        return max(self.max_evaluations - self.count, 0)

    def evaluate(self, solution: Solution) -> ObjectiveVector:
        """Evaluate one solution, charging one unit of budget.

        The actual computation is incremental: the solution computes
        statistics only for routes whose cache is cold (routes copied
        unchanged from a parent solution keep their statistics).
        """
        self.count += 1
        return solution.objectives

    def evaluate_move(self, parent: Solution, move: Move) -> ObjectiveVector:
        """Score ``move`` against ``parent`` without building the child.

        Charges one unit of budget, exactly like :meth:`evaluate`.  The
        returned vector is bit-identical to
        ``move.apply(parent).objectives``: untouched routes contribute
        the parent's cached statistics, edited/added routes are served
        from :attr:`stats_cache` (scanned on miss), and the summation
        runs in the child's route order.
        """
        self.count += 1
        replacements, added = move.route_edits(parent)
        stats = parent._stats
        if parent is not self._memo_parent:
            if parent._objectives is None:
                parent.objectives  # noqa: B018 - warms every per-route stat
            # Left-fold prefix sums of the parent's objectives: pd[k] is
            # the running distance before route k, i.e. exactly the
            # partial the summation loop below would hold — so for a
            # move whose first edited route is k the loop can resume
            # there with bit-identical float association.  The parent is
            # stable across a whole neighborhood, so this amortizes to
            # ~one fold per iteration.
            d = 0.0
            t = 0.0
            pd = [0.0]
            pt = [0.0]
            for st in stats:
                d += st.distance
                t += st.tardiness
                pd.append(d)
                pt.append(t)
            self._memo_pd = pd
            self._memo_pt = pt
            self._memo_parent = parent
        first = min(replacements) if replacements else len(stats)
        distance = self._memo_pd[first]
        tardiness = self._memo_pt[first]
        vehicles = first
        lookup = self.stats_cache.lookup
        replaced = replacements.get
        for i in range(first, len(stats)):
            new_route = replaced(i)
            if new_route is not None:
                if not new_route:
                    continue  # route deleted — vehicle returns to the pool
                st = lookup(new_route)
            else:
                st = stats[i]
            distance += st.distance
            tardiness += st.tardiness
            vehicles += 1
        for route in added:
            if route:
                st = lookup(route)
                distance += st.distance
                tardiness += st.tardiness
                vehicles += 1
        m = self.metrics
        if m.enabled:
            m.inc("evaluate.moves")
            m.inc("evaluate.routes_touched", len(replacements) + len(added))
        return ObjectiveVector(
            distance=distance, vehicles=vehicles, tardiness=tardiness
        )

    def reset(self) -> None:
        """Zero the counter (new experiment, same instance)."""
        self.count = 0

    def __repr__(self) -> str:
        return (
            f"Evaluator({self.instance.name!r}, count={self.count}, "
            f"max={self.max_evaluations})"
        )
