"""The three memories of the TSMO algorithm (paper §III.B).

* ``M_tabulist`` — short-term: attributes of recently made moves;
* ``M_nondom`` — medium-term: non-dominated solutions seen in past
  neighborhoods, the pool restarts draw from;
* ``M_archive`` — long-term: the non-dominated front found so far,
  bounded with crowding replacement.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.solution import Solution
from repro.errors import SearchError
from repro.mo.archive import ParetoArchive
from repro.tabu.params import TSMOParams
from repro.tabu.tabulist import TabuList

__all__ = ["Memories"]


class Memories:
    """Bundle of the tabu list, medium-term memory and Pareto archive."""

    def __init__(self, params: TSMOParams) -> None:
        self.tabulist = TabuList(params.tabu_tenure)
        self.nondom: ParetoArchive[Solution] = ParetoArchive(params.nondom_capacity)
        self.archive: ParetoArchive[Solution] = ParetoArchive(params.archive_capacity)

    def restart_candidate(self, rng: np.random.Generator) -> Solution:
        """Draw a solution from ``M_nondom ∪ M_archive`` (Algorithm 1,
        line 10: ``SelectFrom(Mnondom ∪ Marchive)``)."""
        pool = list(self.nondom.entries) + list(self.archive.entries)
        if not pool:
            raise SearchError("both memories are empty; nothing to restart from")
        return pool[int(rng.integers(len(pool)))].item

    def export_state(self, encode_item: Callable[[Solution], Any]) -> dict:
        """Snapshot all three memories for a checkpoint."""
        return {
            "tabulist": self.tabulist.export_state(),
            "nondom": self.nondom.export_state(encode_item),
            "archive": self.archive.export_state(encode_item),
        }

    def restore_state(
        self, state: dict, decode_item: Callable[[Any], Solution]
    ) -> None:
        """Rebuild all three memories from a checkpoint."""
        self.tabulist.restore_state(state["tabulist"])
        self.nondom.restore_state(state["nondom"], decode_item)
        self.archive.restore_state(state["archive"], decode_item)

    def __repr__(self) -> str:
        return (
            f"Memories(tabu={len(self.tabulist)}, nondom={len(self.nondom)}, "
            f"archive={len(self.archive)})"
        )
