"""A minimal deterministic discrete-event simulation kernel.

This is the substrate that stands in for the paper's SGI Origin 3800:
simulated *processes* are Python generators that ``yield`` requests to
the :class:`Environment` — sleep for a simulated duration
(:meth:`Environment.timeout`), receive from a :class:`Mailbox`
(optionally with a timeout), or join another process.  The kernel is a
few hundred lines on purpose: the protocols built on top (master/worker
tabu search, collaborative searchers) are the interesting part, and
every scheduling decision must be reproducible from a seed, so the
event queue is strictly ordered by ``(time, insertion sequence)`` with
no wall-clock or hash-order dependence anywhere.

Typical usage::

    env = Environment()
    inbox = Mailbox(env, "worker-0")

    def worker(env, inbox):
        while True:
            msg = yield inbox.get()
            if msg == "stop":
                return "done"
            yield env.timeout(3.5)          # simulate work

    proc = env.process(worker(env, inbox))
    inbox.put("job", delay=1.0)
    inbox.put("stop", delay=2.0)
    env.run()
    assert env.now == 5.5 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator

from repro.errors import SimulationError

__all__ = ["Environment", "Mailbox", "Process", "Timeout", "GET_TIMED_OUT"]

#: Sentinel returned by ``mailbox.get(timeout=...)`` when the timeout
#: elapses before an item arrives.
GET_TIMED_OUT = object()


class Timeout:
    """A request to sleep for ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot wait a negative duration: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Timeout({self.delay})"


class _GetRequest:
    """A request to receive one item from a mailbox."""

    __slots__ = ("mailbox", "timeout")

    def __init__(self, mailbox: "Mailbox", timeout: float | None) -> None:
        self.mailbox = mailbox
        self.timeout = timeout


class Process:
    """A running simulated process wrapping a generator.

    Yield :class:`Timeout`, a mailbox get request, or another
    :class:`Process` (to join it).  The generator's ``return`` value
    becomes :attr:`value` once :attr:`finished`.
    """

    __slots__ = ("env", "name", "_gen", "finished", "value", "_joiners")

    def __init__(self, env: "Environment", gen: Generator, name: str | None = None) -> None:
        self.env = env
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.finished = False
        self.value: Any = None
        self._joiners: list[Process] = []

    def _step(self, value: Any) -> None:
        if self.finished:
            raise SimulationError(f"process {self.name!r} resumed after finishing")
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.value = stop.value
            for joiner in self._joiners:
                self.env._schedule(0.0, joiner._step, self.value)
            self._joiners.clear()
            return
        self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self.env._schedule(request.delay, self._step, None)
        elif isinstance(request, _GetRequest):
            request.mailbox._register(self, request.timeout)
        elif isinstance(request, Process):
            if request.finished:
                self.env._schedule(0.0, self._step, request.value)
            else:
                request._joiners.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, fn: Callable, value: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, value))

    def timeout(self, delay: float) -> Timeout:
        """Request to sleep for ``delay`` (yield this from a process)."""
        return Timeout(delay)

    def process(self, gen: Generator, name: str | None = None) -> Process:
        """Start a simulated process; it begins at the current time."""
        proc = Process(self, gen, name)
        self._schedule(0.0, proc._step, None)
        return proc

    def call_at(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback (used by mailboxes for delivery)."""
        self._schedule(delay, lambda _: fn(), None)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or ``until`` passes).

        Blocked processes (waiting on an empty mailbox with no timeout)
        do not keep the simulation alive; when only such processes
        remain the run ends — that is the normal shutdown of
        server-style workers.  Returns the final simulated time.
        """
        while self._heap:
            at, _, fn, value = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            fn(value)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of queued events (diagnostics)."""
        return len(self._heap)


class _Waiter:
    """Bookkeeping for a process blocked on a mailbox get."""

    __slots__ = ("process", "active")

    def __init__(self, process: Process) -> None:
        self.process = process
        self.active = True


class Mailbox:
    """An unbounded FIFO channel between simulated processes.

    ``put`` may carry a delivery ``delay`` (message transit time);
    ``get`` optionally takes a ``timeout`` and then resumes with
    :data:`GET_TIMED_OUT` if nothing arrived in time.  ``None`` items
    are rejected so the timeout sentinel can never be confused with a
    message.
    """

    def __init__(self, env: Environment, name: str | None = None) -> None:
        self.env = env
        self.name = name or "mailbox"
        self._buffer: deque[Any] = deque()
        self._waiters: deque[_Waiter] = deque()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def put(self, item: Any, delay: float = 0.0) -> None:
        """Deliver ``item`` after ``delay`` time units.

        Delayed deliveries are scheduled as bound ``_deliver`` calls
        (not opaque closures) so checkpointing code can recognize
        in-flight messages in the event heap and re-schedule them on
        resume.
        """
        if item is None:
            raise SimulationError("mailboxes cannot carry None items")
        if delay > 0:
            self.env._schedule(delay, self._deliver, item)
        else:
            self._deliver(item)

    def _deliver(self, item: Any) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.active:
                waiter.active = False
                self.env._schedule(0.0, waiter.process._step, item)
                return
        self._buffer.append(item)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None) -> _GetRequest:
        """Request to receive one item (yield this from a process)."""
        return _GetRequest(self, timeout)

    def get_nowait(self) -> Any | None:
        """Pop a buffered item immediately, or ``None`` when empty.

        Only valid between yields (simulated processes are cooperative,
        so there is no race).
        """
        if self._buffer:
            return self._buffer.popleft()
        return None

    def _register(self, process: Process, timeout: float | None) -> None:
        if self._buffer:
            item = self._buffer.popleft()
            self.env._schedule(0.0, process._step, item)
            return
        waiter = _Waiter(process)
        self._waiters.append(waiter)
        if timeout is not None:

            def expire(_: Any) -> None:
                if waiter.active:
                    waiter.active = False
                    process._step(GET_TIMED_OUT)

            self.env._schedule(timeout, expire, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Mailbox({self.name!r}, buffered={len(self._buffer)})"
