"""Tests for the table-experiment JSON persistence."""

import json

import pytest

from repro.bench.config import BenchConfig
from repro.bench.report import render_table
from repro.bench.runner import run_table
from repro.bench.storage import FORMAT_VERSION, load_table_data, save_table_data
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def table_data():
    config = BenchConfig.quick().with_overrides(runs=2, max_evaluations=400)
    return run_table("table1", config)


class TestRoundTrip:
    def test_derived_columns_identical(self, table_data, tmp_path):
        path = save_table_data(table_data, tmp_path / "t1.json")
        loaded = load_table_data(path)
        assert loaded.table == table_data.table
        assert loaded.configs() == table_data.configs()
        for key in table_data.configs():
            original = table_data.summary(key)
            reloaded = loaded.summary(key)
            assert reloaded.distance.mean == pytest.approx(original.distance.mean)
            assert reloaded.runtime.mean == pytest.approx(original.runtime.mean)
            if key != ("sequential", 1):
                assert loaded.speedup_of(key) == pytest.approx(
                    table_data.speedup_of(key)
                )
                assert loaded.coverage_pair(key) == pytest.approx(
                    table_data.coverage_pair(key)
                )

    def test_rendered_tables_identical(self, table_data, tmp_path):
        path = save_table_data(table_data, tmp_path / "t1.json")
        loaded = load_table_data(path)
        assert render_table(loaded) == render_table(table_data)

    def test_file_is_human_readable_json(self, table_data, tmp_path):
        path = save_table_data(table_data, tmp_path / "t1.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["n_runs"] == len(payload["runs"])
        assert payload["runs"][0]["front"]


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_table_data(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_table_data(bad)

    def test_version_mismatch(self, tmp_path):
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"format_version": 0, "table": "table1", "runs": []}))
        with pytest.raises(BenchmarkError, match="format version"):
            load_table_data(bad)
