"""Asynchronous master–worker TSMO (paper §III.D).

"The asynchronous TS still uses a master-worker philosophy and
parallelizes the neighborhood generation and evaluation function, but
the master does not wait in all cases for the workers to continue.
... the master will use a decision function to decide if workers
should be given more time or if it should continue by selecting the
next current individual from the N that has been collected so far.
Thus the master can consider only parts of a neighborhood per
iteration and will take the other parts into account once they will be
evaluated."

Algorithm 2 — the decision function — returns "continue" when any of:

* ``c1`` — some worker is idle (its final batch arrived);
* ``c2`` — a collected neighbor dominates the current solution;
* ``c3`` — the master has been waiting too long;
* ``c4`` — the evaluation budget is exhausted.

Workers stream results in small batches; batches that arrive after the
master moved on simply join a later selection pool, so the search "can
select solutions that were neighbors of a previous solution" — the
carryover Figure 1 illustrates (visible in the trace as selections
whose creation iteration precedes their selection iteration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.errors import SimulationError
from repro.mo.dominance import dominates
from repro.obs import NULL_OBS
from repro.parallel.base import simulation_context
from repro.parallel.costmodel import CostModel
from repro.parallel.des import GET_TIMED_OUT
from repro.parallel.messages import ResultMessage, StopMessage, TaskMessage
from repro.core.objectives import ObjectiveVector
from repro.parallel.sync_ts import split_chunks, worker_process
from repro.rng import RngFactory, get_generator_state, set_generator_state
from repro.tabu.neighborhood import Neighbor
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult, decode_routes, encode_solution
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.instance import Instance

__all__ = ["AsyncParams", "run_asynchronous_tsmo"]


def _encode_neighbor(neighbor: Neighbor) -> tuple:
    """A pool neighbor as picklable, instance-free data.

    Materializing the solution here is behavior-neutral (applying a
    move consumes no randomness), and the decoded neighbor is eager, so
    it never needs the — unpicklable — parent reference again.
    """
    return (
        neighbor.move,
        tuple(neighbor.objectives),
        neighbor.iteration,
        encode_solution(neighbor.solution),
    )


def _decode_neighbor(instance: Instance, data: tuple) -> Neighbor:
    move, objectives, iteration, routes = data
    return Neighbor(
        move,
        ObjectiveVector(*objectives),
        iteration,
        solution=decode_routes(instance, routes),
    )


@dataclass(frozen=True, slots=True)
class AsyncParams:
    """Knobs specific to the asynchronous variant."""

    #: neighbors per worker result message (streaming granularity).
    batch_size: int = 20
    #: condition ``c3``: how long the master waits (in cost-model time
    #: units) after finishing its own chunk before proceeding anyway.
    #: ``None`` (default) adapts to the cluster: 1.25x the nominal
    #: duration of one worker chunk, so the deadline only cuts off
    #: genuine stragglers — whose late neighbors then carry over.
    max_wait: float | None = None
    #: fraction of an equal ``S / P`` chunk the master assigns to
    #: itself.  The paper's master "distributes the work among himself
    #: and the workers"; in our implementation the asynchronous master
    #: interleaves collection and selection with its own generation, so
    #: it takes a reduced share by default (the remainder is spread
    #: over the workers).  This is one of the calibrated constants —
    #: see EXPERIMENTS.md.
    master_share: float = 0.15

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise SimulationError("batch_size must be >= 1")
        if self.max_wait is not None and self.max_wait < 0:
            raise SimulationError("max_wait must be non-negative")
        if not 0.0 <= self.master_share <= 1.0:
            raise SimulationError("master_share must be in [0, 1]")


def run_asynchronous_tsmo(
    instance: Instance,
    params: TSMOParams | None = None,
    n_processors: int = 3,
    seed: int | np.random.SeedSequence | None = None,
    cost_model: CostModel | None = None,
    async_params: AsyncParams | None = None,
    *,
    registry: OperatorRegistry | None = None,
    trace: TrajectoryRecorder | None = None,
    checkpoint=None,
    obs=NULL_OBS,
) -> TSMOResult:
    """Run the asynchronous master–worker TSMO on the simulated cluster.

    Unlike the synchronous variant, the master's loop top is *not*
    quiescent — workers may be mid-chunk with batches in flight.  When
    a snapshot is due the master therefore **drains** first: it stops
    assigning work and absorbs messages until every worker is idle and
    nothing is in transit, then captures the global state (engine,
    carried-over pool, worker RNG streams, cluster, simulated clock).
    The drain is an extra synchronization the uncheckpointed run does
    not have, so the checkpoint cadence is part of the protocol: a run
    with a given policy is bit-identical to a crashed-and-resumed run
    under the *same* policy (which is what crash recovery needs), but
    not to a run with no checkpointing at all.  See DESIGN.md.
    """
    params = params or TSMOParams()
    aparams = async_params or AsyncParams()
    if n_processors < 2:
        raise SimulationError("the master-worker variants need >= 2 processors")
    obs.set_unit("simulated")
    registry = registry or default_registry()
    factory = RngFactory(seed)
    master_rng = factory.generator()
    worker_rngs = factory.generators(n_processors - 1)
    cluster_seed = factory.seed_sequence()
    env, cluster, _ = simulation_context(n_processors, cost_model, cluster_seed, 0)
    cost = cluster.cost

    evaluator = Evaluator(instance, params.max_evaluations)
    engine = TSMOEngine(
        instance,
        params,
        master_rng,
        evaluator=evaluator,
        registry=registry,
        trace=trace,
        obs=obs,
    )
    finish = {"time": None, "carryover": 0, "pool_sizes": []}

    resumed = (
        checkpoint.load_resume_state(kind="asynchronous")
        if checkpoint is not None
        else None
    )
    if resumed is not None:
        if len(resumed["workers"]) != n_processors - 1:
            raise SimulationError(
                f"snapshot has {len(resumed['workers'])} worker streams, "
                f"run asked for {n_processors - 1} workers"
            )
        engine.restore(resumed["engine"])
        for rng, state in zip(worker_rngs, resumed["workers"]):
            set_generator_state(rng, state)
        cluster.restore_state(resumed["cluster"])
        env.now = resumed["env_now"]
        finish["carryover"] = resumed["carryover"]
        finish["pool_sizes"] = list(resumed["pool_sizes"])
        checkpoint.note_resumed(engine.evaluator.count)

    def master():
        inbox = cluster.inbox(0)
        profiler = obs.profiler
        tracer = obs.tracer
        if resumed is None:
            yield cluster.compute(0, cost.init_cost(instance.n_customers))
            engine.initialize()
        idle = set(range(1, n_processors))
        pool: list[Neighbor] = []
        if resumed is not None:
            # Snapshots are taken drained: every worker idle, nothing
            # in flight, stragglers already absorbed into the pool.
            pool.extend(_decode_neighbor(instance, n) for n in resumed["pool"])
        # The master takes a reduced share; workers split the rest.
        equal = params.neighborhood_size / n_processors
        master_chunk = int(round(aparams.master_share * equal))
        worker_chunks = split_chunks(
            params.neighborhood_size - master_chunk, n_processors - 1
        )
        chunks = [master_chunk] + worker_chunks
        max_wait = (
            aparams.max_wait
            if aparams.max_wait is not None
            else 1.25 * cost.eval_cost * max(worker_chunks)
        )

        def absorb(msg: ResultMessage):
            # Streamed receive: pre-posted buffers overlap with compute,
            # only per-message handling hits the critical path.
            t0 = env.now
            yield cluster.receive_overhead(0, len(msg.neighbors), streamed=True)
            if profiler.enabled:
                profiler.add("communicate", env.now - t0)
            if tracer.enabled:
                tracer.emit(
                    "comm_recv",
                    peer=msg.worker,
                    kind="result",
                    items=len(msg.neighbors),
                    final=msg.final,
                )
            pool.extend(msg.neighbors)
            if msg.final:
                idle.add(msg.worker)

        def build_state():
            return {
                "engine": engine.snapshot(),
                "workers": [get_generator_state(rng) for rng in worker_rngs],
                "cluster": cluster.export_state(),
                "env_now": env.now,
                "pool": [_encode_neighbor(n) for n in pool],
                "carryover": finish["carryover"],
                "pool_sizes": list(finish["pool_sizes"]),
            }

        while True:
            if checkpoint is not None:
                count = evaluator.count
                if checkpoint.due(count):
                    # Drain to quiescence before capturing state: no
                    # new work goes out, in-flight batches are absorbed
                    # into the pool, every worker ends blocked on its
                    # inbox with nothing in transit.
                    while (
                        len(idle) < n_processors - 1
                        or len(inbox) > 0
                        or cluster.has_pending_deliveries()
                    ):
                        msg = yield inbox.get()
                        yield from absorb(msg)
                    checkpoint.commit(evaluator.count, build_state(), kind="asynchronous")
                checkpoint.maybe_crash(evaluator.count)
            if engine.done:
                break
            iteration = engine.iteration + 1
            # (Re)assign work to every idle worker; busy workers keep
            # grinding on neighborhoods of previous currents.
            for rank in sorted(idle):
                if tracer.enabled:
                    tracer.emit(
                        "comm_send", peer=rank, kind="task", items=chunks[rank]
                    )
                cluster.send(
                    0,
                    rank,
                    TaskMessage(engine.current, chunks[rank], iteration),
                    n_items=1,
                )
            idle.clear()
            # The master's own share.
            t0 = env.now
            yield cluster.compute(0, cost.eval_cost * chunks[0])
            misses_before = evaluator.stats_cache.misses
            pool.extend(engine.generate_neighborhood(chunks[0]))
            master_misses = evaluator.stats_cache.misses - misses_before
            if cost.miss_scan_cost > 0.0 and master_misses > 0:
                yield cluster.compute(0, cost.miss_scan_cost * master_misses)
            if profiler.enabled:
                profiler.add("evaluate", env.now - t0)

            # Collection loop governed by the decision function.
            deadline = env.now + max_wait
            while True:
                while (msg := inbox.get_nowait()) is not None:
                    yield from absorb(msg)
                current_obj = engine.current.objectives.as_array()
                c1 = bool(idle)
                c2 = any(
                    dominates(n.objectives.as_array(), current_obj) for n in pool
                )
                c3 = env.now >= deadline
                c4 = evaluator.exhausted
                if (pool and (c1 or c2 or c3 or c4)) or (not pool and c4):
                    if tracer.enabled:
                        fired = [
                            name
                            for name, hit in (
                                ("c1", c1), ("c2", c2), ("c3", c3), ("c4", c4)
                            )
                            if hit
                        ]
                        tracer.emit(
                            "decision_fired",
                            iteration=iteration,
                            reason=",".join(fired),
                            pool=len(pool),
                        )
                    break
                # Give the workers more time: block until the next
                # message or the waiting-too-long deadline.
                timeout = None if c3 else max(deadline - env.now, 0.0)
                t0 = env.now
                msg = yield inbox.get(timeout=timeout)
                if profiler.enabled:
                    profiler.add("wait", env.now - t0)
                if msg is GET_TIMED_OUT:
                    continue
                yield from absorb(msg)
            if not pool:
                break
            finish["pool_sizes"].append(len(pool))
            # Neighbors created in earlier iterations that are only now
            # considered — the paper's carryover effect (Figure 1).
            finish["carryover"] += sum(
                1 for n in pool if n.iteration <= engine.iteration
            )
            t0 = env.now
            yield cluster.compute(0, cost.selection_cost(len(pool)))
            if profiler.enabled:
                profiler.add("select", env.now - t0)
            engine.select_and_update(pool)
            pool.clear()

        finish["time"] = env.now
        for rank in range(1, n_processors):
            cluster.send(0, rank, StopMessage(), n_items=1)

    env.process(master(), name="master")
    for rank in range(1, n_processors):
        env.process(
            worker_process(
                cluster,
                rank,
                registry,
                worker_rngs[rank - 1],
                evaluator,
                batch_size=aparams.batch_size,
                obs=obs,
            ),
            name=f"worker-{rank}",
        )

    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    if obs.enabled:
        m = obs.metrics
        m.gauge("comm.messages_sent", cluster.messages_sent)
        m.gauge("comm.items_sent", cluster.items_sent)
        m.gauge("async.carryover_neighbors", finish["carryover"])
        for size in finish["pool_sizes"]:
            m.observe(
                "async.pool_size", size, buckets=(0, 5, 10, 25, 50, 100, 250, 500)
            )
    result = engine.result(
        "asynchronous",
        wall_time=wall,
        simulated_time=finish["time"] if finish["time"] is not None else env.now,
        processors=n_processors,
    )
    result.extra["messages_sent"] = cluster.messages_sent
    result.extra["items_sent"] = cluster.items_sent
    pool_sizes = finish["pool_sizes"]
    result.extra["mean_pool_size"] = (
        float(np.mean(pool_sizes)) if pool_sizes else 0.0
    )
    result.extra["carryover_neighbors"] = finish["carryover"]
    return result
