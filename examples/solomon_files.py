#!/usr/bin/env python
"""Working with Solomon/Homberger instance files and custom instances.

Shows the round trip through the standard text format the published
benchmark sets use: generate a Homberger-style instance, write it to
disk, read it back, verify the round trip, and also build a small
bespoke instance from explicit customer records (the path a downstream
user with their own delivery data would take).

Run:  python examples/solomon_files.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import TSMOParams, generate_instance, read_solomon, run_sequential_tsmo, write_solomon
from repro.vrptw import Customer, Depot, Instance


def roundtrip_demo() -> None:
    instance = generate_instance("RC1", 50, seed=5)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{instance.name}.txt"
        write_solomon(instance, path)
        print(f"Wrote {path.name} ({path.stat().st_size} bytes)")
        loaded = read_solomon(path)
    assert loaded.n_customers == instance.n_customers
    assert loaded.n_vehicles == instance.n_vehicles
    # The writer prints 2 decimals; distances differ by at most ~2x the
    # coordinate rounding error.
    assert np.allclose(loaded.travel, instance.travel, atol=0.05)
    print(
        f"Round trip OK: {loaded.name}, {loaded.n_customers} customers, "
        f"{loaded.n_vehicles} vehicles, capacity {loaded.capacity:.0f}\n"
    )


def custom_instance_demo() -> None:
    # A bakery with five shops: morning delivery windows, one small van
    # fleet.  Coordinates in km, times in minutes from 6:00.
    depot = Depot(x=0.0, y=0.0, horizon=480.0)  # back by 14:00
    shops = [
        Customer(1, x=4.0, y=1.0, demand=60, ready_time=30, due_date=120, service_time=15),
        Customer(2, x=5.0, y=-2.0, demand=45, ready_time=60, due_date=180, service_time=10),
        Customer(3, x=-3.0, y=4.0, demand=80, ready_time=0, due_date=90, service_time=20),
        Customer(4, x=-1.0, y=-5.0, demand=50, ready_time=120, due_date=240, service_time=10),
        Customer(5, x=2.0, y=6.0, demand=70, ready_time=90, due_date=200, service_time=15),
    ]
    bakery = Instance.from_customers(
        "bakery", depot, shops, capacity=150.0, n_vehicles=3
    )
    result = run_sequential_tsmo(
        bakery,
        TSMOParams(max_evaluations=800, neighborhood_size=20, restart_after=10),
        seed=1,
    )
    print("Bakery delivery plans on the Pareto front:")
    for entry in result.archive:
        obj = entry.objectives
        tag = "on time" if obj.feasible else f"{obj.tardiness:.0f} min late in total"
        routes = " | ".join(
            "->".join(str(c) for c in route) for route in entry.item.routes
        )
        print(
            f"  {obj.vehicles} van(s), {obj.distance:.1f} km, {tag}:  {routes}"
        )


if __name__ == "__main__":
    roundtrip_demo()
    custom_instance_demo()
