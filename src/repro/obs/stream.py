"""Live event streaming: a bounded fan-out bus over tracer events.

:class:`EventBus` turns the tracer's synchronous listener callback into
any number of independently-paced async subscribers.  The publishing
side is the hot path — the serve scheduler's pump thread folds worker
batches into the master tracer, and the tracer notifies listeners from
whatever thread the ingest happened on — so ``publish`` must never
block and never raise.  Three rules follow:

* **Thread-safe, non-blocking publish.**  Each subscription owns a
  bounded deque; publishing appends under a plain lock and wakes the
  subscriber's event loop with ``call_soon_threadsafe``.  No queue
  ever applies back-pressure to the pump.
* **Drop-oldest with counting.**  A slow subscriber loses the *oldest*
  buffered events (the tail of a live stream is worth more than its
  head) and its :attr:`Subscription.dropped` counter records exactly
  how many, so lossiness is observable instead of silent.
* **Observation only.**  Nothing a subscriber does — including
  crashing — can steer the search.  A predicate that raises closes its
  own subscription; the bus and the pump carry on.

This is the transport behind ``SolveScheduler.tail()`` /
``tail_all()``; it is deliberately independent of the serve layer so
any tracer-instrumented component can stream.
"""

from __future__ import annotations

import asyncio
import threading

from collections import deque

__all__ = [
    "EventBus",
    "Subscription",
    "TERMINAL_JOB_STATES",
    "is_terminal_job_event",
    "job_event_predicate",
]

#: default per-subscription buffer capacity (events).
DEFAULT_BUFFER = 1024

#: ``job_state`` values that end a per-job tail stream.  Shared by the
#: in-process ``SolveScheduler.tail`` and the remote tail server so the
#: two views of one job end on exactly the same event.
TERMINAL_JOB_STATES = frozenset({"done", "cancelled", "failed"})


def job_event_predicate(job_id: str):
    """The subscription filter selecting one job's events: everything
    stamped with its id or riding its trace (worker task events)."""

    def predicate(event: dict) -> bool:
        return event.get("job") == job_id or event.get("trace") == job_id

    return predicate


def is_terminal_job_event(event: dict) -> bool:
    """True for the ``job_state`` event that ends a job's tail stream."""
    return (
        event.get("type") == "job_state"
        and event.get("state") in TERMINAL_JOB_STATES
    )


class Subscription:
    """One subscriber's bounded buffer and async iterator.

    Produced by :meth:`EventBus.subscribe`; must be created (and
    iterated) inside a running event loop.  Iterate with ``async for``;
    the stream ends when the bus closes or :meth:`close` is called.
    ``dropped`` counts events lost to buffer overflow.
    """

    __slots__ = (
        "_bus",
        "_predicate",
        "_items",
        "_maxsize",
        "_event",
        "_loop",
        "_closed",
        "dropped",
    )

    def __init__(self, bus, predicate, maxsize, loop) -> None:
        self._bus = bus
        self._predicate = predicate
        self._items: deque = deque()
        self._maxsize = max(1, int(maxsize))
        self._event = asyncio.Event()
        self._loop = loop
        self._closed = False
        self.dropped = 0

    # -- publisher side (called under the bus lock, any thread) --------
    def _offer(self, event: dict) -> None:
        if self._closed:
            return
        if self._predicate is not None:
            try:
                if not self._predicate(event):
                    return
            except Exception:
                # A broken filter means a broken subscriber; end its
                # stream rather than poisoning every publish.
                self._mark_closed()
                return
        if len(self._items) >= self._maxsize:
            self._items.popleft()
            self.dropped += 1
        self._items.append(event)
        self._wake()

    def _mark_closed(self) -> None:
        self._closed = True
        self._wake()

    def _wake(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._event.set)
        except RuntimeError:
            # The subscriber's loop is gone; nobody is listening.
            pass

    # -- subscriber side ----------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Events currently buffered (diagnostic)."""
        return len(self._items)

    def close(self) -> None:
        """Detach from the bus; buffered events stay readable."""
        self._bus._unsubscribe(self)
        self._mark_closed()

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> dict:
        while True:
            if self._items:
                return self._items.popleft()
            if self._closed:
                raise StopAsyncIteration
            self._event.clear()
            # Re-check after clearing: a publish between the buffer
            # check and the clear would otherwise be slept through.
            if self._items or self._closed:
                continue
            await self._event.wait()


class EventBus:
    """Fan events out to bounded async subscriptions, without blocking.

    ``publish`` may be called from any thread; ``subscribe`` must be
    called from a running event loop (the one the subscriber will
    iterate on).  Closing the bus ends every subscription after its
    buffered events are drained.
    """

    __slots__ = ("_subs", "_lock", "_closed", "published", "_dropped_detached")

    def __init__(self) -> None:
        self._subs: list[Subscription] = []
        self._lock = threading.Lock()
        self._closed = False
        #: events offered to the bus (whether or not anyone buffered them).
        self.published = 0
        self._dropped_detached = 0

    def subscribe(
        self, *, predicate=None, maxsize: int = DEFAULT_BUFFER
    ) -> Subscription:
        """A new subscription, optionally filtered by ``predicate(event)``."""
        loop = asyncio.get_running_loop()
        sub = Subscription(self, predicate, maxsize, loop)
        with self._lock:
            if self._closed:
                sub._closed = True
            else:
                self._subs.append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                return
            self._dropped_detached += sub.dropped

    def publish(self, event: dict) -> None:
        """Offer one event to every live subscription.  Never blocks."""
        with self._lock:
            if self._closed:
                return
            self.published += 1
            for sub in self._subs:
                sub._offer(event)

    @property
    def closed(self) -> bool:
        return self._closed

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def dropped(self) -> int:
        """Total events lost to slow subscribers, including detached ones."""
        with self._lock:
            return self._dropped_detached + sum(
                sub.dropped for sub in self._subs
            )

    def close(self) -> None:
        """End every subscription (after their buffers drain)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subs, self._subs = self._subs, []
            self._dropped_detached += sum(sub.dropped for sub in subs)
        for sub in subs:
            sub._mark_closed()
