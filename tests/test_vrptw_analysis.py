"""Tests for the instance structural-analysis tools."""

import networkx as nx
import pytest

from repro.vrptw.analysis import (
    clustering_score,
    compatibility_density,
    compatibility_graph,
    describe,
    fleet_lower_bounds,
    window_stats,
)
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def r1():
    return generate_instance("R1", 40, seed=3)


@pytest.fixture(scope="module")
def r2():
    return generate_instance("R2", 40, seed=3)


@pytest.fixture(scope="module")
def c1():
    return generate_instance("C1", 40, seed=3)


class TestWindowStats:
    def test_basic_fields(self, r1):
        ws = window_stats(r1)
        assert 0 < ws.mean_width < ws.horizon
        assert 0 <= ws.overlap_fraction <= 1
        assert ws.horizon == r1.horizon

    def test_type2_relatively_wider(self, r1, r2):
        # Type-2 windows are wider in absolute terms; relative to their
        # longer horizon they stay comparable, so test absolute widths.
        assert window_stats(r2).mean_width > 2 * window_stats(r1).mean_width

    def test_overlap_higher_for_wide_windows(self, r1, r2):
        assert window_stats(r2).overlap_fraction > window_stats(r1).overlap_fraction


class TestCompatibilityGraph:
    def test_graph_shape(self, r1):
        g = compatibility_graph(r1)
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == r1.n_customers
        assert g.nodes[1]["ready"] == float(r1.ready_time[1])

    def test_edges_match_criterion(self, r1):
        from repro.core.operators.feasibility import edge_admissible

        g = compatibility_graph(r1)
        for u in (1, 5, 10):
            for v in (2, 7, 20):
                if u != v:
                    assert g.has_edge(u, v) == edge_admissible(r1, u, v)

    def test_density_bounds(self, r1):
        assert 0.0 <= compatibility_density(r1) <= 1.0

    def test_wide_windows_denser(self, r1, r2):
        assert compatibility_density(r2) > compatibility_density(r1)

    def test_single_customer(self):
        inst = generate_instance("R1", 1, seed=1)
        assert compatibility_density(inst) == 1.0


class TestClusteringScore:
    def test_clustered_scores_lower(self, r1, c1):
        assert clustering_score(c1) < clustering_score(r1)

    def test_scale_free(self):
        small = generate_instance("R1", 30, seed=9)
        large = generate_instance("R1", 120, seed=9)
        # Same geometry class: scores comparable across sizes (they are
        # density-dependent — larger n lowers NN distance, so allow a
        # generous band rather than equality).
        assert 0.2 < clustering_score(small) / max(clustering_score(large), 1e-9) < 5


class TestFleetBounds:
    def test_bounds_are_lower_bounds(self, r1):
        from repro.core.construction import i1_construct

        bounds = fleet_lower_bounds(r1)
        solution = i1_construct(r1, rng=1)
        assert solution.n_routes >= bounds["capacity"]
        # The temporal bound may be loose but never exceeds a feasible
        # construction's vehicle count when that construction is
        # tardiness-free.
        if solution.objectives.feasible:
            assert solution.n_routes >= bounds["temporal"]

    def test_capacity_bound_value(self, r1):
        assert fleet_lower_bounds(r1)["capacity"] == r1.min_vehicles_by_capacity


class TestDescribe:
    def test_contains_key_facts(self, r1):
        text = describe(r1)
        assert r1.name in text
        assert "horizon" in text
        assert "lower bounds" in text
