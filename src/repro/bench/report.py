"""Paper-style text rendering of the regenerated tables.

The output mirrors the layout of Tables I–IV: a sequential row, then
one block per processor count with the synchronous, asynchronous and
collaborative rows; columns are distance, vehicles, runtime, the
coverage pair, and the speedup percent.  A significance footer prints
the pairwise t-tests of §IV.
"""

from __future__ import annotations

import io

from repro.bench.tables import ConfigKey, TableData
from repro.obs import format_profile_table
from repro.stats.speedup import format_speedup

__all__ = ["render_table", "render_row", "render_profile"]

_DISPLAY = {
    "sequential": "Sequential TSMO",
    "synchronous": "TSMO sync.",
    "asynchronous": "TSMO async.",
    "collaborative": "TSMO coll.",
}

_HEADER = (
    f"{'Algorithm':<18} {'distance':>22} {'vehicles':>16} "
    f"{'runtime':>18} {'coverage':>20} {'speedup':>10}"
)


def render_row(data: TableData, key: ConfigKey) -> str:
    """One table row for a configuration."""
    summary = data.summary(key)
    name = _DISPLAY.get(key[0], key[0])
    distance = f"{summary.distance:.2f}"
    vehicles = f"{summary.vehicles:.2f}"
    runtime = f"{summary.runtime:.2f}"
    if key[0] == "sequential":
        coverage = ""
        speed = ""
    else:
        out_cov, in_cov = data.coverage_pair(key)
        coverage = f"{out_cov * 100:.2f}% <-> {in_cov * 100:.2f}%"
        speed = format_speedup(data.speedup_of(key))
    return (
        f"{name:<18} {distance:>22} {vehicles:>16} {runtime:>18} "
        f"{coverage:>20} {speed:>10}"
    )


def render_table(data: TableData, *, title: str | None = None) -> str:
    """Render the full table in the paper's block layout."""
    buf = io.StringIO()
    if title:
        buf.write(title + "\n")
    buf.write(_HEADER + "\n")
    buf.write("-" * len(_HEADER) + "\n")
    seq_key = ("sequential", 1)
    buf.write(render_row(data, seq_key) + "\n")
    blocks: dict[int, list[ConfigKey]] = {}
    for key in data.configs():
        if key == seq_key:
            continue
        blocks.setdefault(key[1], []).append(key)
    for processors in sorted(blocks):
        buf.write(f"{processors} processors\n")
        for key in blocks[processors]:
            buf.write(render_row(data, key) + "\n")
    buf.write("\nPairwise t-tests on best feasible distance (vs sequential):\n")
    for ttest in data.significance_report():
        verdict = "significant" if ttest.significant() else "not significant"
        buf.write(f"  {ttest}  -> {verdict} at 5%\n")
    return buf.getvalue()


def _merge_profiles(profiles: list[dict]) -> dict:
    """Sum per-phase totals/counts across runs of one configuration."""
    merged: dict = {"unit": profiles[0].get("unit", "seconds"), "phases": {}}
    for profile in profiles:
        for phase, cell in profile.get("phases", {}).items():
            slot = merged["phases"].setdefault(phase, {"total": 0.0, "count": 0})
            slot["total"] += cell.get("total", 0.0)
            slot["count"] += cell.get("count", 0)
    return merged


def render_profile(data: TableData) -> str:
    """Per-driver phase-timing table, aggregated over a table's runs.

    Only instrumented runs carry a profile; configurations without one
    are omitted, and an entirely uninstrumented table renders a hint to
    rerun with ``--profile`` (or ``REPRO_OBS=1``) instead of an empty
    table.
    """
    profiles: dict[str, dict] = {}
    for key in data.configs():
        run_profiles = [r.profile for r in data.runs_of(key) if r.profile]
        if not run_profiles:
            continue
        label = key[0] if key[0] == "sequential" else f"{key[0]}@{key[1]}"
        profiles[label] = _merge_profiles(run_profiles)
    if not profiles:
        return (
            "(no phase profiles recorded - rerun with --profile or REPRO_OBS=1)"
        )
    return format_profile_table(profiles)
