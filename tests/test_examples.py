"""Every example script must run to completion (they are documentation)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
SRC = Path(__file__).parent.parent / "src"


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    # cwd=tmp_path so examples that write artifacts (plot_routes.py)
    # drop them into scratch space, not the repository.  The subprocess
    # gets src/ prepended to PYTHONPATH so the examples import the
    # checkout under test; with a pip-installed package the extra path
    # entry is harmless (site-packages still resolves).
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship seven
