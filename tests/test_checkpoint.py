"""Tests for the persistence layer: atomic writes, the checkpoint
format, snapshot policies, run manifests and engine snapshots.

The end-to-end crash/resume equivalence tests live in
test_crash_resume.py; this module covers the building blocks.
"""

import pickle

import numpy as np
import pytest

from repro.bench.config import BenchConfig
from repro.bench.storage import _record_result, _result_record
from repro.errors import (
    BenchmarkError,
    CheckpointError,
    CrashInjected,
    SearchError,
    SearchInterrupted,
)
from repro.persistence import (
    CheckpointPlan,
    CheckpointPolicy,
    InterruptFlag,
    RunManifest,
    append_line,
    atomic_write_bytes,
    atomic_write_text,
    dump_checkpoint_bytes,
    read_checkpoint,
    write_checkpoint,
)
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult, run_sequential_tsmo
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=77)


@pytest.fixture(scope="module")
def params():
    return TSMOParams(
        max_evaluations=400,
        neighborhood_size=20,
        tabu_tenure=8,
        archive_capacity=8,
        nondom_capacity=16,
        restart_after=5,
    )


class TestAtomicWrites:
    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_replace_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_append_line_rejects_newlines(self, tmp_path):
        with pytest.raises(ValueError):
            append_line(tmp_path / "log", "a\nb")

    def test_append_line_appends(self, tmp_path):
        path = tmp_path / "log"
        append_line(path, "first")
        append_line(path, "second")
        assert path.read_text().splitlines() == ["first", "second"]


class TestCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.ckpt"
        state = {"numbers": list(range(10)), "array": np.arange(4)}
        write_checkpoint(path, state, kind="sequential")
        loaded = read_checkpoint(path, kind="sequential")
        assert loaded["numbers"] == state["numbers"]
        assert np.array_equal(loaded["array"], state["array"])

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, {}, kind="sequential")
        with pytest.raises(CheckpointError, match="sequential"):
            read_checkpoint(path, kind="collaborative")

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"NOTACKPT 1 k 0 abc\n")
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "x.ckpt"
        blob = dump_checkpoint_bytes({}, kind="k")
        header, _, payload = blob.partition(b"\n")
        fields = header.decode().split(" ")
        fields[1] = "99"
        path.write_bytes(" ".join(fields).encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="format version 99"):
            read_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, {"k": list(range(100))}, kind="k")
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_bit_fails_digest(self, tmp_path):
        path = tmp_path / "x.ckpt"
        write_checkpoint(path, {"k": list(range(100))}, kind="k")
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="sha256"):
            read_checkpoint(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"no newline here at all")
        with pytest.raises(CheckpointError, match="header"):
            read_checkpoint(path)

    def test_kind_must_be_token(self):
        with pytest.raises(CheckpointError):
            dump_checkpoint_bytes({}, kind="two words")


class TestCheckpointPolicy:
    def test_threshold_arithmetic(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt", every=100)
        assert not policy.due(99)
        assert policy.due(100)
        policy.commit(137, {"s": 1}, kind="k")
        # Thresholds are absolute multiples of `every`.
        assert not policy.due(199)
        assert policy.due(200)
        assert policy.snapshots_written == 1

    def test_note_resumed_realigns(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt", every=100)
        policy.note_resumed(137)
        assert not policy.due(199)
        assert policy.due(200)

    def test_no_cadence_no_due(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt")
        assert not policy.due(10**9)

    def test_interrupt_does_not_advance_cadence(self, tmp_path):
        # With a cadence, the interrupt rides the next scheduled
        # snapshot (off-cadence snapshots would break bit-identical
        # resume of the drain/barrier drivers).
        policy = CheckpointPolicy(tmp_path / "p.ckpt", every=100)
        policy.interrupt.set()
        assert not policy.due(50)
        assert policy.due(100)
        with pytest.raises(SearchInterrupted):
            policy.commit(100, {"s": 1}, kind="k")
        assert policy.path.exists()

    def test_interrupt_only_mode_is_immediate(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt")
        assert not policy.due(5)
        policy.interrupt.set()
        assert policy.due(5)

    def test_crash_fires_once(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt", crash_after=10)
        policy.maybe_crash(9)
        with pytest.raises(CrashInjected):
            policy.maybe_crash(12)
        policy.maybe_crash(15)  # disarmed after firing

    def test_crash_writes_no_snapshot(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt", crash_after=10)
        with pytest.raises(CrashInjected):
            policy.maybe_crash(10)
        assert not policy.path.exists()

    def test_load_resume_state_absent(self, tmp_path):
        policy = CheckpointPolicy(tmp_path / "p.ckpt", resume=True)
        assert policy.load_resume_state(kind="k") is None

    def test_load_resume_state_roundtrip(self, tmp_path):
        path = tmp_path / "p.ckpt"
        CheckpointPolicy(path, every=10).commit(10, {"v": 42}, kind="k")
        policy = CheckpointPolicy(path, resume=True)
        assert policy.load_resume_state(kind="k") == {"v": 42}

    def test_not_resuming_ignores_file(self, tmp_path):
        path = tmp_path / "p.ckpt"
        write_checkpoint(path, {"v": 1}, kind="k")
        assert CheckpointPolicy(path).load_resume_state(kind="k") is None

    def test_discard(self, tmp_path):
        path = tmp_path / "p.ckpt"
        policy = CheckpointPolicy(path, every=10)
        policy.commit(10, {}, kind="k")
        policy.discard()
        assert not path.exists()
        policy.discard()  # idempotent

    def test_invalid_every(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointPolicy(tmp_path / "p", every=0)
        with pytest.raises(CheckpointError):
            CheckpointPolicy(tmp_path / "p", crash_after=0)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "250")
        monkeypatch.setenv("REPRO_CRASH_AFTER_EVALS", "999")
        policy = CheckpointPolicy.from_env(tmp_path / "p")
        assert policy.every == 250
        assert policy.crash_after == 999

    def test_from_env_invalid(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "soon")
        with pytest.raises(CheckpointError):
            CheckpointPolicy.from_env(tmp_path / "p")


class TestCheckpointPlan:
    def test_policy_naming(self, tmp_path):
        plan = CheckpointPlan(tmp_path / "ckpt", every=50)
        policy = plan.policy_for("table1", 2, 1, "collaborative", 6)
        assert policy.path.name == "table1_i2_r1_collaborative_p6.ckpt"
        assert policy.every == 50
        assert policy.interrupt is plan.interrupt

    def test_shared_interrupt(self, tmp_path):
        plan = CheckpointPlan(tmp_path / "ckpt", every=50)
        a = plan.policy_for("table1", 0, 0, "sequential", 1)
        b = plan.policy_for("table1", 0, 1, "sequential", 1)
        plan.request_interrupt()
        assert a.interrupt.is_set() and b.interrupt.is_set()

    def test_manifest_location(self, tmp_path):
        plan = CheckpointPlan(tmp_path / "ckpt")
        manifest = plan.manifest("table2")
        assert manifest.path == tmp_path / "ckpt" / "table2_manifest.jsonl"


class TestInterruptFlag:
    def test_latch(self):
        flag = InterruptFlag()
        assert not flag.is_set()
        flag.set()
        assert flag.is_set()
        flag.clear()
        assert not flag.is_set()


class TestRunManifest:
    def _entry(self, i=0, r=0, algo="sequential", p=1):
        return dict(
            instance="R1_20", instance_idx=i, run_idx=r, algorithm=algo,
            processors=p, record={"evaluations": 100 + i},
        )

    def test_roundtrip(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl", table="table1")
        manifest.append(**self._entry(0, 0))
        manifest.append(**self._entry(0, 1, "synchronous", 3))
        loaded = manifest.load()
        assert set(loaded) == {
            (0, 0, "sequential", 1),
            (0, 1, "synchronous", 3),
        }
        assert loaded[(0, 0, "sequential", 1)]["record"] == {"evaluations": 100}
        assert manifest.completed_count() == 2

    def test_missing_file_loads_empty(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl", table="table1")
        assert manifest.load() == {}
        assert not manifest.exists()

    def test_torn_tail_tolerated(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl", table="table1")
        manifest.append(**self._entry(0, 0))
        manifest.append(**self._entry(0, 1))
        with open(manifest.path, "a") as fh:
            fh.write('{"v": 1, "table": "table1", "instance_idx":')
        loaded = manifest.load()
        assert len(loaded) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl", table="table1")
        manifest.append(**self._entry(0, 0))
        lines = manifest.path.read_text().splitlines()
        manifest.path.write_text("garbage{{{\n" + "\n".join(lines) + "\n")
        with pytest.raises(BenchmarkError, match="line 1"):
            manifest.load()

    def test_wrong_table_raises(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl", table="table1")
        manifest.append(**self._entry())
        other = RunManifest(tmp_path / "m.jsonl", table="table2")
        other.append(**{**self._entry(1, 0)})
        with pytest.raises(BenchmarkError, match="table"):
            RunManifest(tmp_path / "m.jsonl", table="table1").load()


class TestEngineSnapshot:
    def test_mid_run_roundtrip(self, instance, params):
        rng_a = np.random.default_rng(5)
        engine_a = TSMOEngine(instance, params, rng_a)
        engine_a.initialize()
        for _ in range(4):
            engine_a.step()
        state = engine_a.snapshot()
        # Fresh engine, restored, must finish identically.
        engine_b = TSMOEngine(instance, params, np.random.default_rng(999))
        engine_b.restore(state)
        while not engine_a.done:
            engine_a.step()
        while not engine_b.done:
            engine_b.step()
        front_a = np.array(
            [tuple(e.objectives) for e in engine_a.memories.archive.entries]
        )
        front_b = np.array(
            [tuple(e.objectives) for e in engine_b.memories.archive.entries]
        )
        assert np.array_equal(front_a, front_b)
        assert engine_a.evaluator.count == engine_b.evaluator.count
        assert engine_a.restarts == engine_b.restarts

    def test_snapshot_is_picklable(self, instance, params):
        engine = TSMOEngine(instance, params, np.random.default_rng(5))
        engine.initialize()
        engine.step()
        blob = pickle.dumps(engine.snapshot())
        assert pickle.loads(blob)["instance"] == instance.name

    def test_restore_rejects_wrong_instance(self, instance, params):
        engine = TSMOEngine(instance, params, np.random.default_rng(5))
        engine.initialize()
        state = engine.snapshot()
        state["instance"] = "some_other_instance"
        fresh = TSMOEngine(instance, params, np.random.default_rng(5))
        with pytest.raises(CheckpointError, match="instance"):
            fresh.restore(state)

    def test_restore_rejects_wrong_version(self, instance, params):
        engine = TSMOEngine(instance, params, np.random.default_rng(5))
        engine.initialize()
        state = engine.snapshot()
        state["v"] = 999
        fresh = TSMOEngine(instance, params, np.random.default_rng(5))
        with pytest.raises(CheckpointError, match="version"):
            fresh.restore(state)


class TestResultLoadHardening:
    def test_truncated_pickle(self, instance, tmp_path):
        params = TSMOParams(max_evaluations=100, neighborhood_size=10)
        result = run_sequential_tsmo(instance, params, seed=1)
        path = tmp_path / "run.pkl"
        result.save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SearchError, match=str(path)):
            TSMOResult.load(path)

    def test_garbage_pickle(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(SearchError, match=str(path)):
            TSMOResult.load(path)


class TestRecordValidation:
    def _good_record(self, instance):
        params = TSMOParams(max_evaluations=100, neighborhood_size=10)
        result = run_sequential_tsmo(instance, params, seed=1)
        return _result_record(result)

    def test_roundtrip(self, instance):
        record = self._good_record(instance)
        rebuilt = _record_result(record, run_index=0)
        assert rebuilt.instance_name == record["instance"]
        assert rebuilt.evaluations == record["evaluations"]

    def test_missing_field_names_run_and_field(self, instance):
        record = self._good_record(instance)
        del record["front"]
        with pytest.raises(BenchmarkError, match=r"run 7.*front"):
            _record_result(record, run_index=7)

    def test_bad_params_key(self, instance):
        record = self._good_record(instance)
        record["params"]["no_such_knob"] = 1
        with pytest.raises(BenchmarkError, match=r"run 3.*params"):
            _record_result(record, run_index=3)

    def test_params_must_be_mapping(self, instance):
        record = self._good_record(instance)
        record["params"] = [1, 2, 3]
        with pytest.raises(BenchmarkError, match="params"):
            _record_result(record)

    def test_malformed_front(self, instance):
        record = self._good_record(instance)
        record["front"] = [["x", "y"]]
        with pytest.raises(BenchmarkError, match="front"):
            _record_result(record, run_index=0)

    def test_non_mapping_record(self):
        with pytest.raises(BenchmarkError, match="mapping"):
            _record_result([1, 2], run_index=0)


class TestBenchConfigCheckpointEvery:
    def test_default_none(self):
        assert BenchConfig().checkpoint_every is None

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "123")
        assert BenchConfig.from_env().checkpoint_every == 123

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "often")
        with pytest.raises(BenchmarkError):
            BenchConfig.from_env()

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            BenchConfig(checkpoint_every=0)


def test_persistence_package_exports_resolve():
    import repro.persistence as pkg

    assert list(pkg.__all__) == sorted(pkg.__all__)
    for name in pkg.__all__:
        assert hasattr(pkg, name), f"repro.persistence.{name} missing"
