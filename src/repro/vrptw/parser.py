"""Reader/writer for the Solomon / Gehring–Homberger text format.

The paper evaluates on the "400 city extended Solomon problems"
published by Joerg Homberger.  Those files use the classic Solomon
layout::

    R1_4_1

    VEHICLE
    NUMBER     CAPACITY
      100        200

    CUSTOMER
    CUST NO.  XCOORD.  YCOORD.  DEMAND  READY TIME  DUE DATE  SERVICE TIME
        0       250      250       0        0         1824        0
        1       387      297      10      144          214       90
        ...

This module parses that layout robustly (tolerating varying whitespace,
blank lines and header spellings) and can also write it back, so
instances produced by :mod:`repro.vrptw.generator` round-trip through
the on-disk format the original benchmark set uses.  If the authentic
Homberger files are available they can be dropped in unchanged.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import ParseError
from repro.vrptw.instance import Instance

__all__ = ["read_solomon", "loads_solomon", "write_solomon", "dumps_solomon"]


def loads_solomon(text: str) -> Instance:
    """Parse a Solomon-format instance from a string."""
    lines = text.splitlines()
    idx = 0

    def next_nonblank() -> tuple[int, str]:
        nonlocal idx
        while idx < len(lines):
            line = lines[idx].strip()
            idx += 1
            if line:
                return idx, line
        raise ParseError("unexpected end of file")

    try:
        _, name = next_nonblank()
    except ParseError as exc:
        raise ParseError("empty instance file") from exc

    # --- VEHICLE section -------------------------------------------------
    lineno, line = next_nonblank()
    if line.upper() != "VEHICLE":
        raise ParseError(f"expected 'VEHICLE' section, got {line!r}", line=lineno)
    lineno, header = next_nonblank()
    if "NUMBER" not in header.upper() or "CAPACITY" not in header.upper():
        raise ParseError(
            f"expected 'NUMBER CAPACITY' header, got {header!r}", line=lineno
        )
    lineno, line = next_nonblank()
    fields = line.split()
    if len(fields) != 2:
        raise ParseError(
            f"expected two vehicle fields (number, capacity), got {line!r}",
            line=lineno,
        )
    try:
        n_vehicles = int(fields[0])
        capacity = float(fields[1])
    except ValueError as exc:
        raise ParseError(f"bad vehicle line {line!r}: {exc}", line=lineno) from exc

    # --- CUSTOMER section -------------------------------------------------
    lineno, line = next_nonblank()
    if line.upper() != "CUSTOMER":
        raise ParseError(f"expected 'CUSTOMER' section, got {line!r}", line=lineno)
    lineno, header = next_nonblank()
    if "CUST" not in header.upper():
        raise ParseError(f"expected customer header, got {header!r}", line=lineno)

    rows: list[tuple[float, ...]] = []
    while idx < len(lines):
        raw = lines[idx].strip()
        idx += 1
        if not raw:
            continue
        fields = raw.split()
        if len(fields) != 7:
            raise ParseError(
                f"customer rows need 7 fields, got {len(fields)}: {raw!r}",
                line=idx,
            )
        try:
            rows.append(tuple(float(f) for f in fields))
        except ValueError as exc:
            raise ParseError(f"non-numeric customer row {raw!r}", line=idx) from exc

    if not rows:
        raise ParseError("no customer rows found")
    indices = [int(r[0]) for r in rows]
    if indices != list(range(len(rows))):
        raise ParseError(
            f"customer numbers must be consecutive from 0, got {indices[:5]}..."
        )

    data = np.asarray(rows, dtype=np.float64)
    return Instance(
        name=name,
        x=data[:, 1],
        y=data[:, 2],
        demand=data[:, 3],
        ready_time=data[:, 4],
        due_date=data[:, 5],
        service_time=data[:, 6],
        capacity=capacity,
        n_vehicles=n_vehicles,
    )


def read_solomon(path: str | Path | TextIO) -> Instance:
    """Parse a Solomon-format instance from a file path or open handle."""
    if isinstance(path, (str, Path)):
        text = Path(path).read_text(encoding="utf-8")
    else:
        text = path.read()
    return loads_solomon(text)


def dumps_solomon(instance: Instance) -> str:
    """Render an instance in Solomon format."""
    buf = io.StringIO()
    buf.write(f"{instance.name}\n\n")
    buf.write("VEHICLE\nNUMBER     CAPACITY\n")
    buf.write(f"{instance.n_vehicles:>6d}  {instance.capacity:>11.0f}\n\n")
    buf.write("CUSTOMER\n")
    buf.write(
        "CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE"
        "   SERVICE   TIME\n"
    )
    for i in range(instance.n_sites):
        buf.write(
            f"{i:>5d} {instance.x[i]:>10.2f} {instance.y[i]:>10.2f}"
            f" {instance.demand[i]:>9.2f} {instance.ready_time[i]:>12.2f}"
            f" {instance.due_date[i]:>10.2f} {instance.service_time[i]:>10.2f}\n"
        )
    return buf.getvalue()


def write_solomon(instance: Instance, path: str | Path | TextIO) -> None:
    """Write an instance to disk (or an open handle) in Solomon format."""
    text = dumps_solomon(instance)
    if isinstance(path, (str, Path)):
        Path(path).write_text(text, encoding="utf-8")
    else:
        path.write(text)
