"""Solution evaluation and the evaluation budget counter.

The paper's stopping criterion is a fixed budget of solution
*evaluations* (100,000 in Tables I–IV), shared between master and
workers in the parallel variants.  :class:`Evaluator` is the single
place where that budget is counted: every neighbor that gets its
objectives computed passes through :meth:`Evaluator.evaluate`, whether
it runs on the (simulated) master or a worker.

The module also provides :func:`evaluate`, a standalone function that
recomputes the objective triple of a permutation directly — used by
tests as an independent oracle against the incremental per-route
caching in :class:`repro.core.solution.Solution`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.objectives import ObjectiveVector
from repro.core.routes import route_stats
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.vrptw.instance import Instance

__all__ = ["Evaluator", "evaluate", "evaluate_permutation"]


def evaluate(instance: Instance, solution: Solution) -> ObjectiveVector:
    """Recompute a solution's objectives from scratch (oracle path).

    Ignores any cached route statistics on the solution; use
    ``solution.objectives`` for the fast cached value.
    """
    distance = 0.0
    tardiness = 0.0
    for route in solution.routes:
        st = route_stats(instance, route)
        distance += st.distance
        tardiness += st.tardiness
    return ObjectiveVector(
        distance=distance, vehicles=len(solution.routes), tardiness=tardiness
    )


def evaluate_permutation(
    instance: Instance, permutation: Sequence[int] | np.ndarray
) -> ObjectiveVector:
    """Evaluate a raw giant-tour permutation exactly as the paper defines.

    * ``f1``: sum of ``t[p_k, p_{k+1}]`` over the whole string (legs
      between consecutive depot markers cost 0);
    * ``f2``: count of positions where a ``0`` is followed by a
      customer;
    * ``f3``: total tardiness from the arrival-time recursion.

    This is the literal transcription of §II of the paper and serves as
    the reference implementation in property tests.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    legs = instance.travel[perm[:-1], perm[1:]]
    distance = float(legs.sum())
    vehicles = int(np.count_nonzero((perm[:-1] == 0) & (perm[1:] != 0)))

    tardiness = 0.0
    time = 0.0
    due = instance._due_l
    ready = instance._ready_l
    service = instance._service_l
    travel_rows = instance._travel_rows
    prev = 0
    for site in perm.tolist()[1:]:
        time += travel_rows[prev][site]
        late = time - due[site]
        if late > 0.0:
            tardiness += late
        if site == 0:
            time = 0.0  # next vehicle departs the depot fresh at time 0
        else:
            r = ready[site]
            if time < r:
                time = r
            time += service[site]
        prev = site
    return ObjectiveVector(distance=distance, vehicles=vehicles, tardiness=tardiness)


class Evaluator:
    """Counts evaluations against the paper's budget.

    Parameters
    ----------
    instance:
        The problem being solved.
    max_evaluations:
        The evaluation budget (``MaximumEvaluations`` in Algorithm 1).
        ``None`` means unlimited.
    """

    __slots__ = ("instance", "max_evaluations", "count")

    def __init__(self, instance: Instance, max_evaluations: int | None = None) -> None:
        if max_evaluations is not None and max_evaluations < 1:
            raise SearchError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.instance = instance
        self.max_evaluations = max_evaluations
        self.count = 0

    @property
    def exhausted(self) -> bool:
        """True once the budget has been spent."""
        return self.max_evaluations is not None and self.count >= self.max_evaluations

    @property
    def remaining(self) -> int | None:
        """Evaluations left in the budget (``None`` when unlimited)."""
        if self.max_evaluations is None:
            return None
        return max(self.max_evaluations - self.count, 0)

    def evaluate(self, solution: Solution) -> ObjectiveVector:
        """Evaluate one solution, charging one unit of budget.

        The actual computation is incremental: the solution computes
        statistics only for routes whose cache is cold (routes copied
        unchanged from a parent solution keep their statistics).
        """
        self.count += 1
        return solution.objectives

    def reset(self) -> None:
        """Zero the counter (new experiment, same instance)."""
        self.count = 0

    def __repr__(self) -> str:
        return (
            f"Evaluator({self.instance.name!r}, count={self.count}, "
            f"max={self.max_evaluations})"
        )
