"""NSGA-II crowding distance (Deb et al. 2000).

The paper uses the crowding comparison for bounded-archive
replacement (§III.B): "This comparison orders the solutions in the
archive and the chosen solution by a distance value, which is computed
by calculating the differences of the fitness values of a certain
solution with respect to the other solutions.  A solution that has a
low distance value has similar fitness values compared to the rest of
the solutions and will be deleted."

For each objective, points are sorted; boundary points get infinite
distance, interior points get the normalized span of their two
neighbors.  The final distance is the sum over objectives.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mo.dominance import as_points

__all__ = ["crowding_distances"]


def crowding_distances(points: Sequence | np.ndarray) -> np.ndarray:
    """Crowding distance of every point in a set.

    Returns an array aligned with the input rows.  Boundary points per
    objective receive ``inf``; an objective with zero spread
    contributes nothing.  For fewer than three points every point is a
    boundary point (``inf``).
    """
    pts = as_points(points)
    n, d = pts.shape if pts.ndim == 2 else (0, 0)
    if n == 0:
        return np.zeros(0)
    dist = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(d):
        order = np.argsort(pts[:, k], kind="stable")
        col = pts[order, k]
        span = col[-1] - col[0]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        if span <= 0:
            continue
        contribution = (col[2:] - col[:-2]) / span
        # Only finite entries accumulate; inf + x stays inf.
        dist[order[1:-1]] += contribution
    return dist
