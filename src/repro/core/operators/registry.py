"""Uniform operator drawing with retry (paper §III.B).

"For each move to create one of the operators is chosen at random,
with equal probabilities for each.  If the operator was unable to find
a suitable move, with regard to the local feasibility criterion, a new
random number is drawn and possibly a different operator is selected.
This step is repeated until the amount of moves matches the
neighborhood size."

:class:`OperatorRegistry` implements exactly that wheel, with a
configurable retry cap as a safety valve against pathologically locked
solutions (a tiny instance where no operator can move anything would
otherwise spin forever).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.operators.base import Move, Operator
from repro.core.operators.exchange import Exchange
from repro.core.operators.or_opt import OrOpt
from repro.core.operators.relocate import Relocate
from repro.core.operators.two_opt import TwoOpt
from repro.core.operators.two_opt_star import TwoOptStar
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["OperatorRegistry", "default_registry"]


class OperatorRegistry:
    """A weighted wheel of neighborhood operators.

    The paper uses equal probabilities; non-uniform weights are
    supported for the ablation benchmarks.
    """

    def __init__(
        self,
        operators: Sequence[Operator] | None = None,
        weights: Sequence[float] | None = None,
        *,
        max_draws_per_move: int = 64,
    ) -> None:
        self.operators: tuple[Operator, ...] = tuple(
            operators if operators is not None else _standard_operators()
        )
        if not self.operators:
            raise OperatorError("registry needs at least one operator")
        if weights is None:
            w = np.full(len(self.operators), 1.0 / len(self.operators))
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (len(self.operators),):
                raise OperatorError(
                    f"got {w.shape[0] if w.ndim == 1 else 'non-1d'} weights for "
                    f"{len(self.operators)} operators"
                )
            if np.any(w < 0) or w.sum() <= 0:
                raise OperatorError("weights must be non-negative and sum > 0")
            w = w / w.sum()
        self.weights = w
        self._cumulative = np.cumsum(w).tolist()
        # Profiling note: the wheel spins once per candidate move (tens
        # of thousands of times per run).  Everything the spin needs is
        # hoisted here — the bound ``propose`` methods and the cumulative
        # thresholds as plain Python containers — so a draw allocates
        # nothing and the weighted case scans a list instead of calling
        # numpy on 5 elements.
        self._uniform = bool(np.allclose(w, w[0]))
        self._n_operators = len(self.operators)
        self._propose = tuple(op.propose for op in self.operators)
        if max_draws_per_move < 1:
            raise OperatorError("max_draws_per_move must be >= 1")
        self.max_draws_per_move = max_draws_per_move

    def draw_operator(self, rng: np.random.Generator) -> Operator:
        """Spin the wheel once."""
        if self._uniform:
            return self.operators[int(rng.integers(self._n_operators))]
        u = rng.random()
        for index, threshold in enumerate(self._cumulative):
            if u < threshold:
                return self.operators[index]
        return self.operators[-1]

    def draw_move(self, solution: Solution, rng: np.random.Generator) -> Move | None:
        """Draw operators until one yields a move (or the cap is hit).

        Returns ``None`` only when :attr:`max_draws_per_move` successive
        operator draws all failed — the caller (the neighborhood
        sampler) then stops early with a short neighborhood.
        """
        propose = self._propose
        random = rng.random
        if self._uniform:
            # Hot path: one wheel spin per candidate move.  The spin is
            # a single ``random()`` double (cheaper to dispatch than a
            # bounded ``integers``) indexing the hoisted propose table;
            # ``u < 1`` strictly, so the floor never reaches ``n``.
            n = self._n_operators
            for _ in range(self.max_draws_per_move):
                move = propose[int(random() * n)](solution, rng)
                if move is not None:
                    return move
            return None
        cumulative = self._cumulative
        last = self._n_operators - 1
        for _ in range(self.max_draws_per_move):
            u = random()
            chosen = last
            for index, threshold in enumerate(cumulative):
                if u < threshold:
                    chosen = index
                    break
            move = propose[chosen](solution, rng)
            if move is not None:
                return move
        return None

    def __repr__(self) -> str:
        names = ", ".join(op.name for op in self.operators)
        return f"OperatorRegistry([{names}])"


def _standard_operators() -> list[Operator]:
    return [Relocate(), Exchange(), TwoOpt(), TwoOptStar(), OrOpt()]


def default_registry() -> OperatorRegistry:
    """The paper's operator set: all five, equal probabilities."""
    return OperatorRegistry()
