"""Deterministic best-improvement local search over the operator moves.

Tabu search is, in the paper's words, "basically a
'best-improvement-local-search' algorithm" with memory bolted on.
This module provides the memory-free baseline: steepest-descent local
search that scans sampled moves each round and takes the best strictly
improving one under a weighted-sum scalarization of the three
objectives.  It serves three roles:

* a cheap *intensifier* (the adaptive-memory driver can polish
  constructions with it);
* a baseline in tests — TSMO with memories must never lose to plain
  descent from the same seed at equal budget by more than noise;
* a pedagogical reference implementation of the move machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.objectives import ObjectiveVector
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.rng import as_generator

__all__ = ["LocalSearchResult", "ScalarWeights", "local_search"]


@dataclass(frozen=True, slots=True)
class ScalarWeights:
    """Weighted-sum scalarization of ``(f1, f2, f3)``.

    Defaults make one vehicle worth ~100 distance units and penalize
    tardiness strongly (the descent should end feasible whenever it
    can).
    """

    distance: float = 1.0
    vehicles: float = 100.0
    tardiness: float = 10.0

    def __post_init__(self) -> None:
        if self.distance < 0 or self.vehicles < 0 or self.tardiness < 0:
            raise SearchError("scalarization weights must be non-negative")

    def value(self, objectives: ObjectiveVector) -> float:
        """The scalarized objective (lower is better)."""
        return (
            self.distance * objectives.distance
            + self.vehicles * objectives.vehicles
            + self.tardiness * objectives.tardiness
        )


@dataclass
class LocalSearchResult:
    """Outcome of one steepest-descent run."""

    solution: Solution
    objectives: ObjectiveVector
    scalar_value: float
    rounds: int
    evaluations: int
    #: True when the final round found no improving move (a local
    #: optimum w.r.t. the sampled neighborhood), False when the budget
    #: ran out first.
    converged: bool


def local_search(
    solution: Solution,
    *,
    weights: ScalarWeights | None = None,
    sample_size: int = 100,
    max_evaluations: int | None = 10_000,
    registry: OperatorRegistry | None = None,
    rng: int | np.random.Generator | None = None,
    evaluator: Evaluator | None = None,
) -> LocalSearchResult:
    """Steepest descent from ``solution`` under a scalarized objective.

    Each round samples ``sample_size`` random moves (same operator
    wheel as the tabu search), evaluates them, and moves to the best
    strictly improving neighbor; it stops at a sampled local optimum or
    when the evaluation budget is exhausted.
    """
    if sample_size < 1:
        raise SearchError("sample_size must be >= 1")
    weights = weights or ScalarWeights()
    registry = registry or default_registry()
    generator = as_generator(rng)
    evaluator = evaluator or Evaluator(solution.instance, max_evaluations)

    current = solution
    current_value = weights.value(evaluator.evaluate(current))
    rounds = 0
    converged = False
    while not evaluator.exhausted:
        rounds += 1
        best_child: Solution | None = None
        best_value = current_value
        for _ in range(sample_size):
            if evaluator.exhausted:
                break
            move = registry.draw_move(current, generator)
            if move is None:
                break
            child = move.apply(current)
            value = weights.value(evaluator.evaluate(child))
            if value < best_value:
                best_value = value
                best_child = child
        if best_child is None:
            converged = True
            break
        current = best_child
        current_value = best_value
    return LocalSearchResult(
        solution=current,
        objectives=current.objectives,
        scalar_value=current_value,
        rounds=rounds,
        evaluations=evaluator.count,
        converged=converged,
    )
