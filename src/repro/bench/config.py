"""Benchmark scaling configuration.

The paper's protocol — 400/600 customers, 100,000 evaluations,
neighborhood 200, 30 runs per problem, ~10 problems per class — is far
beyond a pure-Python laptop budget (it was a supercomputer experiment
in compiled code).  :class:`BenchConfig` therefore defaults to a
*scaled* protocol that preserves the quantities the comparisons react
to — the iteration count (evaluations / neighborhood size), the
restart cadence relative to run length, archive and tenure sizes, and
the instance-class mix — while shrinking city counts and budgets.

Environment overrides:

* ``REPRO_BENCH_SCALE`` — ``paper`` selects the full-size protocol;
  a float ``s`` multiplies both the evaluation budget and the city
  fraction (``2`` → twice the default size, etc.);
* ``REPRO_BENCH_RUNS`` — runs per instance;
* ``REPRO_BENCH_SEED`` — master seed of the whole experiment;
* ``REPRO_CHECKPOINT_EVERY`` — snapshot cadence (evaluations) for
  checkpointed runs (see :mod:`repro.persistence`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import BenchmarkError
from repro.tabu.params import TSMOParams

__all__ = ["BenchConfig"]


@dataclass(frozen=True, slots=True)
class BenchConfig:
    """Knobs of one table-regeneration experiment."""

    #: fraction of the paper's city count (400/600) per instance.
    city_fraction: float = 0.15
    #: evaluation budget per run (paper: 100,000).
    max_evaluations: int = 3000
    #: neighborhood size (paper: 200).
    neighborhood_size: int = 60
    #: tabu tenure (paper: 20).
    tabu_tenure: int = 20
    #: archive capacity (paper: 20).
    archive_capacity: int = 20
    #: medium-term memory capacity.
    nondom_capacity: int = 50
    #: restart patience in iterations (paper: 100 of ~500 iterations;
    #: the default keeps roughly the same fraction of the run).
    restart_after: int = 12
    #: runs per instance (paper: 30).
    runs: int = 3
    #: generated instances per class (the published sets have ~10).
    replicates: int = 1
    #: simulated processor counts, as in Tables I-IV.
    processors: tuple[int, ...] = (3, 6, 12)
    #: collaborative initial-phase patience (iterations without an
    #: archive improvement); scaled down with the run length.
    collab_patience: int = 4
    #: master seed; every run seed derives from it deterministically.
    seed: int = 2007
    #: snapshot cadence in evaluations for checkpointed runs; ``None``
    #: leaves the cadence to the checkpoint plan (interrupt-only).
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.city_fraction <= 1:
            raise BenchmarkError("city_fraction must be in (0, 1]")
        for label in ("max_evaluations", "neighborhood_size", "runs", "replicates"):
            if getattr(self, label) < 1:
                raise BenchmarkError(f"{label} must be >= 1")
        if any(p < 2 for p in self.processors):
            raise BenchmarkError("parallel variants need >= 2 processors")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise BenchmarkError("checkpoint_every must be >= 1 (or None)")

    # ------------------------------------------------------------------
    # Derived pieces
    # ------------------------------------------------------------------
    def tsmo_params(self) -> TSMOParams:
        """The search parameters this configuration implies."""
        return TSMOParams(
            max_evaluations=self.max_evaluations,
            neighborhood_size=self.neighborhood_size,
            tabu_tenure=self.tabu_tenure,
            archive_capacity=self.archive_capacity,
            nondom_capacity=self.nondom_capacity,
            restart_after=self.restart_after,
        )

    def with_overrides(self, **kwargs: object) -> "BenchConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "BenchConfig":
        """The full-size protocol of Tables I-IV (very slow in Python)."""
        return cls(
            city_fraction=1.0,
            max_evaluations=100_000,
            neighborhood_size=200,
            restart_after=100,
            runs=30,
            replicates=10,
            collab_patience=100,
        )

    @classmethod
    def quick(cls) -> "BenchConfig":
        """A minimal smoke-test configuration (used by the test suite)."""
        return cls(
            city_fraction=0.08,
            max_evaluations=800,
            neighborhood_size=40,
            restart_after=6,
            runs=2,
            collab_patience=3,
        )

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Build from defaults plus ``REPRO_BENCH_*`` overrides."""
        raw_scale = os.environ.get("REPRO_BENCH_SCALE", "").strip()
        if raw_scale.lower() == "paper":
            config = cls.paper()
        elif raw_scale:
            try:
                s = float(raw_scale)
            except ValueError:
                raise BenchmarkError(
                    f"REPRO_BENCH_SCALE must be a float or 'paper', got {raw_scale!r}"
                ) from None
            if s <= 0:
                raise BenchmarkError("REPRO_BENCH_SCALE must be positive")
            base = cls()
            config = base.with_overrides(
                city_fraction=min(base.city_fraction * s, 1.0),
                max_evaluations=max(1, int(base.max_evaluations * s)),
            )
        else:
            config = cls()
        runs = os.environ.get("REPRO_BENCH_RUNS", "").strip()
        if runs:
            config = config.with_overrides(runs=max(1, int(runs)))
        seed = os.environ.get("REPRO_BENCH_SEED", "").strip()
        if seed:
            config = config.with_overrides(seed=int(seed))
        every = os.environ.get("REPRO_CHECKPOINT_EVERY", "").strip()
        if every:
            try:
                config = config.with_overrides(checkpoint_every=int(every))
            except ValueError:
                raise BenchmarkError(
                    f"REPRO_CHECKPOINT_EVERY must be an integer, got {every!r}"
                ) from None
        return config
