"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause
while still being able to discriminate between substrate failures
(problem definition, parsing) and algorithmic misuse (bad parameters,
invalid solutions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InstanceError(ReproError):
    """A VRPTW instance is malformed or internally inconsistent.

    Raised for example when demands are negative, time windows are
    inverted (``due_date < ready_time``), a customer demand exceeds the
    vehicle capacity (making the instance trivially infeasible), or the
    number of sites disagrees with the coordinate arrays.
    """


class ParseError(ReproError):
    """A Solomon/Homberger instance file could not be parsed."""

    def __init__(self, message: str, *, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class SolutionError(ReproError):
    """A permutation string violates the representation invariants.

    The representation of section II.A of the paper requires the giant
    tour to start with the depot, contain every customer exactly once,
    contain exactly ``R + 1`` depot markers and have total length
    ``N + R + 1``.
    """


class OperatorError(ReproError):
    """A neighborhood operator was applied outside its preconditions."""


class SearchError(ReproError):
    """Tabu search was configured or driven incorrectly."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state.

    Typical causes: a process tried to interact with the environment
    after terminating, a message was addressed to an unknown processor,
    or the event queue was exhausted while processes still waited.
    """


class WorkerPoolError(SearchError):
    """The real-process worker pool was misconfigured or collapsed.

    Raised for invalid pool parameters (zero workers, malformed
    ``REPRO_POOL_FAULTS`` specs) and for unrecoverable execution
    failures — a task that keeps failing after its retry budget *and*
    the master-local fallback is exhausted.  Transient worker crashes,
    hangs and stragglers are *not* reported through exceptions: the
    pool retries, respawns and degrades, and records what happened in
    its counter report.
    """


class ServeError(SearchError):
    """The multi-tenant solve service was misused or misconfigured.

    Raised for invalid scheduler/job parameters, for operations against
    a scheduler that is not running, and as the base class of the two
    lifecycle signals below.  Deriving from :class:`SearchError` keeps
    the service inside the search-layer catch net: a caller that
    already handles driver failures handles service failures too.
    """


class AdmissionError(ServeError):
    """The scheduler refused a job at the admission boundary.

    This is *rejection*, not loss: the submit call fails loudly before
    the job enters any queue, so the client knows immediately that the
    work was not accepted and can back off or resubmit.  Raised when
    the bounded wait queue is full (overload) or when the scheduler is
    shutting down.
    """


class JobCancelled(ServeError):
    """A solve job was cancelled before reaching its budget.

    Raised by ``Job.wait()`` for jobs cancelled mid-run; the job's
    partial progress (iterations, evaluations served) stays readable on
    the job handle.
    """


class JobDeadlineExceeded(ServeError):
    """One attempt of a solve job overran its per-attempt deadline.

    The scheduler raises this internally when a running job exceeds
    ``JobSpec.deadline_s``; the attempt's in-flight pool tasks are
    cancelled and the job either retries from its latest checkpoint
    (while ``max_retries`` allows) or fails terminally with this
    exception, so the cause is always named on the job handle.
    """


class WrongInstanceError(ServeError):
    """A job was about to resume against a different instance.

    The serve ledger's ``accepted`` entries and serve-job checkpoints
    both record the instance's content fingerprint
    (:func:`repro.parallel.shm.instance_fingerprint`).  When a restarted
    scheduler — constructed over a different default instance, or fed a
    ledger whose instance payload no longer matches — would resume a
    job whose recorded fingerprint disagrees with the instance actually
    available, that job must fail loudly with this error instead of
    silently producing fronts for the wrong problem.  Non-retryable:
    every retry would see the same mismatch.
    """


class LedgerError(ServeError):
    """The solve service's durable job ledger cannot be trusted.

    Raised when a ledger line *before* the tail is corrupt — a torn
    final line (crash mid-append) is tolerated by design, but damage
    anywhere else means the file was edited or the filesystem lied,
    and recovering jobs from it could lose or duplicate work.
    """


class ObsError(ReproError):
    """The observability layer was asked to do something unsound.

    Raised when metric aggregation would silently produce garbage —
    most importantly merging two histograms whose bucket boundaries
    disagree (counts from incompatible grids cannot be added) — and
    for other misuse of the telemetry plane that must fail loudly
    rather than corrupt the numbers operators act on.
    """


class BenchmarkError(ReproError):
    """An experiment harness was configured inconsistently."""


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read or trusted.

    Raised for malformed headers, version/kind mismatches, truncated
    payloads and sha256 digest failures — anything that makes a
    snapshot unsafe to resume from.  A missing file is also reported
    through this class so callers can offer "start fresh" uniformly.
    """


class SearchInterrupted(ReproError):
    """A run stopped early at the user's request (SIGINT/SIGTERM).

    The interrupted driver has already written a checkpoint of its
    latest consistent state before raising; re-running with resume
    enabled continues from exactly that point.
    """

    def __init__(self, message: str, *, path=None) -> None:
        super().__init__(message)
        #: checkpoint file holding the interrupted run's state.
        self.path = path


class CrashInjected(ReproError):
    """Deterministic fault injection fired (``REPRO_CRASH_AFTER_EVALS``).

    Test-only: simulates an abrupt process death at a chosen evaluation
    count so crash-recovery tests can kill a run mid-flight *without*
    writing a farewell checkpoint — exactly like a SIGKILL or node
    loss — and then assert that resuming from the latest periodic
    snapshot reproduces the uninterrupted run bit for bit.
    """
