#!/usr/bin/env python
"""The synchronous protocol on *real* OS processes.

The benchmark tables run the parallel protocols on the deterministic
simulated cluster (see DESIGN.md — this reproduction targets a
single-core host, and CPython's GIL rules out shared-memory threading
for this workload).  This example shows the same synchronous
master–worker split on a real ``multiprocessing.Pool``: identical
selection logic, chunks farmed out as picklable route tuples.

On a single-core machine the wall-clock is *worse* than sequential —
process spawn, pickling and scheduling all cost real time while the
workers share one core.  That observation is itself part of the
reproduction record (the "multiprocessing awkward" band); on a real
multi-core box the same script shows genuine speedup.

Run:  python examples/real_multiprocessing.py
"""

import os

from repro import TSMOParams, generate_instance, run_sequential_tsmo
from repro.parallel.mp_backend import pickle_roundtrip_sizes, run_multiprocessing_tsmo


def main() -> None:
    instance = generate_instance("R1", 40, seed=3)
    params = TSMOParams(max_evaluations=1200, neighborhood_size=40, restart_after=10)

    sizes = pickle_roundtrip_sizes(instance)
    print(
        f"Payload sizes: instance {sizes['instance_bytes'] / 1024:.0f} KiB "
        f"(shipped once per worker), routes {sizes['routes_bytes']} bytes "
        "(shipped every task)\n"
    )

    sequential = run_sequential_tsmo(instance, params, seed=9)
    print(
        f"sequential      : {sequential.wall_time:6.2f}s wall, "
        f"best feasible {sequential.best_feasible()}"
    )

    parallel = run_multiprocessing_tsmo(instance, params, n_workers=2, seed=9)
    print(
        f"multiprocessing : {parallel.wall_time:6.2f}s wall "
        f"({parallel.processors - 1} workers), "
        f"best feasible {parallel.best_feasible()}"
    )

    cores = os.cpu_count() or 1
    verdict = (
        "speedup expected" if cores > 2 else "slowdown expected on this host"
    )
    print(f"\nThis machine has {cores} core(s): {verdict}.")


if __name__ == "__main__":
    main()
