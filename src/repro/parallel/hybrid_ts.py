"""Hybrid asynchronous + multisearch TSMO (paper §V future work).

"What remains for the future would be ... combining the multisearch TS
with the asynchronous TS to get the best of both worlds and probably
an algorithm that delivers both good solutions and runtime
performance."  And from §I: "A combination of multisearch and
functional decomposition could combine the best of two worlds."

This driver implements that combination on the simulated cluster:

* the fleet of ``n_islands`` searchers is the *multisearch* layer —
  each island runs its own TSMO with (optionally) perturbed parameters
  and, after an initial phase, sends archive-improving solutions to
  the next island on its rotating communication list (§III.E);
* each island is internally an *asynchronous master–worker* group
  (§III.D): the island master farms neighborhood generation out to
  ``procs_per_island - 1`` workers and proceeds on the four-condition
  decision function instead of waiting for stragglers.

Expected profile (checked by the hybrid benchmark): per-island runtime
close to the plain asynchronous variant at the same group size —
i.e. positive speedup, unlike the collaborative variant — while the
exchanged elites and parameter diversity buy collaborative-grade
fronts and vehicle counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.errors import SimulationError
from repro.mo.archive import ParetoArchive
from repro.mo.dominance import dominates
from repro.parallel.async_ts import AsyncParams
from repro.parallel.base import simulation_context
from repro.parallel.costmodel import CostModel
from repro.parallel.des import GET_TIMED_OUT
from repro.parallel.messages import (
    ResultMessage,
    SolutionMessage,
    StopMessage,
    TaskMessage,
)
from repro.parallel.sync_ts import split_chunks, worker_process
from repro.rng import RngFactory
from repro.tabu.neighborhood import Neighbor
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult
from repro.vrptw.instance import Instance

__all__ = ["HybridParams", "run_hybrid_tsmo"]


@dataclass(frozen=True, slots=True)
class HybridParams:
    """Knobs of the hybrid driver."""

    #: number of collaborating islands (multisearch layer).
    n_islands: int = 3
    #: processors per island (one master + workers; async layer).
    procs_per_island: int = 4
    #: perturb parameters of islands 1..n-1 (as §III.E does).
    perturb: bool = True
    #: initial-phase patience before exchanges start (iterations
    #: without an archive improvement); ``None`` uses each island's
    #: ``restart_after``.
    initial_phase_patience: int | None = None
    #: the asynchronous layer's knobs.
    async_params: AsyncParams = AsyncParams()

    def __post_init__(self) -> None:
        if self.n_islands < 2:
            raise SimulationError("the hybrid needs >= 2 islands")
        if self.procs_per_island < 2:
            raise SimulationError("each island needs a master and >= 1 worker")
        if self.initial_phase_patience is not None and self.initial_phase_patience < 0:
            raise SimulationError("initial_phase_patience must be >= 0")

    @property
    def total_processors(self) -> int:
        return self.n_islands * self.procs_per_island


def run_hybrid_tsmo(
    instance: Instance,
    params: TSMOParams | None = None,
    hybrid_params: HybridParams | None = None,
    seed: int | np.random.SeedSequence | None = None,
    cost_model: CostModel | None = None,
    *,
    registry: OperatorRegistry | None = None,
) -> TSMOResult:
    """Run the hybrid asynchronous-multisearch TSMO."""
    params = params or TSMOParams()
    hparams = hybrid_params or HybridParams()
    registry = registry or default_registry()
    aparams = hparams.async_params
    n_islands = hparams.n_islands
    k = hparams.procs_per_island
    total = hparams.total_processors

    factory = RngFactory(seed)
    island_rngs = factory.generators(n_islands)
    worker_rngs = factory.generators(n_islands * (k - 1))
    commlist_rng = factory.generator()
    cluster_seed = factory.seed_sequence()
    env, cluster, _ = simulation_context(total, cost_model, cluster_seed, 0)
    cost = cluster.cost

    engines: list[TSMOEngine] = []
    for island in range(n_islands):
        local = params
        if hparams.perturb and island > 0:
            local = params.perturbed(island_rngs[island])
        engines.append(
            TSMOEngine(
                instance,
                local,
                island_rngs[island],
                evaluator=Evaluator(instance, params.max_evaluations),
                registry=registry,
            )
        )

    masters = [island * k for island in range(n_islands)]
    comm_lists = [
        list(commlist_rng.permutation([m for m in masters if m != masters[i]]))
        for i in range(n_islands)
    ]
    finish_times = [0.0] * n_islands
    exchanges = [0] * n_islands
    pool_sizes: list[int] = []

    def island_master(island: int):
        engine = engines[island]
        rank = masters[island]
        inbox = cluster.inbox(rank)
        my_workers = list(range(rank + 1, rank + k))
        comm = comm_lists[island]
        patience = (
            hparams.initial_phase_patience
            if hparams.initial_phase_patience is not None
            else engine.params.restart_after
        )

        yield cluster.compute(rank, cost.init_cost(instance.n_customers))
        engine.initialize()
        idle = set(my_workers)
        pool: list[Neighbor] = []
        equal = engine.params.neighborhood_size / k
        master_chunk = int(round(aparams.master_share * equal))
        worker_chunks = split_chunks(
            engine.params.neighborhood_size - master_chunk, k - 1
        )
        chunk_of = {w: worker_chunks[j] for j, w in enumerate(my_workers)}
        max_wait = (
            aparams.max_wait
            if aparams.max_wait is not None
            else 1.25 * cost.eval_cost * max(worker_chunks)
        )
        initial_phase = True
        last_improvement = 0

        def absorb(msg):
            """Handle either a worker result or a foreign elite."""
            if isinstance(msg, SolutionMessage):
                yield cluster.receive_overhead(rank, 1, streamed=False)
                engine.memories.nondom.try_add(msg.solution, msg.objectives)
                return
            yield cluster.receive_overhead(rank, len(msg.neighbors), streamed=True)
            pool.extend(msg.neighbors)
            if msg.final:
                idle.add(msg.worker)

        while not engine.done:
            iteration = engine.iteration + 1
            for w in sorted(idle):
                cluster.send(
                    rank, w, TaskMessage(engine.current, chunk_of[w], iteration), n_items=1
                )
            idle.clear()
            yield cluster.compute(rank, cost.eval_cost * master_chunk)
            pool.extend(engine.generate_neighborhood(master_chunk))

            deadline = env.now + max_wait
            while True:
                while (msg := inbox.get_nowait()) is not None:
                    yield from absorb(msg)
                current_obj = engine.current.objectives.as_array()
                c1 = bool(idle)
                c2 = any(dominates(n.objectives.as_array(), current_obj) for n in pool)
                c3 = env.now >= deadline
                c4 = engine.evaluator.exhausted
                if pool and (c1 or c2 or c3 or c4):
                    break
                if not pool and c4:
                    break
                timeout = None if c3 else max(deadline - env.now, 0.0)
                msg = yield inbox.get(timeout=timeout)
                if msg is GET_TIMED_OUT:
                    continue
                yield from absorb(msg)
            if not pool:
                break
            pool_sizes.append(len(pool))
            version_before = engine.memories.archive.version
            yield cluster.compute(rank, cost.selection_cost(len(pool)))
            engine.select_and_update(pool)
            pool.clear()

            improved = engine.memories.archive.version != version_before
            if improved:
                last_improvement = engine.iteration
            if initial_phase:
                if engine.iteration - last_improvement >= patience:
                    initial_phase = False
            elif improved and comm:
                dst = comm.pop(0)
                comm.append(dst)
                cluster.send(
                    rank,
                    dst,
                    SolutionMessage(
                        sender=rank,
                        solution=engine.current,
                        objectives=engine.current.objectives,
                    ),
                    n_items=1,
                )
                exchanges[island] += 1

        finish_times[island] = env.now
        for w in my_workers:
            cluster.send(rank, w, StopMessage(), n_items=1)

    for island in range(n_islands):
        env.process(island_master(island), name=f"island-{island}-master")
        for j, w in enumerate(range(masters[island] + 1, masters[island] + k)):
            env.process(
                worker_process(
                    cluster,
                    w,
                    registry,
                    worker_rngs[island * (k - 1) + j],
                    engines[island].evaluator,
                    batch_size=aparams.batch_size,
                    master=masters[island],
                ),
                name=f"island-{island}-worker-{w}",
            )

    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start

    merged: ParetoArchive = ParetoArchive(params.archive_capacity)
    for engine in engines:
        for entry in engine.memories.archive.entries:
            merged.try_add(entry.item, entry.objectives)

    result = TSMOResult(
        instance_name=instance.name,
        algorithm="hybrid",
        params=params,
        archive=list(merged.entries),
        iterations=sum(e.iteration for e in engines),
        evaluations=sum(e.evaluator.count for e in engines),
        restarts=sum(e.restarts for e in engines),
        wall_time=wall,
        simulated_time=max(finish_times),
        processors=total,
    )
    result.extra["messages_sent"] = cluster.messages_sent
    result.extra["exchanges"] = sum(exchanges)
    result.extra["per_island_evaluations"] = [e.evaluator.count for e in engines]
    result.extra["per_island_finish"] = list(finish_times)
    result.extra["mean_pool_size"] = float(np.mean(pool_sizes)) if pool_sizes else 0.0
    return result
