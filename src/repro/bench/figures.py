"""Figure 1 — the asynchronous search trajectory.

The paper's Figure 1 plots, in objective space, the neighbors an
asynchronous run evaluates (labelled by the iteration that created
them), the solutions selected as current solutions (circled), and the
trajectory approaching the Pareto front — illustrating that the
asynchronous master "can consider only parts of a neighborhood per
iteration and will take the other parts into account once they will be
evaluated".

:func:`fig1_trajectory` reproduces the data behind that figure from a
real asynchronous run: per-point creation iteration, selection
iteration, objective values, plus the carryover count (selections of
neighbors created in an earlier iteration — nonzero only for the
asynchronous variant, which is the figure's whole point).
:func:`render_ascii` draws a terminal-friendly scatter of the
distance/tardiness plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.config import BenchConfig
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.costmodel import CostModel
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.catalog import instances_for_table

__all__ = ["Fig1Data", "fig1_trajectory", "render_ascii"]


@dataclass
class Fig1Data:
    """The series behind Figure 1."""

    #: evaluated neighbors: [created_iter, selected_iter, f1, f2, f3].
    neighbors: np.ndarray
    #: selected currents: same columns (selected_iter is the circling).
    selections: np.ndarray
    #: selections whose solution was created in an earlier iteration.
    carryover_selections: int
    #: neighbors pooled after their creation iteration had passed.
    carryover_neighbors: int
    instance_name: str
    iterations: int
    #: cumulative route-stats cache counters per iteration:
    #: ``[iteration, hits, misses, evictions]`` (delta-evaluation
    #: observability; empty when the run recorded no cache data).
    cache_timeline: np.ndarray = field(default_factory=lambda: np.zeros((0, 4)))

    @property
    def max_iteration(self) -> int:
        """Last recorded iteration."""
        if self.selections.shape[0] == 0:
            return 0
        return int(self.selections[:, 1].max())

    @property
    def final_hit_rate(self) -> float:
        """Route-stats cache hit rate at the end of the run."""
        if self.cache_timeline.shape[0] == 0:
            return 0.0
        _, hits, misses, _ = self.cache_timeline[-1]
        total = hits + misses
        return float(hits / total) if total else 0.0


def fig1_trajectory(
    config: BenchConfig | None = None,
    n_processors: int = 3,
    seed: int = 1,
    cost_model: CostModel | None = None,
) -> Fig1Data:
    """Run the asynchronous TSMO with tracing and extract the figure data."""
    config = config or BenchConfig.from_env()
    instance = instances_for_table("table1", scale=config.city_fraction)[0].build()
    trace = TrajectoryRecorder()
    result = run_asynchronous_tsmo(
        instance,
        config.tsmo_params(),
        n_processors,
        seed,
        cost_model,
        AsyncParams(),
        trace=trace,
    )
    return Fig1Data(
        neighbors=trace.neighbors_array(),
        selections=trace.selections_array(),
        carryover_selections=trace.carryover_count,
        carryover_neighbors=int(result.extra.get("carryover_neighbors", 0)),
        instance_name=instance.name,
        iterations=result.iterations,
        cache_timeline=trace.cache_array(),
    )


def render_ascii(data: Fig1Data, width: int = 72, height: int = 24) -> str:
    """ASCII scatter of the trajectory in the (f1, f3) plane.

    Neighbors render as ``.``, selected currents as ``o``, carryover
    selections (created before the iteration that selected them — the
    asynchronous signature) as ``O``.
    """
    if data.selections.shape[0] == 0:
        return "(no trajectory recorded)"
    points = data.neighbors if data.neighbors.size else data.selections
    x = points[:, 2]
    y = points[:, 4]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def plot(px: float, py: float, mark: str) -> None:
        col = int((px - x_lo) / x_span * (width - 1))
        row = height - 1 - int((py - y_lo) / y_span * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = mark

    for row_data in data.neighbors:
        plot(row_data[2], row_data[4], ".")
    for row_data in data.selections:
        carry = 0 < row_data[0] < row_data[1]
        plot(row_data[2], row_data[4], "O" if carry else "o")
    lines = ["".join(r) for r in grid]
    header = (
        f"Figure 1 analogue - async trajectory on {data.instance_name} "
        f"({data.iterations} iterations, {data.carryover_selections} carryover "
        f"selections, {data.carryover_neighbors} carryover neighbors, "
        f"{data.final_hit_rate:.0%} stats-cache hits)"
    )
    axis = (
        f"x: total distance [{x_lo:.0f}, {x_hi:.0f}]   "
        f"y: tardiness [{y_lo:.0f}, {y_hi:.0f}]   . neighbor  o selected  O carryover"
    )
    return "\n".join([header, axis, *lines])
