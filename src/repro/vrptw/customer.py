"""Site records: customers and the depot.

The paper (section II) indexes all *sites* as ``S = {0, .., N}`` with
index 0 reserved for the depot and ``C = {1, .., N}`` for customers.
Each customer carries a demand ``d_i``, a ready time ``a_i``, a due
date ``b_i`` and a service time ``c_i``.  The depot is a degenerate
site: zero demand, zero service time, and a time window spanning the
whole planning horizon (its due date is the latest time a vehicle may
return).

These records are convenience views; the hot numerical paths work on
the packed arrays held by :class:`repro.vrptw.instance.Instance`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Customer", "Depot"]


@dataclass(frozen=True, slots=True)
class Customer:
    """A single customer site.

    Attributes
    ----------
    index:
        Site index in ``1 .. N`` (0 is the depot).
    x, y:
        Euclidean plane coordinates; travel costs are distances in this
        plane (paper section II: "This matrix is computed by calculating
        the Euclidean distance").
    demand:
        Amount of goods to deliver, ``d_i >= 0``.
    ready_time:
        Lower bound ``a_i`` of the service time window; a vehicle
        arriving earlier waits.
    due_date:
        Upper bound ``b_i``; arriving later is a (soft) constraint
        violation contributing to objective ``f3``.
    service_time:
        Delay ``c_i`` incurred at the customer once service starts.
    """

    index: int
    x: float
    y: float
    demand: float
    ready_time: float
    due_date: float
    service_time: float

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"customer index must be >= 1, got {self.index}")
        if self.demand < 0:
            raise ValueError(f"customer {self.index}: negative demand {self.demand}")
        if self.service_time < 0:
            raise ValueError(
                f"customer {self.index}: negative service time {self.service_time}"
            )
        if self.due_date < self.ready_time:
            raise ValueError(
                f"customer {self.index}: inverted time window "
                f"[{self.ready_time}, {self.due_date}]"
            )

    @property
    def window_width(self) -> float:
        """Width ``b_i - a_i`` of the service window."""
        return self.due_date - self.ready_time


@dataclass(frozen=True, slots=True)
class Depot:
    """The depot site (index 0).

    ``horizon`` is the depot due date: the latest instant by which every
    vehicle must be back (in the soft-time-window formulation, lateness
    at the depot is tardiness like any other).
    """

    x: float
    y: float
    horizon: float

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"depot horizon must be positive, got {self.horizon}")

    @property
    def index(self) -> int:
        """The depot always has site index 0."""
        return 0
