#!/usr/bin/env python
"""Watch a solve service live: snapshot tables off the telemetry bus.

The scheduler publishes every traced event — job lifecycle, worker
batches, periodic ``metrics_snapshot`` readings — onto an in-process
:class:`~repro.obs.stream.EventBus`.  Anything can subscribe without
touching the search: a slow subscriber drops *its own* oldest events
(counted, never blocking the pump), so watching a run can never change
it — the bit-identity guard in ``tests/test_telemetry.py`` holds the
service to that.

This example submits a burst of jobs from two tenants to a real
two-worker service, consumes the live snapshot stream with
:meth:`~repro.serve.SolveScheduler.tail_all` while the jobs run, and
prints a dashboard table mid-run: jobs in flight, queue depth, pool
backlog, per-tenant deficit-round-robin credit, and running latency
quantiles estimated from the mergeable histograms.  At the end it
tails one job's full event stream and renders the final Prometheus
exposition — the same text a scraper would pull.

Run:  python examples/live_dashboard.py
"""

import asyncio

from repro.obs import quantile_from_histogram, render_exposition
from repro.parallel.pool import PoolParams
from repro.serve import JobSpec, ServeParams, SolveScheduler
from repro.tabu.params import TSMOParams
from repro.vrptw.generator import generate_instance

#: shrunk supervision intervals so the demo finishes in seconds.
DEMO_POOL = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

N_JOBS = 10
PARAMS = TSMOParams(max_evaluations=64, neighborhood_size=8)
TENANTS = {"acme": 3.0, "globex": 1.0}


def latency_quantiles(snapshot):
    hist = snapshot.get("metrics", {}).get("histograms", {}).get(
        "serve.job_latency_s"
    )
    if not hist or hist.get("count", 0) == 0:
        return "-", "-"
    p50 = quantile_from_histogram(hist["bounds"], hist["counts"], 0.50)
    p99 = quantile_from_histogram(hist["bounds"], hist["counts"], 0.99)
    return f"{p50 * 1e3:.0f}ms", f"{p99 * 1e3:.0f}ms"


def print_row(snapshot, header=False):
    if header:
        print(
            f"{'active':>6} {'queued':>6} {'backlog':>7} {'done':>4} "
            f"{'p50':>7} {'p99':>7}  deficits"
        )
    p50, p99 = latency_quantiles(snapshot)
    deficits = " ".join(
        f"{tenant}={value:.1f}"
        for tenant, value in snapshot.get("deficits", {}).items()
    )
    print(
        f"{snapshot['jobs_active']:>6} {snapshot['jobs_queued']:>6} "
        f"{snapshot['pool_backlog']:>7} "
        f"{snapshot['counters'].get('completed', 0):>4} "
        f"{p50:>7} {p99:>7}  {deficits}"
    )


async def main():
    instance = generate_instance("R1", 20, seed=55)
    # Cap concurrency well below the job count so the dashboard shows a
    # real queue draining (and so jobs tailed after submission are
    # still queued — their running -> done transitions get streamed).
    params = ServeParams(snapshot_interval=0.1, max_active=3, max_queued=64)

    async with SolveScheduler(
        instance,
        n_workers=2,
        pool_params=DEMO_POOL,
        params=params,
        tenant_weights=TENANTS,
    ) as scheduler:
        # -- the live dashboard: one table row per metrics_snapshot ----
        rows = 0

        async def watch():
            nonlocal rows
            async for event in scheduler.tail_all():
                if event["type"] != "metrics_snapshot":
                    continue
                print_row(event["snapshot"], header=rows == 0)
                rows += 1

        watcher = asyncio.ensure_future(watch())

        print(f"== submitting {N_JOBS} jobs from {len(TENANTS)} tenants ==")
        tenants = list(TENANTS)
        jobs = [
            scheduler.submit(
                JobSpec(
                    job_id=f"job-{i:02d}",
                    tenant=tenants[i % len(tenants)],
                    seed=100 + i,
                    params=PARAMS,
                )
            )
            for i in range(N_JOBS)
        ]

        # -- tail one still-queued job's stream while everything runs --
        # (events published before the subscription are gone — the bus
        # buffers per-subscriber, not globally — but with max_active=3
        # the later jobs are still queued, so their running -> done
        # transitions get streamed in full).
        lifecycle = []

        async def tail_one():
            async for event in scheduler.tail("job-07"):
                if event["type"] == "job_state":
                    lifecycle.append(event["state"])

        tailer = asyncio.ensure_future(tail_one())

        await asyncio.gather(*(job.wait() for job in jobs))
        await tailer
        await asyncio.sleep(0.25)  # a final snapshot with everything done
        watcher.cancel()
        try:
            await watcher
        except asyncio.CancelledError:
            pass

        print(f"\njob-07 lifecycle as streamed: {' -> '.join(lifecycle)}")
        print(
            f"bus: {scheduler.bus.published} events published, "
            f"{scheduler.bus.dropped()} dropped, {rows} snapshots rendered"
        )

        # -- what a scraper would pull -------------------------------
        print("\n== final exposition (excerpt) ==")
        text = render_exposition(scheduler.obs.metrics.snapshot())
        for line in text.splitlines():
            if "serve_jobs" in line or "job_latency_s_bucket" in line:
                print(line)


if __name__ == "__main__":
    asyncio.run(main())
