"""Shared scaffolding of the simulated parallel drivers.

All four drivers (sequential baseline, synchronous, asynchronous,
collaborative) follow the same recipe: build a deterministic RNG tree
from one seed, put a :class:`~repro.parallel.cluster.SimCluster` on a
fresh :class:`~repro.parallel.des.Environment`, run the protocol as
simulated processes, and snapshot the engine(s) into a
:class:`~repro.tabu.search.TSMOResult` whose ``simulated_time`` is the
cluster time at which the algorithm delivered its result.

The RNG spawning order is part of each driver's definition (seed →
search stream(s) → cluster stream); re-running any driver with the
same arguments replays the identical search *and* the identical
message timeline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.operators.registry import OperatorRegistry
from repro.obs import NULL_OBS
from repro.parallel.cluster import SimCluster
from repro.parallel.costmodel import CostModel
from repro.parallel.des import Environment
from repro.rng import RngFactory
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.instance import Instance

__all__ = ["run_sequential_simulated", "simulation_context"]


def simulation_context(
    n_processors: int,
    cost_model: CostModel | None,
    seed: int | np.random.SeedSequence | None,
    n_search_streams: int = 1,
) -> tuple[Environment, SimCluster, list[np.random.Generator]]:
    """Build the environment, cluster and search RNG streams for a driver."""
    factory = RngFactory(seed)
    search_streams = factory.generators(n_search_streams)
    cluster_seed = factory.seed_sequence()
    env = Environment()
    cluster = SimCluster(env, n_processors, cost_model, seed=cluster_seed)
    return env, cluster, search_streams


def run_sequential_simulated(
    instance: Instance,
    params: TSMOParams | None = None,
    seed: int | np.random.SeedSequence | None = None,
    cost_model: CostModel | None = None,
    *,
    registry: OperatorRegistry | None = None,
    trace: TrajectoryRecorder | None = None,
    checkpoint=None,
    obs=NULL_OBS,
) -> TSMOResult:
    """The sequential TSMO with simulated timing — the ``T_s`` baseline.

    Algorithmically identical to
    :func:`repro.tabu.search.run_sequential_tsmo` (same seed → same
    archive); additionally accumulates the cost-model time a single
    reference processor would need, which is the numerator of every
    speedup in Tables I–IV.

    Checkpointing (via a :class:`~repro.persistence.CheckpointPolicy`)
    snapshots at iteration boundaries — where the single process owns
    all state and no event is in flight — and is fully transparent:
    results are bit-identical with or without it.  Snapshots add the
    simulated clock, so a resumed run reports the same
    ``simulated_time`` as an uninterrupted one.
    """
    params = params or TSMOParams()
    # Simulated drivers profile in cost-model units (deterministic, so
    # profiles are bit-identical across runs and resume legs).
    obs.set_unit("simulated")
    env, cluster, (search_rng,) = simulation_context(1, cost_model, seed)
    cost = cluster.cost
    engine = TSMOEngine(
        instance, params, search_rng, registry=registry, trace=trace, obs=obs
    )

    resumed = (
        checkpoint.load_resume_state(kind="sequential-sim")
        if checkpoint is not None
        else None
    )
    if resumed is not None:
        engine.restore(resumed["engine"])
        cluster.restore_state(resumed["cluster"])
        env.now = resumed["env_now"]
        checkpoint.note_resumed(engine.evaluator.count)

    def build_state():
        return {
            "engine": engine.snapshot(),
            "cluster": cluster.export_state(),
            "env_now": env.now,
        }

    def driver():
        cache = engine.evaluator.stats_cache
        if resumed is None:
            yield cluster.compute(0, cost.init_cost(instance.n_customers))
            engine.initialize()
        while True:
            if checkpoint is not None:
                checkpoint.tick(
                    engine.evaluator.count, build_state, kind="sequential-sim"
                )
            if engine.done:
                break
            misses_before = cache.misses
            neighbors = engine.generate_neighborhood()
            nominal = cost.eval_cost * len(neighbors)
            if cost.miss_scan_cost > 0.0:
                nominal += cost.miss_scan_cost * (cache.misses - misses_before)
            t0 = env.now
            yield cluster.compute(0, nominal)
            t1 = env.now
            yield cluster.compute(0, cost.selection_cost(len(neighbors)))
            profiler = obs.profiler
            if profiler.enabled:
                profiler.add("evaluate", t1 - t0)
                profiler.add("select", env.now - t1)
            engine.select_and_update(neighbors)

    start = time.perf_counter()
    env.process(driver(), name="sequential")
    env.run()
    wall = time.perf_counter() - start
    return engine.result(
        "sequential",
        wall_time=wall,
        simulated_time=env.now,
        processors=1,
    )
