"""Tests for the fleet-reduction post-processor and aspiration flag."""

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.core.fleet_reduction import reduce_fleet
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    # Wide windows + generous capacity: routes are mergeable.
    return generate_instance("C2", 40, seed=21)


@pytest.fixture(scope="module")
def seed_solution(instance):
    return i1_construct(instance, rng=np.random.default_rng(4))


class TestFleetReduction:
    def test_never_increases_fleet(self, instance, seed_solution):
        result = reduce_fleet(seed_solution)
        assert result.solution.n_routes <= seed_solution.n_routes
        assert result.routes_removed == (
            seed_solution.n_routes - result.solution.n_routes
        )

    def test_hard_mode_adds_no_tardiness(self, instance, seed_solution):
        result = reduce_fleet(seed_solution, mode="hard")
        assert result.tardiness_added == 0.0
        assert (
            result.solution.objectives.tardiness
            <= seed_solution.objectives.tardiness + 1e-9
        )

    def test_result_valid(self, instance, seed_solution):
        result = reduce_fleet(seed_solution)
        Solution._validate_routes(instance, result.solution.routes)
        assert all(
            load <= instance.capacity + 1e-9
            for load in result.solution.route_loads()
        )

    def test_original_untouched(self, instance, seed_solution):
        before = seed_solution.routes
        reduce_fleet(seed_solution)
        assert seed_solution.routes == before

    def test_soft_mode_reports_tardiness(self, instance):
        # Tight-window instance: soft merging typically creates lateness.
        tight = generate_instance("R1", 40, seed=8)
        seed = i1_construct(tight, rng=np.random.default_rng(1))
        result = reduce_fleet(seed, mode="soft")
        if result.routes_removed:
            assert result.tardiness_added >= 0.0

    def test_invalid_mode(self, seed_solution):
        with pytest.raises(SearchError, match="mode"):
            reduce_fleet(seed_solution, mode="greedy")

    def test_single_route_noop(self):
        inst = generate_instance("R2", 6, seed=2)
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5, 6]])
        result = reduce_fleet(sol)
        assert result.routes_removed == 0
        assert result.solution is sol

    def test_customers_moved_accounting(self, instance, seed_solution):
        result = reduce_fleet(seed_solution)
        if result.routes_removed:
            assert result.customers_moved > 0
            # Every customer still served exactly once.
            served = sorted(c for r in result.solution.routes for c in r)
            assert served == list(range(1, instance.n_customers + 1))


class TestAspiration:
    def test_aspiration_admits_archive_improving_tabu_move(self):
        """With every candidate tabu, plain TS restarts; aspiration may
        still move if something would improve the archive."""
        from repro.tabu.params import TSMOParams
        from repro.tabu.search import TSMOEngine

        instance = generate_instance("R1", 25, seed=31)
        base = dict(
            max_evaluations=2000,
            neighborhood_size=30,
            tabu_tenure=100,
            restart_after=50,
        )
        plain = TSMOEngine(instance, TSMOParams(**base), 7)
        aspiring = TSMOEngine(instance, TSMOParams(**base, aspiration=True), 7)
        for engine in (plain, aspiring):
            engine.initialize()
            neighbors = engine.generate_neighborhood()
            for n in neighbors:
                engine.memories.tabulist.push(n.move.attribute)
            # Guarantee an archive-improving candidate exists.
            engine.memories.archive.clear()
            engine.select_and_update(neighbors)
        assert plain.restarts == 1
        assert aspiring.restarts == 0

    def test_aspiration_run_completes(self):
        from repro.tabu.params import TSMOParams
        from repro.tabu.search import run_sequential_tsmo

        instance = generate_instance("C2", 20, seed=3)
        result = run_sequential_tsmo(
            instance,
            TSMOParams(
                max_evaluations=600,
                neighborhood_size=25,
                restart_after=6,
                aspiration=True,
            ),
            seed=2,
        )
        assert result.best_feasible() is not None
