"""Neighborhood sampling (paper §III.B, "Neighborhood Generation").

"The Neighborhood Generation draws a number of moves, specified in the
neighborhood size parameter, from the five operators described in
II.B.  For each move to create one of the operators is chosen at
random, with equal probabilities for each."

The same function runs on the sequential searcher, on the simulated
master, and on simulated workers — it is the unit of work the paper
parallelizes.  Each produced :class:`Neighbor` carries the move (for
the tabu attribute) and its objectives; every neighbor costs one unit
of the evaluation budget.

Two layers make this the delta-evaluation hot path (DESIGN.md):

* objectives come from :meth:`~repro.core.evaluation.Evaluator.
  evaluate_move` — parent statistics plus cached/recomputed statistics
  of the 1-2 edited routes, no child :class:`Solution` built.  The
  child materializes lazily, only if the neighbor is actually selected
  or archived (roughly 1 of S per iteration);
* random draws run through :class:`repro.rng.FastRng`, a buffered
  bit-identical facade over the sampler's PCG64 stream, because scalar
  ``Generator.integers`` dispatch dominates move proposal time.

Both layers are exact: the sampled moves, the objective floats and the
downstream search trajectory are bit-identical to the eager path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.objectives import ObjectiveVector
from repro.core.operators.base import Move
from repro.core.operators.registry import OperatorRegistry
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.rng import FastRng

__all__ = ["Neighbor", "sample_neighborhood"]


class Neighbor:
    """One evaluated neighbor of a current solution.

    Holds the move and the (pre-computed) objectives; the neighbor
    *solution* is materialized on first access by applying the move to
    the parent, so the ~S-1 unselected neighbors of an iteration never
    pay for route-tuple construction.  Constructed either lazily
    (``parent=...``) or eagerly (``solution=...``, e.g. when a worker
    process shipped the routes back).
    """

    __slots__ = ("move", "objectives", "iteration", "_parent", "_solution")

    def __init__(
        self,
        move: Move,
        objectives: ObjectiveVector,
        iteration: int = 0,
        *,
        parent: Solution | None = None,
        solution: Solution | None = None,
    ) -> None:
        if (parent is None) == (solution is None):
            raise SearchError("Neighbor needs exactly one of parent= or solution=")
        self.move = move
        self.objectives = objectives
        #: iteration at which the neighbor was generated (used by the
        #: asynchronous variant, where stragglers' neighbors join later
        #: selections, and by the Figure-1 trajectory trace).
        self.iteration = iteration
        self._parent = parent
        self._solution = solution

    @property
    def solution(self) -> Solution:
        """The neighbor solution (applied to the parent on first access)."""
        child = self._solution
        if child is None:
            child = self.move.apply(self._parent)
            self._solution = child
        return child

    @property
    def materialized(self) -> bool:
        """Whether :attr:`solution` has been built yet."""
        return self._solution is not None

    def __repr__(self) -> str:
        state = "materialized" if self._solution is not None else "lazy"
        return (
            f"Neighbor({self.move.name!r}, objectives={self.objectives!r}, "
            f"iteration={self.iteration}, {state})"
        )


def sample_neighborhood(
    solution: Solution,
    size: int,
    registry: OperatorRegistry,
    rng: np.random.Generator,
    evaluator: Evaluator,
    *,
    iteration: int = 0,
    profiler=None,
) -> list[Neighbor]:
    """Generate and evaluate up to ``size`` neighbors of ``solution``.

    The list can be shorter than ``size`` only when the registry's
    retry cap is exhausted (a pathologically locked solution); callers
    treat a short list exactly like a full one.

    ``profiler`` (a :class:`~repro.obs.profiler.PhaseProfiler` in
    wall-clock units) splits the loop into *generate* (move proposal)
    and *evaluate* (delta evaluation) phases.  The instrumented loop is
    a separate body so the default path stays exactly as fast as
    before; the draws and evaluations themselves are identical, so the
    produced neighborhood is bit-for-bit the same.
    """
    neighbors: list[Neighbor] = []
    if size <= 0:
        return neighbors
    draw_move = registry.draw_move
    evaluate_move = evaluator.evaluate_move
    append = neighbors.append
    fast = FastRng(rng)
    try:
        if profiler is None:
            for _ in range(size):
                move = draw_move(solution, fast)
                if move is None:
                    break
                objectives = evaluate_move(solution, move)
                append(Neighbor(move, objectives, iteration, parent=solution))
        else:
            perf_counter = time.perf_counter
            generated = evaluated = 0.0
            for _ in range(size):
                t0 = perf_counter()
                move = draw_move(solution, fast)
                t1 = perf_counter()
                generated += t1 - t0
                if move is None:
                    break
                objectives = evaluate_move(solution, move)
                evaluated += perf_counter() - t1
                append(Neighbor(move, objectives, iteration, parent=solution))
            profiler.add("generate", generated)
            profiler.add("evaluate", evaluated)
    finally:
        fast.detach()
    return neighbors
