"""Typed message payloads of the master/worker and multisearch protocols."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.objectives import ObjectiveVector
from repro.core.solution import Solution
from repro.tabu.neighborhood import Neighbor

__all__ = ["TaskMessage", "ResultMessage", "SolutionMessage", "StopMessage"]


@dataclass(frozen=True, slots=True)
class TaskMessage:
    """Master → worker: generate and evaluate part of a neighborhood."""

    solution: Solution
    count: int
    iteration: int


@dataclass(frozen=True, slots=True)
class ResultMessage:
    """Worker → master: a batch of evaluated neighbors.

    ``final`` marks the last batch of the worker's current task — on
    receiving it the master knows the worker is idle again (condition
    ``c1`` of the asynchronous decision function).
    """

    worker: int
    neighbors: tuple[Neighbor, ...]
    iteration: int
    final: bool


@dataclass(frozen=True, slots=True)
class SolutionMessage:
    """Searcher → searcher (collaborative): an archive-improving solution."""

    sender: int
    solution: Solution
    objectives: ObjectiveVector


@dataclass(frozen=True, slots=True)
class StopMessage:
    """Master → worker: shut down."""

    reason: str = "budget exhausted"
