"""NSGA-II for the CVRPTW (the paper's §V comparison baseline).

A faithful NSGA-II main loop — fast non-dominated sorting, crowding
distance, binary tournament on (rank, crowding), elitist environmental
selection — specialized to the permutation-coded CVRPTW:

* **initialization**: randomized I1 constructions (random parameters
  per individual, as the paper randomizes its seeds);
* **crossover**: route-based crossover (RBX, Potvin & Bengio style):
  the child keeps a random subset of parent A's routes, adopts parent
  B's routes purged of duplicates, and first-fit-inserts any uncovered
  customers at cheapest capacity-feasible positions;
* **mutation**: a burst of random moves drawn from the same five-
  operator registry the tabu search uses (so both algorithms explore
  the identical neighborhood structure — the comparison measures the
  *metaheuristic*, not the move set).

Evaluations are counted by the shared :class:`~repro.core.evaluation.
Evaluator`, so "equal budget" means the same thing it means for TSMO.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.construction import I1Params, i1_construct
from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.mo.archive import ParetoArchive
from repro.mo.crowding import crowding_distances
from repro.mo.dominance import non_dominated_sort
from repro.rng import RngFactory
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOResult
from repro.vrptw.instance import Instance

__all__ = ["NSGA2Params", "run_nsga2"]


@dataclass(frozen=True, slots=True)
class NSGA2Params:
    """Knobs of the NSGA-II comparator."""

    population_size: int = 50
    crossover_rate: float = 0.9
    #: random operator moves applied per mutation.
    mutation_moves: int = 2
    #: probability an offspring is mutated at all.
    mutation_rate: float = 0.8

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise SearchError("population_size must be >= 4")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise SearchError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise SearchError("mutation_rate must be in [0, 1]")
        if self.mutation_moves < 0:
            raise SearchError("mutation_moves must be >= 0")


def _route_based_crossover(
    instance: Instance,
    parent_a: Solution,
    parent_b: Solution,
    rng: np.random.Generator,
) -> Solution:
    """RBX: keep a random subset of A's routes, fill from B, repair."""
    n_keep = int(rng.integers(1, len(parent_a.routes) + 1))
    keep_idx = rng.choice(len(parent_a.routes), size=n_keep, replace=False)
    kept = [parent_a.routes[i] for i in sorted(keep_idx)]
    covered = {c for route in kept for c in route}

    routes: list[list[int]] = [list(r) for r in kept]
    for route in parent_b.routes:
        if len(routes) >= instance.n_vehicles:
            break
        remainder = [c for c in route if c not in covered]
        if remainder:
            routes.append(remainder)
            covered.update(remainder)

    missing = [c for c in range(1, instance.n_customers + 1) if c not in covered]
    if missing:
        _cheapest_insert(instance, routes, missing)
    # Capacity repair: B-routes purged of duplicates keep their load or
    # shrink, and insertion is capacity-checked, but A∪B unions can
    # still overflow a kept A-route only if insertion targeted it —
    # which _cheapest_insert forbids; assert in debug builds via tests.
    return Solution.from_routes(instance, routes)


def _cheapest_insert(
    instance: Instance, routes: list[list[int]], missing: list[int]
) -> None:
    """First-fit-decreasing cheapest insertion (capacity-feasible)."""
    demand = instance._demand_l
    travel = instance._travel_rows
    loads = [sum(demand[c] for c in r) for r in routes]
    for u in sorted(missing, key=lambda c: -demand[c]):
        best: tuple[float, int, int] | None = None
        for ri, route in enumerate(routes):
            if loads[ri] + demand[u] > instance.capacity:
                continue
            for pos in range(len(route) + 1):
                i = route[pos - 1] if pos > 0 else 0
                j = route[pos] if pos < len(route) else 0
                delta = travel[i][u] + travel[u][j] - travel[i][j]
                if best is None or delta < best[0]:
                    best = (delta, ri, pos)
        if best is None:
            if len(routes) >= instance.n_vehicles:
                raise SearchError("crossover repair ran out of vehicles")
            routes.append([u])
            loads.append(demand[u])
        else:
            _, ri, pos = best
            routes[ri].insert(pos, u)
            loads[ri] += demand[u]


def _mutate(
    solution: Solution,
    registry: OperatorRegistry,
    n_moves: int,
    rng: np.random.Generator,
) -> Solution:
    for _ in range(n_moves):
        move = registry.draw_move(solution, rng)
        if move is None:
            break
        solution = move.apply(solution)
    return solution


def _rank_and_crowding(
    objectives: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-individual front rank and within-front crowding distance."""
    n = objectives.shape[0]
    ranks = np.empty(n, dtype=np.int64)
    crowding = np.empty(n, dtype=np.float64)
    for rank, front in enumerate(non_dominated_sort(objectives)):
        ranks[front] = rank
        crowding[front] = crowding_distances(objectives[front])
    return ranks, crowding


def _tournament(
    ranks: np.ndarray, crowding: np.ndarray, rng: np.random.Generator
) -> int:
    a, b = rng.integers(0, ranks.shape[0], size=2)
    if ranks[a] != ranks[b]:
        return int(a if ranks[a] < ranks[b] else b)
    return int(a if crowding[a] >= crowding[b] else b)


def run_nsga2(
    instance: Instance,
    params: TSMOParams | None = None,
    nsga_params: NSGA2Params | None = None,
    seed: int | None = None,
    *,
    registry: OperatorRegistry | None = None,
) -> TSMOResult:
    """Run NSGA-II to the same evaluation budget as a TSMO run.

    Returns a :class:`~repro.tabu.search.TSMOResult` whose archive is
    the final non-dominated front bounded by ``params.archive_capacity``
    (crowding-pruned), so coverage comparisons against TSMO variants
    compare like against like.
    """
    params = params or TSMOParams()
    nparams = nsga_params or NSGA2Params()
    registry = registry or default_registry()
    factory = RngFactory(seed)
    rng = factory.generator()
    evaluator = Evaluator(instance, params.max_evaluations)

    start = time.perf_counter()
    population: list[Solution] = []
    for _ in range(nparams.population_size):
        individual = i1_construct(instance, params=I1Params.random(rng), rng=rng)
        individual = _mutate(individual, registry, nparams.mutation_moves, rng)
        evaluator.evaluate(individual)
        population.append(individual)

    generations = 0
    while not evaluator.exhausted:
        objectives = np.vstack([s.objectives.as_array() for s in population])
        ranks, crowding = _rank_and_crowding(objectives)
        offspring: list[Solution] = []
        while len(offspring) < nparams.population_size and not evaluator.exhausted:
            pa = population[_tournament(ranks, crowding, rng)]
            pb = population[_tournament(ranks, crowding, rng)]
            if rng.random() < nparams.crossover_rate:
                child = _route_based_crossover(instance, pa, pb, rng)
            else:
                child = Solution(instance, pa.routes)
            if rng.random() < nparams.mutation_rate:
                child = _mutate(child, registry, nparams.mutation_moves, rng)
            evaluator.evaluate(child)
            offspring.append(child)
        # Elitist environmental selection over parents + offspring.
        combined = population + offspring
        combined_obj = np.vstack([s.objectives.as_array() for s in combined])
        selected: list[int] = []
        for front in non_dominated_sort(combined_obj):
            if len(selected) + front.size <= nparams.population_size:
                selected.extend(front.tolist())
            else:
                gap = nparams.population_size - len(selected)
                front_crowding = crowding_distances(combined_obj[front])
                order = np.argsort(-front_crowding, kind="stable")
                selected.extend(front[order[:gap]].tolist())
                break
        population = [combined[i] for i in selected]
        generations += 1
    wall = time.perf_counter() - start

    archive: ParetoArchive[Solution] = ParetoArchive(params.archive_capacity)
    for solution in population:
        archive.try_add(solution, solution.objectives)
    return TSMOResult(
        instance_name=instance.name,
        algorithm="nsga2",
        params=params,
        archive=list(archive.entries),
        iterations=generations,
        evaluations=evaluator.count,
        restarts=0,
        wall_time=wall,
        simulated_time=None,
        processors=1,
        extra={"population_size": nparams.population_size},
    )
