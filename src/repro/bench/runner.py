"""The run matrix behind each table: algorithm × processors × instance × seed.

:func:`run_table` executes the full protocol of one of Tables I–IV at
the configured scale: for every generated instance of the table's
class mix and every run seed, it runs the sequential baseline plus the
three parallel variants at every processor count, all on the same
simulated-cluster cost model, and collects everything into a
:class:`~repro.bench.tables.TableData`.

Seeding: run ``k`` of instance ``i`` uses a seed derived from
``(config.seed, table, i, k)``, shared across algorithm
configurations, so algorithms are compared on identical
instance/initialization draws wherever the protocol allows.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Callable

import numpy as np

from repro.bench.config import BenchConfig
from repro.bench.storage import _record_result, _result_record
from repro.bench.tables import TableData
from repro.errors import BenchmarkError, SearchInterrupted
from repro.obs import NULL_OBS, Obs
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.costmodel import CostModel
from repro.parallel.sync_ts import run_synchronous_tsmo
from repro.persistence import CheckpointPlan, CheckpointPolicy
from repro.tabu.search import TSMOResult
from repro.vrptw.catalog import instances_for_table
from repro.vrptw.instance import Instance

__all__ = ["run_table", "run_configuration", "ALGORITHMS"]

ALGORITHMS = ("sequential", "synchronous", "asynchronous", "collaborative")


def _run_seed(config: BenchConfig, table: str, instance_idx: int, run_idx: int) -> int:
    """Deterministic per-run seed shared by all algorithm configs."""
    table_no = int(table.removeprefix("table"))
    return (
        config.seed * 1_000_003 + table_no * 10_007 + instance_idx * 101 + run_idx
    ) % (2**31 - 1)


def run_configuration(
    algorithm: str,
    instance: Instance,
    config: BenchConfig,
    n_processors: int,
    seed: int,
    cost_model: CostModel | None = None,
    *,
    checkpoint: CheckpointPolicy | None = None,
    obs=NULL_OBS,
) -> TSMOResult:
    """Run one algorithm configuration on one instance.

    ``checkpoint`` (a per-cell :class:`~repro.persistence.
    CheckpointPolicy`) is threaded through to whichever driver runs,
    enabling periodic snapshots, crash injection and resume.  ``obs``
    (a :class:`~repro.obs.Obs` bundle) instruments the run — metrics,
    events and the per-phase profile land on the returned result.
    """
    params = config.tsmo_params()
    if algorithm == "sequential":
        return run_sequential_simulated(
            instance, params, seed, cost_model, checkpoint=checkpoint, obs=obs
        )
    if algorithm == "synchronous":
        return run_synchronous_tsmo(
            instance,
            params,
            n_processors,
            seed,
            cost_model,
            checkpoint=checkpoint,
            obs=obs,
        )
    if algorithm == "asynchronous":
        return run_asynchronous_tsmo(
            instance,
            params,
            n_processors,
            seed,
            cost_model,
            AsyncParams(),
            checkpoint=checkpoint,
            obs=obs,
        )
    if algorithm == "collaborative":
        return run_collaborative_tsmo(
            instance,
            params,
            n_processors,
            seed,
            cost_model,
            CollabParams(initial_phase_patience=config.collab_patience),
            checkpoint=checkpoint,
            obs=obs,
        )
    raise BenchmarkError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


@contextlib.contextmanager
def _deliver_interrupts(plan: CheckpointPlan | None):
    """Turn SIGINT/SIGTERM into a clean checkpoint-then-stop.

    While a checkpointed table run is in flight, both signals set the
    plan's shared interrupt flag; the running cell then snapshots at
    its next safe point and raises
    :class:`~repro.errors.SearchInterrupted`.  Handlers can only be
    installed from the main thread — elsewhere this is a no-op and the
    process keeps the default (or caller-installed) behavior.
    """
    if plan is None or threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):  # pragma: no cover - exercised via CLI test
        plan.request_interrupt()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def run_table(
    table: str,
    config: BenchConfig | None = None,
    cost_model: CostModel | None = None,
    *,
    progress: Callable[[str], None] | None = None,
    checkpoint: CheckpointPlan | None = None,
) -> TableData:
    """Execute the full run matrix of one of the paper's tables.

    With a :class:`~repro.persistence.CheckpointPlan`, every completed
    cell ``(instance, run, algorithm, processors)`` is journaled to the
    table's run manifest, in-flight cells snapshot periodically, and —
    when the plan has ``resume=True`` — completed cells are skipped
    (their stored records re-added verbatim) and the interrupted cell
    restarts from its latest snapshot, bit-identically.  SIGINT/SIGTERM
    checkpoint the running cell and raise
    :class:`~repro.errors.SearchInterrupted`.
    """
    config = config or BenchConfig.from_env()
    if cost_model is None:
        # Keep the simulation dimensionally self-similar at reduced
        # neighborhood sizes (see CostModel.for_neighborhood).
        cost_model = CostModel().for_neighborhood(config.neighborhood_size)
    specs = instances_for_table(
        table, scale=config.city_fraction, replicates=config.replicates
    )
    manifest = checkpoint.manifest(table) if checkpoint is not None else None
    completed = (
        manifest.load() if checkpoint is not None and checkpoint.resume else {}
    )
    data = TableData(table=table)
    with _deliver_interrupts(checkpoint):
        for instance_idx, spec in enumerate(specs):
            instance = spec.build()
            for run_idx in range(config.runs):
                seed = _run_seed(config, table, instance_idx, run_idx)
                for algorithm in ALGORITHMS:
                    proc_list = (
                        (1,) if algorithm == "sequential" else config.processors
                    )
                    for p in proc_list:
                        if (
                            checkpoint is not None
                            and checkpoint.interrupt.is_set()
                        ):
                            # A cell can outrun its last snapshot
                            # threshold and finish normally; stop the
                            # table between cells in that case.
                            raise SearchInterrupted(
                                "table run interrupted; completed cells "
                                f"are journaled in {manifest.path}"
                            )
                        done = completed.get((instance_idx, run_idx, algorithm, p))
                        if done is not None:
                            data.add(
                                _record_result(done["record"], run_index=run_idx)
                            )
                            continue
                        if progress is not None:
                            progress(
                                f"{table}: {instance.name} run {run_idx + 1}/"
                                f"{config.runs} {algorithm}@{p}"
                            )
                        policy = (
                            checkpoint.policy_for(
                                table, instance_idx, run_idx, algorithm, p
                            )
                            if checkpoint is not None
                            else None
                        )
                        # One bundle per cell (NULL_OBS unless enabled
                        # via REPRO_TRACE_DIR / REPRO_OBS): each cell
                        # gets its own run id — and trace file — so
                        # per-cell profiles and events never mix.
                        obs = Obs.from_env(
                            span=f"{algorithm}@{p}", unit="simulated"
                        )
                        try:
                            result = run_configuration(
                                algorithm,
                                instance,
                                config,
                                p,
                                seed,
                                cost_model,
                                checkpoint=policy,
                                obs=obs,
                            )
                        finally:
                            obs.close()
                        data.add(result)
                        if manifest is not None:
                            # Journal first, then drop the now-obsolete
                            # snapshot: a crash between the two leaves a
                            # stale .ckpt that resume ignores (the cell
                            # is in the manifest), never a lost cell.
                            manifest.append(
                                instance=instance.name,
                                instance_idx=instance_idx,
                                run_idx=run_idx,
                                algorithm=algorithm,
                                processors=p,
                                record=_result_record(result),
                            )
                            policy.discard()
    return data


def table_front_reference(data: TableData) -> np.ndarray:
    """The combined non-dominated reference front of every run in a
    table (useful for hypervolume reporting in EXPERIMENTS.md)."""
    from repro.mo.dominance import non_dominated_mask

    fronts = [
        r.feasible_front()
        for key in data.configs()
        for r in data.runs_of(key)
        if r.feasible_front().size
    ]
    if not fronts:
        return np.zeros((0, 3))
    merged = np.vstack(fronts)
    return merged[non_dominated_mask(merged)]
