"""Ablation: contribution of each neighborhood operator (DESIGN.md).

The paper fixes the operator mix at all five with equal probability
(§II.B/§III.B) without ablating it.  This bench quantifies what each
operator contributes: it reruns the sequential TSMO with one operator
removed at a time and reports best feasible distance/vehicles and the
coverage of the ablated front by the full-mix front.
"""

import numpy as np
from conftest import emit

from repro.core.operators import Exchange, OperatorRegistry, OrOpt, Relocate, TwoOpt, TwoOptStar
from repro.core.operators.segment_exchange import SegmentExchange
from repro.mo.coverage import set_coverage
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

OPERATORS = {
    "relocate": Relocate,
    "exchange": Exchange,
    "2opt": TwoOpt,
    "2opt*": TwoOptStar,
    "oropt": OrOpt,
    # extension beyond the paper's set; included as an *additive* row
    # rather than a removal (see below).
    "segx": SegmentExchange,
}
PAPER_MIX = ("relocate", "exchange", "2opt", "2opt*", "oropt")
SEEDS = (1, 2, 3)


def _run_mix(instance, params, names, seed):
    registry = OperatorRegistry([OPERATORS[n]() for n in names])
    return run_sequential_tsmo(instance, params, seed=seed, registry=registry)


def ablate(bench_config):
    n = max(20, round(60 * bench_config.city_fraction / 0.15))
    instance = generate_instance("R1", n, seed=17)
    params = TSMOParams(
        max_evaluations=bench_config.max_evaluations,
        neighborhood_size=bench_config.neighborhood_size,
        restart_after=bench_config.restart_after,
    )
    full_runs = [_run_mix(instance, params, list(PAPER_MIX), s) for s in SEEDS]
    rows = []
    variants = [(f"without {name}", [n_ for n_ in PAPER_MIX if n_ != name]) for name in PAPER_MIX]
    variants.append(("plus segx (2,1)", list(PAPER_MIX) + ["segx"]))
    for label, names in variants:
        runs = [_run_mix(instance, params, names, s) for s in SEEDS]
        dist = np.mean([r.best_feasible()[0] for r in runs if r.best_feasible()])
        veh = np.mean([r.best_feasible()[1] for r in runs if r.best_feasible()])
        cov = np.mean(
            [
                set_coverage(f.feasible_front(), a.feasible_front())
                for f in full_runs
                for a in runs
            ]
        )
        rows.append((label, dist, veh, cov))
    full_dist = np.mean([r.best_feasible()[0] for r in full_runs])
    full_veh = np.mean([r.best_feasible()[1] for r in full_runs])
    return instance.name, full_dist, full_veh, rows


def test_operator_ablation(benchmark, bench_config, output_dir):
    name, full_dist, full_veh, rows = benchmark.pedantic(
        ablate, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"Operator ablation on {name} (sequential TSMO, mean of {len(SEEDS)} runs)",
        f"{'mix':<16} {'distance':>10} {'vehicles':>9} {'covered by full mix':>21}",
        f"{'all five':<16} {full_dist:>10.1f} {full_veh:>9.2f} {'-':>21}",
    ]
    for label, dist, veh, cov in rows:
        lines.append(
            f"{label:<16} {dist:>10.1f} {veh:>9.2f} {cov * 100:>20.1f}%"
        )
    emit(output_dir, "ablation_operators", "\n".join(lines))
    assert len(rows) == 6  # five removals + the segx addition
