"""Span-tree reconstruction: one causally-ordered tree per trace.

``python -m repro.obs.spans TRACE...`` (files or directories of
``*.jsonl``) groups events by their optional ``trace`` envelope field
(the serve layer uses the job id), builds the span tree each trace's
``parent`` links describe, and renders it — the root span (the job's
``job-<id>`` lifecycle span) on top, worker spans that executed its
tasks beneath.  Two kinds of problems are flagged and fail the exit
code, which is what the CI serve-soak job keys off:

* **orphans** — a span whose declared parent has no events in the
  trace: the propagation chain broke somewhere between the scheduler
  and a worker;
* **gaps** — a root span whose ``job_state`` lifecycle never reached a
  terminal state (``done``/``cancelled``/``failed``/``rejected``): the
  trace is torn mid-job.

Events without a ``trace`` field (standalone driver runs) are counted
and ignored; a file of them is not an error for *this* tool — schema
validity is ``repro.obs.validate``'s job.
"""

from __future__ import annotations

import argparse
import json
import sys

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SpanInfo", "TraceReport", "analyze_traces", "load_events", "main"]

#: job_state values that end a job's lifecycle.
TERMINAL_STATES = frozenset({"done", "cancelled", "failed", "rejected"})


@dataclass(slots=True)
class SpanInfo:
    """Everything observed about one span within one trace."""

    name: str
    parent: str | None = None
    events: int = 0
    types: Counter = field(default_factory=Counter)
    states: list[str] = field(default_factory=list)
    children: list[str] = field(default_factory=list)


@dataclass(slots=True)
class TraceReport:
    """One trace's reconstructed tree plus its detected problems."""

    trace: str
    spans: dict[str, SpanInfo] = field(default_factory=dict)
    roots: list[str] = field(default_factory=list)
    orphans: list[str] = field(default_factory=list)
    gaps: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return bool(self.roots) and not self.orphans and not self.gaps


def load_events(targets: list[str]) -> list[dict]:
    """All parseable events from the target files/directories, in order.

    Unparseable lines (torn tails included) are skipped silently here —
    durability tolerance is the validator's contract, and this tool
    only needs the events that *did* land.
    """
    paths: list[Path] = []
    for target in targets:
        p = Path(target)
        if p.is_dir():
            paths.extend(sorted(p.glob("*.jsonl")))
        else:
            paths.append(p)
    events: list[dict] = []
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.split("\n"):
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def analyze_traces(events: list[dict]) -> dict[str, TraceReport]:
    """Group events by ``trace`` and reconstruct each trace's span tree."""
    reports: dict[str, TraceReport] = {}
    for event in events:
        trace = event.get("trace")
        if trace is None:
            continue
        trace = str(trace)
        report = reports.get(trace)
        if report is None:
            report = reports[trace] = TraceReport(trace)
        span_name = str(event.get("span", "?"))
        span = report.spans.get(span_name)
        if span is None:
            span = report.spans[span_name] = SpanInfo(span_name)
        span.events += 1
        span.types[str(event.get("type", "?"))] += 1
        parent = event.get("parent")
        if parent is not None and span.parent is None:
            span.parent = str(parent)
        if event.get("type") == "job_state":
            state = str(event.get("state", "?"))
            if not span.states or span.states[-1] != state:
                span.states.append(state)
    for report in reports.values():
        for span in report.spans.values():
            if span.parent is None:
                report.roots.append(span.name)
            elif span.parent in report.spans:
                report.spans[span.parent].children.append(span.name)
            else:
                report.orphans.append(span.name)
        for root in report.roots:
            states = report.spans[root].states
            if states and not (set(states) & TERMINAL_STATES):
                report.gaps.append(
                    f"root span {root!r} never reached a terminal state "
                    f"(saw {'→'.join(states)})"
                )
        if not report.roots:
            report.gaps.append("no root span (every span declares a parent)")
    return reports


def _render_span(report: TraceReport, name: str, depth: int, out: list[str]) -> None:
    span = report.spans[name]
    indent = "  " * depth
    parts = [f"{indent}{name}"]
    if span.states:
        parts.append(f"[{'→'.join(span.states)}]")
    summary = ", ".join(
        f"{type_}×{count}" for type_, count in sorted(span.types.items())
    )
    parts.append(f"({span.events} events: {summary})")
    out.append(" ".join(parts))
    for child in sorted(span.children):
        _render_span(report, child, depth + 1, out)


def render_tree(report: TraceReport) -> str:
    """The trace's span tree as indented text, orphans flagged last."""
    out: list[str] = [f"trace {report.trace}:"]
    for root in sorted(report.roots):
        _render_span(report, root, 1, out)
    for orphan in sorted(report.orphans):
        span = report.spans[orphan]
        out.append(
            f"  ORPHAN {orphan} (parent {span.parent!r} has no events; "
            f"{span.events} events)"
        )
    for gap in report.gaps:
        out.append(f"  GAP {gap}")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.spans",
        description="Reconstruct per-trace span trees from JSONL event traces.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="trace files, or directories containing *.jsonl traces",
    )
    args = parser.parse_args(argv)
    events = load_events(args.targets)
    reports = analyze_traces(events)
    untraced = sum(1 for e in events if e.get("trace") is None)
    if not reports:
        print(
            f"error: no traced events found ({len(events)} events, "
            f"{untraced} without a trace field)",
            file=sys.stderr,
        )
        return 2
    problems = 0
    for trace in sorted(reports):
        report = reports[trace]
        print(render_tree(report))
        problems += len(report.orphans) + len(report.gaps)
    print(
        f"reconstructed {len(reports)} trace(s) from {len(events)} event(s) "
        f"({untraced} untraced); "
        + ("all complete" if problems == 0 else f"{problems} problem(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
