"""Tests for the multi-tenant solve service (``repro.serve``).

The deterministic pieces — spec validation, admission control, the
deficit-round-robin arbiter — run process-free.  The integration tests
spawn a real worker pool with the same shrunk supervision intervals as
``test_pool.py``; the headline guarantees each proves:

* a lockstep job is bit-identical to the sequential driver;
* killing the scheduler mid-job and resuming in a brand-new one
  finishes bit-identically (checkpointed multi-tenant restarts work);
* 50+ concurrent jobs on one shared pool lose and duplicate nothing;
* overload is rejected loudly, never dropped silently.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CrashInjected,
    JobCancelled,
    JobDeadlineExceeded,
    LedgerError,
    ServeError,
    WrongInstanceError,
)
from repro.obs import Obs
from repro.parallel.pool import PoolParams
from repro.serve import (
    DeficitRoundRobin,
    JobLedger,
    JobSpec,
    JobState,
    ServeFaultPlan,
    ServeParams,
    SolveScheduler,
    TrafficConfig,
    run_traffic,
)
from repro.serve.ledger import LEDGER_FILENAME
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

#: supervision knobs shrunk for tests (same spirit as test_pool.py).
FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

#: a small budget: a few iterations, well under a second per job.
SMALL = TSMOParams(max_evaluations=48, neighborhood_size=8)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Process-free: spec validation and admission control
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_rejects_empty_id_bad_driver_and_lockstep_split(self):
        with pytest.raises(ServeError):
            JobSpec(job_id="")
        with pytest.raises(ServeError):
            JobSpec(job_id="a", driver="turbo")
        with pytest.raises(ServeError):
            JobSpec(job_id="a", driver="lockstep", n_tasks=2)

    def test_split_accepts_many_tasks(self):
        spec = JobSpec(job_id="a", driver="split", n_tasks=4)
        assert spec.n_tasks == 4


class TestAdmission:
    def test_queue_bound_rejects_not_drops(self, instance):
        # The scheduler is never started: jobs stay queued, so the
        # bounded queue fills deterministically.
        async def scenario():
            obs = Obs()
            scheduler = SolveScheduler(
                instance, params=ServeParams(max_queued=2), obs=obs
            )
            scheduler.submit(JobSpec(job_id="a", params=SMALL))
            scheduler.submit(JobSpec(job_id="b", params=SMALL))
            with pytest.raises(AdmissionError):
                scheduler.submit(JobSpec(job_id="c", params=SMALL))
            assert scheduler.rejected == 1
            counters = obs.metrics.snapshot()["counters"]
            assert counters["serve.admission_rejects"] == 1
            # The rejected job never entered any queue.
            with pytest.raises(ServeError):
                scheduler.get_job("c")
            await scheduler.close()
            # Abandoned jobs fail loudly with a resume hint.
            with pytest.raises(ServeError, match="resume"):
                await scheduler.get_job("a").wait()

        run(scenario())

    def test_duplicate_id_and_closed_scheduler_rejected(self, instance):
        async def scenario():
            scheduler = SolveScheduler(instance)
            scheduler.submit(JobSpec(job_id="a", params=SMALL))
            with pytest.raises(ServeError):
                scheduler.submit(JobSpec(job_id="a", params=SMALL))
            await scheduler.close()
            with pytest.raises(AdmissionError):
                scheduler.submit(JobSpec(job_id="b", params=SMALL))

        run(scenario())

    def test_resume_without_checkpoint_dir_rejected(self, instance):
        async def scenario():
            scheduler = SolveScheduler(instance)
            with pytest.raises(ServeError):
                scheduler.submit(JobSpec(job_id="a", params=SMALL, resume=True))
            await scheduler.close()

        run(scenario())


class TestDeficitRoundRobin:
    def test_weighted_shares_exact_pattern(self):
        # Weight 3 vs 1, equal unit costs of 30, quantum 10: tenant A
        # accrues 30 credit per round, B 10 — so the steady-state cycle
        # serves A three times per B.
        drr = DeficitRoundRobin(quantum=10.0)
        drr.set_weight("A", 3.0)
        drr.set_weight("B", 1.0)
        costs = {"A": 30.0, "B": 30.0}
        picks = [drr.pick(costs) for _ in range(12)]
        assert picks.count("A") == 9
        assert picks.count("B") == 3

    def test_single_tenant_always_wins(self):
        drr = DeficitRoundRobin(quantum=4.0)
        assert drr.pick({"only": 100.0}) == "only"
        assert drr.pick({}) is None

    def test_idle_tenant_forfeits_credit(self):
        drr = DeficitRoundRobin(quantum=10.0)
        drr.set_weight("A", 1.0)
        drr.set_weight("B", 1.0)
        # A runs alone for a while...
        for _ in range(10):
            assert drr.pick({"A": 10.0}) == "A"
        # ...B was idle, so on return it holds no stale credit and the
        # two alternate immediately instead of B bursting ahead.
        picks = [drr.pick({"A": 10.0, "B": 10.0}) for _ in range(6)]
        assert picks.count("A") == 3
        assert picks.count("B") == 3

    def test_determinism(self):
        def play():
            drr = DeficitRoundRobin(quantum=7.0)
            drr.set_weight("x", 2.0)
            drr.set_weight("y", 1.5)
            drr.set_weight("z", 1.0)
            costs = {"x": 11.0, "y": 5.0, "z": 17.0}
            return [drr.pick(costs) for _ in range(50)]

        assert play() == play()


# ----------------------------------------------------------------------
# Process-backed integration
# ----------------------------------------------------------------------
class TestLockstepBitIdentity:
    def test_job_matches_sequential_driver(self, instance):
        params = TSMOParams(max_evaluations=96, neighborhood_size=16)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST
            ) as scheduler:
                job = scheduler.submit(JobSpec(job_id="a", seed=7, params=params))
                return await job.wait()

        result = run(scenario())
        oracle = run_sequential_tsmo(instance, params, seed=7)
        assert result.evaluations == oracle.evaluations
        assert result.iterations == oracle.iterations
        assert result.restarts == oracle.restarts
        assert np.array_equal(result.front(), oracle.front())
        assert result.extra["job_id"] == "a"

    def test_split_driver_completes_budget(self, instance):
        async def scenario():
            async with SolveScheduler(
                instance, n_workers=2, pool_params=FAST
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(
                        job_id="s", seed=3, params=SMALL, driver="split", n_tasks=3
                    )
                )
                return await job.wait()

        result = run(scenario())
        assert result.evaluations >= SMALL.max_evaluations
        assert result.algorithm == "serve-split"


class TestCancellation:
    def test_cancel_mid_run_drains_gracefully(self, instance):
        long_params = TSMOParams(max_evaluations=4000, neighborhood_size=8)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST
            ) as scheduler:
                victim = scheduler.submit(
                    JobSpec(job_id="victim", seed=1, params=long_params)
                )
                survivor = scheduler.submit(
                    JobSpec(job_id="survivor", seed=2, params=SMALL)
                )
                while victim.evaluations < 16:
                    await asyncio.sleep(0.005)
                assert scheduler.cancel("victim") is True
                with pytest.raises(JobCancelled):
                    await victim.wait()
                result = await survivor.wait()
                report = scheduler.report()
                return victim, result, report

        victim, result, report = run(scenario())
        assert victim.state == JobState.CANCELLED
        assert 0 < victim.evaluations < long_params.max_evaluations
        assert result.evaluations >= SMALL.max_evaluations
        assert report["cancelled"] == 1 and report["completed"] == 1
        # Cancelling an already-terminal job is a no-op, unknown ids raise.
        assert report["pool"]["cancelled_tasks"] >= 1

    def test_cancel_queued_job_immediate(self, instance):
        async def scenario():
            scheduler = SolveScheduler(instance)  # never started
            job = scheduler.submit(JobSpec(job_id="q", params=SMALL))
            assert scheduler.cancel("q") is True
            with pytest.raises(JobCancelled):
                await job.wait()
            assert scheduler.cancel("q") is False
            with pytest.raises(ServeError):
                scheduler.cancel("nope")
            await scheduler.close()

        run(scenario())


class TestKillAndResume:
    def test_resumed_job_is_bit_identical(self, instance, tmp_path):
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)
        spec = dict(job_id="long", seed=11, params=params, checkpoint_every=48)

        async def phase_one():
            scheduler = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            async with scheduler:
                job = scheduler.submit(JobSpec(**spec))
                while job.evaluations < 100:
                    await asyncio.sleep(0.005)
                await scheduler.close()  # kill: no drain, job abandoned
            with pytest.raises(ServeError, match="resume=True"):
                await job.wait()
            return job.evaluations

        async def phase_two():
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            ) as scheduler:
                job = scheduler.submit(JobSpec(**spec, resume=True))
                return await job.wait()

        served_before_kill = run(phase_one())
        assert (tmp_path / "serve_long.ckpt").exists()
        result = run(phase_two())
        # The resume did real work: it did not replay from scratch ...
        assert served_before_kill >= 96
        # ... and the stitched run equals the uninterrupted sequential
        # oracle bit for bit.
        oracle = run_sequential_tsmo(instance, params, seed=11)
        assert result.evaluations == oracle.evaluations
        assert result.iterations == oracle.iterations
        assert result.restarts == oracle.restarts
        assert np.array_equal(result.front(), oracle.front())
        # Completion discards the snapshot.
        assert not (tmp_path / "serve_long.ckpt").exists()


class TestFairness:
    def test_weighted_tenants_skew_completion_order(self, instance):
        # One worker → pool work is strictly serialized in dispatch
        # order, so the DRR's grants are the only thing deciding which
        # tenant's jobs progress.  With weights 3:1 and equal jobs per
        # tenant, the heavy tenant's jobs must finish earlier on
        # average (sum of completion ranks strictly smaller).
        async def scenario():
            finished: list[str] = []

            async def watch(job):
                try:
                    await job.wait()
                finally:
                    finished.append(job.tenant)

            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                params=ServeParams(quantum=8.0),
                tenant_weights={"heavy": 3.0, "light": 1.0},
            ) as scheduler:
                jobs = []
                for i in range(4):
                    for tenant in ("heavy", "light"):
                        jobs.append(
                            scheduler.submit(
                                JobSpec(
                                    job_id=f"{tenant}-{i}",
                                    tenant=tenant,
                                    seed=i,
                                    params=SMALL,
                                )
                            )
                        )
                await asyncio.gather(*(watch(j) for j in jobs))
            return finished

        finished = run(scenario())
        assert len(finished) == 8
        heavy_ranks = [i for i, t in enumerate(finished) if t == "heavy"]
        light_ranks = [i for i, t in enumerate(finished) if t == "light"]
        assert sum(heavy_ranks) < sum(light_ranks)


class TestConcurrencyAtScale:
    def test_50_concurrent_jobs_zero_lost_zero_duplicated(self, instance):
        config = TrafficConfig(
            n_jobs=55,
            rate=2000.0,
            seed=1,
            budget=24,
            neighborhood=8,
            cancel_every=11,
        )

        async def scenario():
            async with SolveScheduler(
                instance,
                n_workers=2,
                pool_params=FAST,
                params=ServeParams(max_active=64, max_queued=256),
            ) as scheduler:
                return await run_traffic(scheduler, config)

        report = run(scenario())
        assert report.conserved(), report.to_dict()
        assert report.rejected == 0
        assert report.cancelled == 5
        assert report.completed == 50
        # The service genuinely multiplexed: ≥50 jobs were in flight on
        # the one shared pool at once.
        assert report.peak_active >= 50


class TestObservability:
    def test_job_scoped_events_and_metrics(self, instance):
        async def scenario():
            obs = Obs()
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST, obs=obs
            ) as scheduler:
                job = scheduler.submit(JobSpec(job_id="j1", seed=5, params=SMALL))
                await job.wait()
            return obs

        obs = run(scenario())
        states = [e for e in obs.tracer.events("job_state") if e["job"] == "j1"]
        assert [e["state"] for e in states] == ["queued", "running", "done"]
        assert all(e["span"] == "job-j1" for e in states)
        progress = obs.tracer.events("job_progress")
        assert progress and progress[-1]["evaluations"] >= SMALL.max_evaluations
        snap = obs.metrics.snapshot()
        assert snap["counters"]["serve.jobs_completed"] == 1
        assert "serve.job_latency_s" in snap["histograms"]


# ----------------------------------------------------------------------
# Fault tolerance: retry budgets, preemption, corruption, supervision
# ----------------------------------------------------------------------
class TestRetryBudget:
    def test_crash_retries_from_checkpoint_bit_identical(self, instance, tmp_path):
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)
        plan = ServeFaultPlan(crashes=(("c1", 100),))

        async def scenario():
            obs = Obs()
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                checkpoint_dir=tmp_path,
                chaos=plan,
                obs=obs,
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(
                        job_id="c1",
                        seed=13,
                        params=params,
                        checkpoint_every=48,
                        max_retries=2,
                        retry_backoff_s=0.01,
                    )
                )
                result = await job.wait()
                return result, scheduler.report(), obs, job

        result, report, obs, job = run(scenario())
        # The injected crash burned exactly one retry ...
        assert job.attempts == 1
        assert report["job_retries"] == 1
        assert report["completed"] == 1 and report["failed"] == 0
        retries = obs.tracer.events("job_retry")
        assert retries and retries[0]["job"] == "c1"
        assert retries[0]["cause"] == "CrashInjected"
        # ... resumed from the snapshot, and the stitched trajectory is
        # bit-identical to the uninterrupted sequential oracle.
        oracle = run_sequential_tsmo(instance, params, seed=13)
        assert result.evaluations == oracle.evaluations
        assert result.iterations == oracle.iterations
        assert np.array_equal(result.front(), oracle.front())
        # The ledger saw accept -> retry -> done, episode closed.
        audit = JobLedger(tmp_path / LEDGER_FILENAME).audit()
        assert audit["conserved"], audit
        assert audit["events"]["retry"] == 1

    def test_exhausted_budget_fails_naming_cause(self, instance, tmp_path):
        plan = ServeFaultPlan(crashes=(("c2", 1),))

        async def scenario():
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                checkpoint_dir=tmp_path,
                chaos=plan,
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(job_id="c2", seed=14, params=SMALL, max_retries=0)
                )
                with pytest.raises(CrashInjected):
                    await job.wait()
                return scheduler.report(), job

        report, job = run(scenario())
        assert job.state == JobState.FAILED
        assert report["failed"] == 1 and report["job_retries"] == 0
        entries = list(JobLedger(tmp_path / LEDGER_FILENAME).entries())
        terminal = [e for e in entries if e["event"] == "failed"]
        assert len(terminal) == 1
        assert "CrashInjected" in terminal[0]["cause"]

    def test_deadline_overrun_retries_then_fails(self, instance):
        # A budget no attempt can finish inside the deadline: the first
        # overrun burns the single retry, the second is terminal.
        long_params = TSMOParams(max_evaluations=100_000, neighborhood_size=8)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(
                        job_id="slow",
                        seed=15,
                        params=long_params,
                        max_retries=1,
                        retry_backoff_s=0.01,
                        deadline_s=0.2,
                    )
                )
                with pytest.raises(JobDeadlineExceeded, match="slow"):
                    await job.wait()
                return scheduler.report(), job

        report, job = run(scenario())
        assert job.state == JobState.FAILED
        assert job.attempts == 1  # retried once, then terminal
        assert report["job_retries"] == 1 and report["failed"] == 1


class TestPreemption:
    def test_high_priority_preempts_then_victim_resumes(self, instance, tmp_path):
        params = TSMOParams(max_evaluations=320, neighborhood_size=16)

        async def scenario():
            obs = Obs()
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                params=ServeParams(max_active=1, pump_interval=0.01),
                checkpoint_dir=tmp_path,
                obs=obs,
            ) as scheduler:
                low = scheduler.submit(
                    JobSpec(
                        job_id="low",
                        seed=21,
                        params=params,
                        checkpoint_every=32,
                        priority=0,
                    )
                )
                while low.evaluations < 32:
                    await asyncio.sleep(0.005)
                high = scheduler.submit(
                    JobSpec(job_id="high", seed=22, params=SMALL, priority=5)
                )
                high_result = await high.wait()
                low_result = await low.wait()
                return low, high, low_result, high_result, scheduler.report(), obs

        low, high, low_result, high_result, report, obs = run(scenario())
        assert report["preemptions"] >= 1
        assert report["completed"] == 2 and report["failed"] == 0
        # The arrival displaced the running job and finished first.
        assert high.finished_at <= low.finished_at
        preempted = obs.tracer.events("job_preempted")
        assert preempted and preempted[0]["job"] == "low"
        states = [e["state"] for e in obs.tracer.events("job_state") if e["job"] == "low"]
        assert "preempted" in states and states[-1] == "done"
        # Suspension/resume did not perturb either trajectory.
        for result, seed, p in (
            (low_result, 21, params),
            (high_result, 22, SMALL),
        ):
            oracle = run_sequential_tsmo(instance, p, seed=seed)
            assert result.evaluations == oracle.evaluations
            assert np.array_equal(result.front(), oracle.front())

    def test_preempted_job_can_be_cancelled(self, instance):
        params = TSMOParams(max_evaluations=4000, neighborhood_size=8)

        async def scenario():
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                params=ServeParams(max_active=1, pump_interval=0.01),
            ) as scheduler:
                low = scheduler.submit(
                    JobSpec(job_id="low", seed=23, params=params, priority=0)
                )
                while low.evaluations < 16:
                    await asyncio.sleep(0.005)
                high = scheduler.submit(
                    JobSpec(job_id="high", seed=24, params=SMALL, priority=9)
                )
                while low.state != JobState.PREEMPTED:
                    await asyncio.sleep(0.005)
                assert scheduler.cancel("low") is True
                with pytest.raises(JobCancelled):
                    await low.wait()
                await high.wait()
                return scheduler.report()

        report = run(scenario())
        assert report["preemptions"] >= 1
        assert report["cancelled"] == 1 and report["completed"] == 1

    def test_equal_priority_never_preempts(self, instance):
        async def scenario():
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                params=ServeParams(max_active=1, pump_interval=0.01),
            ) as scheduler:
                first = scheduler.submit(
                    JobSpec(job_id="first", seed=25, params=SMALL, priority=3)
                )
                second = scheduler.submit(
                    JobSpec(job_id="second", seed=26, params=SMALL, priority=3)
                )
                await asyncio.gather(first.wait(), second.wait())
                return scheduler.report()

        report = run(scenario())
        assert report["preemptions"] == 0
        assert report["completed"] == 2


class TestCorruptCheckpoint:
    def test_corrupt_snapshot_restarts_fresh_and_loud(self, instance, tmp_path):
        (tmp_path / "serve_cc.ckpt").write_bytes(b"REPROCKPT garbage\x00\xff")

        async def scenario():
            obs = Obs()
            async with SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                checkpoint_dir=tmp_path,
                obs=obs,
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(
                        job_id="cc",
                        seed=31,
                        params=SMALL,
                        checkpoint_every=16,
                        resume=True,
                    )
                )
                result = await job.wait()
                return result, job, scheduler.report(), obs

        result, job, report, obs = run(scenario())
        # The job completed from scratch instead of raising out of the pump.
        assert report["completed"] == 1 and report["failed"] == 0
        assert job.checkpoint_corrupt is not None
        events = obs.tracer.events("job_checkpoint_corrupt")
        assert events and events[0]["job"] == "cc" and events[0]["error"]
        audit = JobLedger(tmp_path / LEDGER_FILENAME).audit()
        assert audit["conserved"] and audit["events"]["checkpoint_corrupt"] == 1
        # Fresh restart == plain sequential run.
        oracle = run_sequential_tsmo(instance, SMALL, seed=31)
        assert result.evaluations == oracle.evaluations
        assert np.array_equal(result.front(), oracle.front())


class TestLedgerRecovery:
    def test_abort_then_new_scheduler_recovers_everything(self, instance, tmp_path):
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)
        n_jobs = 5
        specs = [
            JobSpec(
                job_id=f"r{i}", seed=40 + i, params=params, checkpoint_every=32
            )
            for i in range(n_jobs)
        ]

        async def scenario():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            jobs = [first.submit(spec) for spec in specs]
            while not any(job.evaluations >= 32 for job in jobs):
                await asyncio.sleep(0.005)
            await first.abort()  # SIGKILL stand-in: no terminal bookkeeping
            aborted = sum(1 for job in jobs if job.state != JobState.DONE)
            assert aborted >= 1

            second = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            async with second:
                recovered = list(second._jobs.values())
                results = await asyncio.gather(*(j.wait() for j in recovered))
                report = second.report()
            return jobs, recovered, results, report

        jobs, recovered, results, report = run(scenario())
        assert report["recovered_jobs"] == len(recovered) >= 1
        assert report["completed"] == len(recovered)
        audit = JobLedger(tmp_path / LEDGER_FILENAME).audit()
        assert audit["conserved"], audit
        assert audit["accepted"] == n_jobs
        assert audit["events"]["recovered"] == len(recovered)
        # Recovered jobs finish bit-identically to uninterrupted runs.
        for job, result in zip(recovered, results):
            seed = 40 + int(job.job_id[1:])
            oracle = run_sequential_tsmo(instance, params, seed=seed)
            assert result.evaluations == oracle.evaluations
            assert np.array_equal(result.front(), oracle.front()), job.job_id

    def test_recovery_skips_resubmitted_ids(self, instance, tmp_path):
        async def scenario():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            first.submit(JobSpec(job_id="dup", seed=50, params=SMALL))
            await first.abort()

            second = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            async with second:
                # Recovery already re-admitted the id; a client that
                # re-submits adopts the recovered handle instead.
                with pytest.raises(ServeError, match="duplicate"):
                    second.submit(
                        JobSpec(job_id="dup", seed=50, params=SMALL, resume=True)
                    )
                job = second.get_job("dup")
                result = await job.wait()
                report = second.report()
            return result, report

        result, report = run(scenario())
        assert report["completed"] == 1 and report["recovered_jobs"] == 1
        assert result.evaluations >= SMALL.max_evaluations

    def test_recover_false_opts_out(self, instance, tmp_path):
        async def scenario():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            first.submit(JobSpec(job_id="o1", seed=51, params=SMALL))
            await first.abort()

            second = SolveScheduler(
                instance,
                n_workers=1,
                pool_params=FAST,
                checkpoint_dir=tmp_path,
                recover=False,
            )
            async with second:
                return dict(second._jobs), second.report()

        jobs, report = run(scenario())
        assert jobs == {} and report["recovered_jobs"] == 0


class TestJobLedger:
    def test_episode_replay_and_audit(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        ledger.record("accepted", "a", spec={"job_id": "a"})
        ledger.record("accepted", "b", spec={"job_id": "b"})
        ledger.record("retry", "a", attempt=1, cause="x")
        ledger.record("done", "a")
        open_episodes = ledger.replay()
        assert list(open_episodes) == ["b"]
        assert open_episodes["b"]["spec"] == {"job_id": "b"}
        audit = ledger.audit()
        assert audit["open"] == 1 and not audit["conserved"]
        ledger.record("failed", "b", cause="y")
        assert ledger.audit()["conserved"]

    def test_torn_tail_dropped_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path)
        ledger.record("accepted", "a", spec={})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "event": "do')  # torn mid-append
        assert [e["event"] for e in ledger.entries()] == ["accepted"]
        # Complete the torn line into valid JSON of the wrong shape and
        # append after it: now it is mid-file corruption, not a tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('ne"}\n')
        ledger.record("done", "a")
        with pytest.raises(LedgerError, match="line 2"):
            list(ledger.entries())

    def test_rejects_unknown_event_kind(self, tmp_path):
        with pytest.raises(LedgerError, match="unknown ledger event"):
            JobLedger(tmp_path / "l.jsonl").record("exploded", "a")

    def test_audit_flags_orphans_and_duplicates(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        ledger.record("done", "ghost")  # terminal without accept
        ledger.record("accepted", "a", spec={})
        ledger.record("accepted", "a", spec={})  # re-accept while open
        audit = ledger.audit()
        assert audit["orphan_terminals"] == 1
        assert audit["duplicate_accepts"] == 1
        assert not audit["conserved"]


class TestSpecWire:
    def test_round_trip_with_overrides(self):
        spec = JobSpec(
            job_id="w",
            tenant="acme",
            seed=9,
            params=TSMOParams(max_evaluations=64, neighborhood_size=8),
            priority=2,
            max_retries=3,
            deadline_s=5.0,
        )
        wire = spec.to_wire()
        back = JobSpec.from_wire(wire, resume=True)
        assert back.resume is True
        assert back.params == spec.params
        assert back.job_id == spec.job_id and back.priority == 2
        assert back.max_retries == 3 and back.deadline_s == 5.0
        # Wire form survives JSON (what the ledger actually stores).
        import json as _json

        assert JobSpec.from_wire(_json.loads(_json.dumps(wire))).params == spec.params

    def test_validates_budget_fields(self):
        with pytest.raises(ServeError):
            JobSpec(job_id="x", max_retries=-1)
        with pytest.raises(ServeError):
            JobSpec(job_id="x", retry_backoff_s=-0.1)
        with pytest.raises(ServeError):
            JobSpec(job_id="x", deadline_s=0.0)


# ----------------------------------------------------------------------
# Per-job instances: multi-tenant in data, not just scheduling
# ----------------------------------------------------------------------
class TestPerJobInstances:
    def test_concurrent_jobs_match_their_own_oracles(self, instance):
        """Two lockstep jobs on *different* instances, one shared pool:
        each must be bit-identical to the sequential driver on its own
        instance, and the payload segment must die with its job."""
        other = generate_instance("C1", 16, seed=7)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=2, pool_params=FAST
            ) as scheduler:
                own = scheduler.submit(
                    JobSpec(job_id="own", seed=21, params=SMALL, instance=other)
                )
                dft = scheduler.submit(JobSpec(job_id="dft", seed=22, params=SMALL))
                r_own, r_dft = await asyncio.gather(own.wait(), dft.wait())
                # The payload job is terminal: its segment is already gone.
                segments_at_terminal = scheduler._store.segment_count()
                report = scheduler.report()
            return r_own, r_dft, segments_at_terminal, report, scheduler

        r_own, r_dft, seg_term, report, scheduler = run(scenario())
        o_own = run_sequential_tsmo(other, SMALL, seed=21)
        o_dft = run_sequential_tsmo(instance, SMALL, seed=22)
        assert r_own.evaluations == o_own.evaluations
        assert r_own.iterations == o_own.iterations
        assert np.array_equal(r_own.front(), o_own.front())
        assert r_dft.evaluations == o_dft.evaluations
        assert r_dft.iterations == o_dft.iterations
        assert np.array_equal(r_dft.front(), o_dft.front())
        assert seg_term == 0
        assert report["instance_segments"] == 0
        # ... and close() left nothing mapped either.
        assert scheduler._store.segment_count() == 0

    def test_split_driver_solves_its_own_instance(self, instance):
        other = generate_instance("C1", 16, seed=7)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=2, pool_params=FAST
            ) as scheduler:
                job = scheduler.submit(
                    JobSpec(
                        job_id="s",
                        seed=3,
                        params=SMALL,
                        driver="split",
                        n_tasks=3,
                        instance=other,
                    )
                )
                result = await job.wait()
                return result, scheduler.report()

        result, report = run(scenario())
        assert result.evaluations >= SMALL.max_evaluations
        assert result.algorithm == "serve-split"
        assert report["instance_segments"] == 0

    def test_same_instance_shares_one_segment(self, instance):
        """Two jobs carrying equal-content payloads dedupe to a single
        segment (the store keys by content fingerprint, not job id)."""
        payload = generate_instance("C1", 16, seed=7)
        twin = generate_instance("C1", 16, seed=7)

        async def scenario():
            async with SolveScheduler(
                instance, n_workers=1, pool_params=FAST
            ) as scheduler:
                a = scheduler.submit(
                    JobSpec(job_id="a", seed=1, params=SMALL, instance=payload)
                )
                b = scheduler.submit(
                    JobSpec(job_id="b", seed=2, params=SMALL, instance=twin)
                )
                peak = scheduler._store.segment_count()
                await asyncio.gather(a.wait(), b.wait())
                return peak, scheduler._store.segment_count()

        peak, final = run(scenario())
        assert peak == 1
        assert final == 0


# ----------------------------------------------------------------------
# The wrong-instance bugfix: identity is checked, never assumed
# ----------------------------------------------------------------------
class TestWrongInstanceRecovery:
    def test_recovery_against_different_instance_fails_loudly(
        self, instance, tmp_path
    ):
        """The regression this PR fixes: before the fingerprint rode the
        ledger, a scheduler restarted over a *different* instance would
        silently resume a default-instance job against the wrong
        problem and produce fronts for it.  Now the `accepted` entry
        pins the job to its instance's content hash and recovery fails
        the job loudly on mismatch."""
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)
        spec = dict(job_id="pinned", seed=31, params=params, checkpoint_every=32)

        async def phase_one():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            job = first.submit(JobSpec(**spec))
            while job.evaluations < 32:
                await asyncio.sleep(0.005)
            await first.abort()  # SIGKILL stand-in

        async def phase_two():
            wrong = generate_instance("C1", 20, seed=99)  # not the instance
            async with SolveScheduler(
                wrong, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            ) as second:
                job = second.get_job("pinned")
                assert job.state == JobState.FAILED
                with pytest.raises(WrongInstanceError, match="fingerprint"):
                    await job.wait()
                return second.report()

        run(phase_one())
        report = run(phase_two())
        assert report["failed"] == 1 and report["completed"] == 0
        audit = JobLedger(tmp_path / LEDGER_FILENAME).audit()
        assert audit["conserved"], audit
        assert audit["events"]["wrong_instance"] == 1
        assert audit["events"]["recovered"] == 0

    def test_recovery_with_same_instance_still_resumes(self, instance, tmp_path):
        """Control for the test above: identical content (a fresh object
        with the same arrays) recovers and finishes bit-identically."""
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)
        spec = dict(job_id="pinned", seed=31, params=params, checkpoint_every=32)

        async def phase_one():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            job = first.submit(JobSpec(**spec))
            while job.evaluations < 32:
                await asyncio.sleep(0.005)
            await first.abort()

        async def phase_two():
            same = generate_instance("R1", 20, seed=55)  # equal content
            async with SolveScheduler(
                same, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            ) as second:
                return await second.get_job("pinned").wait()

        run(phase_one())
        result = run(phase_two())
        oracle = run_sequential_tsmo(instance, params, seed=31)
        assert result.evaluations == oracle.evaluations
        assert np.array_equal(result.front(), oracle.front())

    def test_recovered_payload_jobs_resume_from_ledger_instances(
        self, instance, tmp_path
    ):
        """Kill-and-recover where the restarted scheduler's constructor
        instance is *different*: jobs that carried their own instance
        payloads are rebuilt from the ledger's wire form and still
        finish bit-identically to their own oracles."""
        payload = generate_instance("C1", 16, seed=7)
        params = TSMOParams(max_evaluations=240, neighborhood_size=16)

        async def scenario():
            first = SolveScheduler(
                instance, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            )
            first.start()
            job = first.submit(
                JobSpec(
                    job_id="carry",
                    seed=41,
                    params=params,
                    checkpoint_every=32,
                    instance=payload,
                )
            )
            while job.evaluations < 32:
                await asyncio.sleep(0.005)
            await first.abort()

            # The restart is constructed over an unrelated default
            # instance; the recovered job must NOT see it.
            unrelated = generate_instance("RC1", 24, seed=3)
            async with SolveScheduler(
                unrelated, n_workers=1, pool_params=FAST, checkpoint_dir=tmp_path
            ) as second:
                result = await second.get_job("carry").wait()
                segments = second._store.segment_count()
                report = second.report()
            return result, segments, report

        result, segments, report = run(scenario())
        assert report["recovered_jobs"] == 1 and report["completed"] == 1
        oracle = run_sequential_tsmo(payload, params, seed=41)
        assert result.evaluations == oracle.evaluations
        assert np.array_equal(result.front(), oracle.front())
        assert segments == 0
