"""Neighborhood sampling (paper §III.B, "Neighborhood Generation").

"The Neighborhood Generation draws a number of moves, specified in the
neighborhood size parameter, from the five operators described in
II.B.  For each move to create one of the operators is chosen at
random, with equal probabilities for each."

The same function runs on the sequential searcher, on the simulated
master, and on simulated workers — it is the unit of work the paper
parallelizes.  Each produced :class:`Neighbor` carries the move (for
the tabu attribute) and its objectives; every neighbor costs one unit
of the evaluation budget.

For registries whose operators all provide descriptor emitters (the
paper's standard five do), sampling and evaluation run through the
batched kernel in :mod:`repro.core.batch_eval`: one uniform block
drives all operator wheels at once, candidate feasibility is screened
with array gathers, and the surviving moves' objectives are assembled
in a handful of vectorized operations.  The ``REPRO_VECTOR_EVAL`` knob
(on by default) switches only the *evaluation* side between the kernel
and the scalar bit-identity oracle
(:meth:`~repro.core.evaluation.Evaluator.evaluate_move`); the sampled
moves are the same stream either way, and the two settings must
produce bit-identical search trajectories.

Registries containing operators without emitters (e.g. the non-paper
``SegmentExchange``) keep the legacy scalar loop: per-move
``draw_move`` through :class:`repro.rng.FastRng` (a buffered
bit-identical facade over the sampler's PCG64 stream) plus per-move
delta evaluation.  The child :class:`Solution` — and on the kernel
path even the move object — materializes lazily, only if the neighbor
is actually selected or archived (roughly 1 of S per iteration).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.batch_eval import batch_supported, sample_batch, vector_eval_enabled
from repro.core.evaluation import Evaluator
from repro.core.objectives import ObjectiveVector
from repro.core.operators.base import Move
from repro.core.operators.registry import OperatorRegistry
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.rng import FastRng

__all__ = ["LazyNeighbor", "Neighbor", "sample_neighborhood"]


class Neighbor:
    """One evaluated neighbor of a current solution.

    Holds the move and the (pre-computed) objectives; the neighbor
    *solution* is materialized on first access by applying the move to
    the parent, so the ~S-1 unselected neighbors of an iteration never
    pay for route-tuple construction.  Constructed either lazily
    (``parent=...``) or eagerly (``solution=...``, e.g. when a worker
    process shipped the routes back).
    """

    __slots__ = ("_move", "objectives", "iteration", "_parent", "_solution")

    def __init__(
        self,
        move: Move,
        objectives: ObjectiveVector,
        iteration: int = 0,
        *,
        parent: Solution | None = None,
        solution: Solution | None = None,
    ) -> None:
        if (parent is None) == (solution is None):
            raise SearchError("Neighbor needs exactly one of parent= or solution=")
        self._move = move
        self.objectives = objectives
        #: iteration at which the neighbor was generated (used by the
        #: asynchronous variant, where stragglers' neighbors join later
        #: selections, and by the Figure-1 trajectory trace).
        self.iteration = iteration
        self._parent = parent
        self._solution = solution

    @property
    def move(self) -> Move:
        """The move that produced this neighbor."""
        return self._move

    @property
    def solution(self) -> Solution:
        """The neighbor solution (applied to the parent on first access)."""
        child = self._solution
        if child is None:
            child = self.move.apply(self._parent)
            self._solution = child
        return child

    @property
    def materialized(self) -> bool:
        """Whether :attr:`solution` has been built yet."""
        return self._solution is not None

    def __repr__(self) -> str:
        state = "materialized" if self._solution is not None else "lazy"
        name = self._move.name if self._move is not None else "<deferred>"
        return (
            f"{type(self).__name__}({name!r}, objectives={self.objectives!r}, "
            f"iteration={self.iteration}, {state})"
        )


class LazyNeighbor(Neighbor):
    """A neighbor whose move is rebuilt from its descriptor on demand.

    The batch kernel scores a whole neighborhood without constructing
    move objects; only the (typically single) neighbor that wins
    selection or enters the archive ever touches :attr:`move`.  The
    maker is a zero-argument callable capturing the descriptor row and
    the parent summary; the built move is cached on first access.
    """

    __slots__ = ("_maker",)

    def __init__(
        self,
        maker,
        objectives: ObjectiveVector,
        iteration: int = 0,
        *,
        parent: Solution,
    ) -> None:
        super().__init__(None, objectives, iteration, parent=parent)
        self._maker = maker

    @property
    def move(self) -> Move:
        mv = self._move
        if mv is None:
            mv = self._maker()
            self._move = mv
        return mv


def sample_neighborhood(
    solution: Solution,
    size: int,
    registry: OperatorRegistry,
    rng: np.random.Generator,
    evaluator: Evaluator,
    *,
    iteration: int = 0,
    profiler=None,
) -> list[Neighbor]:
    """Generate and evaluate up to ``size`` neighbors of ``solution``.

    The list can be shorter than ``size`` only when the registry's
    retry cap is exhausted (a pathologically locked solution); callers
    treat a short list exactly like a full one.

    ``profiler`` (a :class:`~repro.obs.profiler.PhaseProfiler` in
    wall-clock units) splits the loop into *generate* (move proposal)
    and *evaluate* (delta evaluation) phases.  The instrumented loop is
    a separate body so the default path stays exactly as fast as
    before; the draws and evaluations themselves are identical, so the
    produced neighborhood is bit-for-bit the same.
    """
    neighbors: list[Neighbor] = []
    if size <= 0:
        return neighbors
    if batch_supported(registry):
        result = sample_batch(
            solution,
            size,
            registry,
            rng,
            evaluator,
            vector=vector_eval_enabled(),
            timed=profiler is not None,
        )
        for objectives, move, maker in result.entries:
            if maker is not None:
                append_neighbor = LazyNeighbor(maker, objectives, iteration, parent=solution)
            else:
                append_neighbor = Neighbor(move, objectives, iteration, parent=solution)
            neighbors.append(append_neighbor)
        if profiler is not None:
            profiler.add("generate", result.gen_seconds)
            profiler.add("evaluate", result.eval_seconds)
        return neighbors
    # Legacy scalar loop — the registry holds operators without
    # descriptor emitters, so both knob settings sample and evaluate
    # per move (and the kernel's fallback counter records the misses).
    metrics = evaluator.metrics
    draw_move = registry.draw_move
    evaluate_move = evaluator.evaluate_move
    append = neighbors.append
    fast = FastRng(rng)
    try:
        if profiler is None:
            for _ in range(size):
                move = draw_move(solution, fast)
                if move is None:
                    break
                objectives = evaluate_move(solution, move)
                append(Neighbor(move, objectives, iteration, parent=solution))
        else:
            perf_counter = time.perf_counter
            generated = evaluated = 0.0
            for _ in range(size):
                t0 = perf_counter()
                move = draw_move(solution, fast)
                t1 = perf_counter()
                generated += t1 - t0
                if move is None:
                    break
                objectives = evaluate_move(solution, move)
                evaluated += perf_counter() - t1
                append(Neighbor(move, objectives, iteration, parent=solution))
            profiler.add("generate", generated)
            profiler.add("evaluate", evaluated)
    finally:
        fast.detach()
    if metrics.enabled and neighbors:
        metrics.inc("eval.scalar_fallbacks", len(neighbors))
    return neighbors
