"""Relocate — the (1,0) λ-interchange of Osman (paper §II.B).

Moves one customer from its route to a position in *another* route (or
into a previously unused vehicle, which is how the search can re-open a
route while repairing heavy tardiness).  Emptying a source route is how
the vehicle count ``f2`` goes down, so this operator carries most of
the fleet-minimization pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator, RouteEdits
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["Relocate", "RelocateMove"]

#: Destination index meaning "open a new route with an unused vehicle".
NEW_ROUTE = -1


@dataclass(frozen=True, slots=True)
class RelocateMove(Move):
    """Move ``customer`` from ``src_route`` to ``dst_route`` at ``dst_pos``.

    ``dst_route == NEW_ROUTE`` opens a fresh single-customer route.
    """

    customer: int
    src_route: int
    src_pos: int
    dst_route: int
    dst_pos: int

    name = "relocate"

    def route_edits(self, solution: Solution) -> RouteEdits:
        src = solution.routes[self.src_route]
        if self.src_pos >= len(src) or src[self.src_pos] != self.customer:
            raise OperatorError(
                f"stale move: customer {self.customer} not at "
                f"route {self.src_route} position {self.src_pos}"
            )
        new_src = src[: self.src_pos] + src[self.src_pos + 1 :]
        if self.dst_route == NEW_ROUTE:
            return {self.src_route: new_src}, ((self.customer,),)
        dst = solution.routes[self.dst_route]
        new_dst = dst[: self.dst_pos] + (self.customer,) + dst[self.dst_pos :]
        return {self.src_route: new_src, self.dst_route: new_dst}, ()

    @property
    def attribute(self) -> Hashable:
        return ("relocate", self.customer)


class Relocate(Operator):
    """Random relocate proposals under the local feasibility criterion."""

    name = "relocate"

    #: uniforms consumed per batched candidate (customer, destination
    #: wheel, insertion position).
    batch_words = 3

    def __init__(self, *, allow_new_route: bool = True) -> None:
        #: when True (default) the destination wheel includes opening a
        #: new route, provided unused vehicles remain.
        self.allow_new_route = allow_new_route

    def propose(
        self, solution: Solution, rng: np.random.Generator
    ) -> RelocateMove | None:
        instance = solution.instance
        n_routes = solution.n_routes
        if n_routes == 0:
            return None
        new_route_ok = self.allow_new_route and solution.vehicle_slack > 0
        if n_routes == 1 and not new_route_ok:
            return None
        capacity = instance.capacity
        demand = instance._demand_l
        depart = instance._depart_l
        due = instance._due_l
        travel = instance._travel_rows
        routes = solution.routes
        locate = solution.location_table().__getitem__
        loads = solution.route_loads()
        n_customers = instance.n_customers
        # Destination wheel: every other route, plus possibly "new".
        # (Never zero here: n_routes >= 2, or == 1 with new_route_ok.)
        n_options = n_routes - 1 + (1 if new_route_ok else 0)
        # One uniform block for all attempts: a single RNG dispatch per
        # call instead of 2-3 scalar draws per attempt, so the call cost
        # is flat whether the first or the last attempt succeeds.
        u = rng.random(self.batch_words * self.max_attempts).tolist()
        for k in range(0, len(u), 3):
            customer = 1 + int(u[k] * n_customers)
            src_route, src_pos = locate(customer)
            pick = int(u[k + 1] * n_options)
            if pick >= n_routes - 1:
                # A single-customer source route relocated into a new
                # route is a no-op (same structure, different vehicle).
                if len(routes[src_route]) == 1:
                    continue
                # insertion_admissible(instance, 0, customer, 0) inlined.
                if (
                    depart[0] + travel[0][customer] <= due[customer]
                    and depart[customer] + travel[customer][0] <= due[0]
                ):
                    return RelocateMove(
                        customer=customer,
                        src_route=src_route,
                        src_pos=src_pos,
                        dst_route=NEW_ROUTE,
                        dst_pos=0,
                    )
                continue
            dst_route = pick if pick < src_route else pick + 1
            dst = routes[dst_route]
            if loads[dst_route] + demand[customer] > capacity:
                continue
            dst_pos = int(u[k + 2] * (len(dst) + 1))
            i = dst[dst_pos - 1] if dst_pos > 0 else 0
            j = dst[dst_pos] if dst_pos < len(dst) else 0
            # insertion_admissible(instance, i, customer, j) inlined
            # (see feasibility.py for the formula).
            if (
                depart[i] + travel[i][customer] <= due[customer]
                and depart[customer] + travel[customer][j] <= due[j]
            ):
                return RelocateMove(
                    customer=customer,
                    src_route=src_route,
                    src_pos=src_pos,
                    dst_route=dst_route,
                    dst_pos=dst_pos,
                )
        return None

    def batch_ready(self, pre) -> bool:
        """Whether the destination wheel is non-empty on this parent."""
        new_ok = self.allow_new_route and pre.new_route_ok
        return pre.n_routes >= 2 or (pre.n_routes == 1 and new_ok)

    def propose_batch(self, pre, U: np.ndarray):
        """Vectorized :meth:`propose` over uniform rows (see batch_eval).

        ``U`` has :attr:`batch_words` columns per candidate; returns the
        ``(fields, valid)`` descriptor pair.  Field layout: ``f0`` the
        customer, ``f1`` the destination route (:data:`NEW_ROUTE` for a
        fresh vehicle), ``f2`` the insertion position, ``f3`` the source
        route.
        """
        n_routes = pre.n_routes
        new_ok = self.allow_new_route and pre.new_route_ok
        n_options = n_routes - 1 + (1 if new_ok else 0)
        customer = 1 + (U[:, 0] * pre.n_customers).astype(np.int64)
        np.minimum(customer, pre.n_customers, out=customer)
        pick = (U[:, 1] * n_options).astype(np.int64)
        np.minimum(pick, n_options - 1, out=pick)
        new_mask = pick >= n_routes - 1
        src = pre.route_of[customer]
        dst = np.where(pick < src, pick, pick + 1)
        dst[new_mask] = 0  # clamp for the gathers below; unused when new
        dst_len = pre.L[dst]
        dst_pos = (U[:, 2] * (dst_len + 1)).astype(np.int64)
        np.minimum(dst_pos, dst_len, out=dst_pos)
        i = pre.Rz[dst, dst_pos]
        j = pre.Rz[dst, dst_pos + 1]
        depart = pre.depart
        due = pre.due
        travel = pre.travel_flat
        ns = pre.n_sites
        edges_ok = (depart[i] + travel[i * ns + customer] <= due[customer]) & (
            depart[customer] + travel[customer * ns + j] <= due[j]
        )
        load_ok = pre.loads[dst] + pre.demand[customer] <= pre.capacity
        valid = ~new_mask & load_ok & edges_ok
        if new_ok:
            # Same screens as the scalar branch: no single-customer
            # sources (a pure vehicle relabel) and a depot-feasible
            # round trip for the relocated customer.
            valid |= new_mask & (pre.L[src] > 1) & pre.depot_ok[customer]
        fields = np.empty((len(customer), 4), dtype=np.int64)
        fields[:, 0] = customer
        fields[:, 1] = np.where(new_mask, NEW_ROUTE, dst)
        fields[:, 2] = np.where(new_mask, 0, dst_pos)
        fields[:, 3] = src
        return fields, valid
