"""Structured event tracing: typed events, bounded ring, JSONL sink.

Every interesting thing a search does — an iteration completing, a
move being applied, the async decision function firing, a pool worker
finishing a task, a checkpoint landing — becomes one *typed event*: a
flat JSON-serializable dict with a fixed envelope

``{"type": ..., "seq": ..., "run": ..., "span": ...}``

plus per-type payload fields (see :data:`EVENT_SCHEMA`).  ``run`` is a
per-run id so traces from different runs can share a directory;
``span`` names the emitting execution context (``"main"``, ``"rank-3"``,
``"searcher-2"``, ``"worker-1"``) so pool-worker events can be
correlated with master iterations across process boundaries: workers
trace into their own :class:`EventTracer` (same ``run`` id, their own
span), ship the event dicts back over the existing result queue, and
the master folds them in with :meth:`EventTracer.ingest`.

Events land in a bounded in-memory ring (cheap, always queryable via
:meth:`EventTracer.events`) and, when a sink is attached, in an
append-only JSONL file.  :class:`JsonlEventSink` follows the same
durability discipline as ``persistence/atomic.py``'s ``append_line`` —
one write per complete line, flush immediately, ``fsync``
periodically and on close — implemented inline on a long-lived handle
because opening the file per event would dominate the cost of tracing.
A torn final line (crash mid-append) is detected and skipped by the
validator, exactly like the run-manifest reader.

The disabled path is :data:`NULL_TRACER`: ``enabled`` is ``False`` and
every method is a no-op, so uninstrumented code pays one attribute
check.
"""

from __future__ import annotations

import json
import os
import uuid

from collections import deque

from repro.obs.timeutil import utc_timestamp

__all__ = [
    "ENVELOPE_KEYS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "EventTracer",
    "JsonlEventSink",
    "NULL_TRACER",
    "NullTracer",
    "new_run_id",
]

#: keys every traced event carries, in emission order.
ENVELOPE_KEYS = ("type", "seq", "run", "span")

#: required payload fields per event type (beyond the envelope).  The
#: sink's first line is a ``meta`` record describing the trace itself;
#: it is not emittable through :meth:`EventTracer.emit`.
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    "iteration": ("iteration", "evaluations", "archive_size"),
    "move_applied": ("iteration", "objectives"),
    "archive_update": ("iteration", "archive_size"),
    "decision_fired": ("iteration", "reason"),
    "worker_task": ("worker", "task_id", "neighbors"),
    "comm_send": ("peer", "kind"),
    "comm_recv": ("peer", "kind"),
    "checkpoint": ("kind", "iteration"),
    # Solve-service job lifecycle: one ``job_state`` per transition
    # (queued/running/done/cancelled/failed/rejected), ``job_progress``
    # per completed job iteration.  Each job emits under its own span
    # (``job-<id>``), so one trace file multiplexes many tenants.
    "job_state": ("job", "state"),
    "job_progress": ("job", "iteration", "evaluations"),
    # Fault-tolerance lifecycle: ``job_retry`` when an attempt failed
    # and the job re-queued (resuming from its latest checkpoint),
    # ``job_preempted`` when a higher-priority arrival suspended it,
    # ``job_checkpoint_corrupt`` when a resume snapshot failed its
    # integrity check and the job restarted fresh, ``job_recovered``
    # when a restarted scheduler re-admitted it from the job ledger.
    "job_retry": ("job", "attempt", "cause"),
    "job_preempted": ("job", "evaluations"),
    "job_checkpoint_corrupt": ("job", "error"),
    "job_recovered": ("job", "state"),
    # ``job_wrong_instance`` when a job's recorded instance fingerprint
    # disagreed with the instance available at resume/recovery — the
    # job fails loudly instead of solving the wrong problem.
    "job_wrong_instance": ("job", "error"),
    # Live telemetry: a periodic point-in-time metrics reading emitted
    # by the serve scheduler's pump (jobs in flight, queue depth, pool
    # backlog, counter deltas, latency histogram state) so watchers and
    # soak harnesses can sample steady state without stopping the run.
    "metrics_snapshot": ("snapshot",),
    "meta": ("run", "format", "written_at"),
}

# Events may additionally carry two *optional* envelope fields for
# cross-process span propagation: ``trace`` names the logical trace the
# event belongs to (the serve layer uses the job id) and ``parent``
# names the parent span within that trace.  They are optional because
# standalone drivers have no trace to join; the validator tolerates
# extra fields by design, and ``repro.obs.spans`` reconstructs per-job
# span trees from them.

#: the emittable event types (everything except the sink's meta line).
EVENT_TYPES = frozenset(EVENT_SCHEMA) - {"meta"}

#: bumped when the envelope or a type's required fields change.
TRACE_FORMAT_VERSION = 1


def new_run_id() -> str:
    """A short unique id tying all of one run's events together."""
    return uuid.uuid4().hex[:12]


def _coerce_scalar(obj):
    """JSON fallback for numpy scalars (``np.int64`` peer ranks etc.).

    Event payloads flow out of numpy-backed code; rather than require
    every emit site to cast, the sink accepts anything exposing
    ``item()`` and serializes the equivalent Python scalar.
    """
    item = getattr(obj, "item", None)
    if item is not None:
        return item()
    raise TypeError(
        f"Object of type {type(obj).__name__} is not JSON serializable"
    )


class JsonlEventSink:
    """Append-only JSONL file of events, durably written.

    The first line is a ``meta`` record (trace format version, run id,
    ISO-8601 UTC ``written_at``); every subsequent line is one event.
    Writes are one complete line each, flushed immediately; ``fsync``
    runs every ``fsync_every`` lines and on :meth:`close`, bounding
    loss on a crash to the last few events plus at most one torn line.
    """

    __slots__ = ("path", "_handle", "_fsync_every", "_since_sync")

    def __init__(self, path, run_id: str, *, fsync_every: int = 64) -> None:
        self.path = os.fspath(path)
        self._fsync_every = max(1, int(fsync_every))
        self._since_sync = 0
        self._handle = open(self.path, "a", encoding="utf-8")
        self.write(
            {
                "type": "meta",
                "run": run_id,
                "format": TRACE_FORMAT_VERSION,
                "written_at": utc_timestamp(),
            }
        )

    def write(self, event: dict) -> None:
        handle = self._handle
        if handle is None:
            return
        handle.write(
            json.dumps(event, separators=(",", ":"), default=_coerce_scalar)
            + "\n"
        )
        handle.flush()
        self._since_sync += 1
        if self._since_sync >= self._fsync_every:
            os.fsync(handle.fileno())
            self._since_sync = 0

    def close(self) -> None:
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        handle.flush()
        try:
            os.fsync(handle.fileno())
        finally:
            handle.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventTracer:
    """Typed events into a bounded ring and an optional JSONL sink."""

    __slots__ = ("run_id", "span", "ring", "sink", "_seq", "_listeners")

    enabled = True

    def __init__(
        self,
        run_id: str | None = None,
        *,
        span: str = "main",
        ring_size: int = 4096,
        sink: JsonlEventSink | None = None,
    ) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self.span = span
        self.ring: deque = deque(maxlen=ring_size)
        self.sink = sink
        self._seq = 0
        self._listeners: list = []

    def add_listener(self, fn) -> None:
        """Call ``fn(event)`` for every event recorded by this tracer.

        Listeners fire synchronously after the ring/sink writes, for
        both locally emitted and ingested events, and may run on
        whatever thread the emit happens on.  A listener that raises is
        dropped silently — streaming is observation, and a broken
        subscriber must never take the search down with it.
        """
        self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def _notify(self, event: dict) -> None:
        for fn in list(self._listeners):
            try:
                fn(event)
            except Exception:
                self.remove_listener(fn)

    def emit(self, type_: str, *, span: str | None = None, **fields) -> dict:
        """Record one event; returns the event dict.

        Unknown types raise ``ValueError`` — the whole point of *typed*
        events is that a typo cannot silently produce an unvalidatable
        trace.
        """
        if type_ not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type_!r}")
        self._seq += 1
        event = {
            "type": type_,
            "seq": self._seq,
            "run": self.run_id,
            "span": span if span is not None else self.span,
        }
        event.update(fields)
        self.ring.append(event)
        if self.sink is not None:
            self.sink.write(event)
        if self._listeners:
            self._notify(event)
        return event

    def ingest(self, events) -> None:
        """Fold events traced in another process into this tracer.

        Each event keeps its payload and span but gets this tracer's
        sequence numbering (the worker-local ``seq`` is preserved as
        ``wseq``), so the master's ring and sink stay monotonic.
        """
        for event in events:
            self._seq += 1
            merged = dict(event)
            if "seq" in merged:
                merged["wseq"] = merged["seq"]
            merged["seq"] = self._seq
            merged["run"] = self.run_id
            self.ring.append(merged)
            if self.sink is not None:
                self.sink.write(merged)
            if self._listeners:
                self._notify(merged)

    def events(self, type_: str | None = None) -> list[dict]:
        """Current ring contents (optionally one type), oldest first."""
        if type_ is None:
            return list(self.ring)
        return [e for e in self.ring if e["type"] == type_]

    def drain(self) -> list[dict]:
        """Pop and return everything in the ring (worker-side batching)."""
        out = list(self.ring)
        self.ring.clear()
        return out

    # -- checkpoint support -------------------------------------------
    # Only the sequence counter rides in snapshots: ring contents are
    # ephemeral by design and the sink file itself survives the crash.
    def export_state(self) -> dict:
        return {"seq": self._seq}

    def restore_state(self, state: dict) -> None:
        self._seq = int(state.get("seq", 0))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventTracer(run={self.run_id!r}, span={self.span!r}, "
            f"seq={self._seq}, ring={len(self.ring)})"
        )


class NullTracer:
    """The disabled tracer: same interface, no storage, no validation."""

    __slots__ = ()

    enabled = False
    run_id = ""
    span = "main"
    sink = None

    def emit(self, type_: str, *, span: str | None = None, **fields) -> dict:
        return {}

    def ingest(self, events) -> None:
        return None

    def add_listener(self, fn) -> None:
        return None

    def remove_listener(self, fn) -> None:
        return None

    def events(self, type_: str | None = None) -> list[dict]:
        return []

    def drain(self) -> list[dict]:
        return []

    def export_state(self) -> dict:
        return {"seq": 0}

    def restore_state(self, state: dict) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NullTracer()"


#: the shared disabled tracer every uninstrumented component points at.
NULL_TRACER = NullTracer()
