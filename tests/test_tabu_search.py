"""Tests for the sequential TSMO engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.evaluation import Evaluator
from repro.core.objectives import ObjectiveVector
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.mo.dominance import dominates
from repro.tabu.neighborhood import Neighbor, sample_neighborhood
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, run_sequential_tsmo
from repro.tabu.trace import TrajectoryRecorder
from repro.core.operators.registry import default_registry
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 25, seed=77)


@pytest.fixture(scope="module")
def params():
    return TSMOParams(
        max_evaluations=500,
        neighborhood_size=25,
        tabu_tenure=8,
        archive_capacity=10,
        nondom_capacity=15,
        restart_after=5,
    )


class TestNeighborhoodSampling:
    def test_size_and_budget(self, instance, small_solution):
        evaluator = Evaluator(instance)
        sol = None
        from repro.core.construction import i1_construct

        sol = i1_construct(instance, rng=1)
        neighbors = sample_neighborhood(
            sol, 30, default_registry(), np.random.default_rng(0), evaluator
        )
        assert len(neighbors) == 30
        assert evaluator.count == 30

    def test_iteration_tagging(self, instance):
        from repro.core.construction import i1_construct

        sol = i1_construct(instance, rng=1)
        neighbors = sample_neighborhood(
            sol,
            5,
            default_registry(),
            np.random.default_rng(0),
            Evaluator(instance),
            iteration=42,
        )
        assert all(n.iteration == 42 for n in neighbors)

    def test_neighbors_are_children_of_parent(self, instance):
        from repro.core.construction import i1_construct

        sol = i1_construct(instance, rng=1)
        neighbors = sample_neighborhood(
            sol, 10, default_registry(), np.random.default_rng(0), Evaluator(instance)
        )
        assert all(n.solution != sol for n in neighbors)
        assert all(n.objectives == n.solution.objectives for n in neighbors)


class TestEvaluatorBudget:
    def test_exhaustion(self, instance):
        ev = Evaluator(instance, max_evaluations=3)
        sol = Solution.from_routes(
            instance, [list(range(1, instance.n_customers + 1))[i::5] for i in range(5)]
        )
        for _ in range(3):
            ev.evaluate(sol)
        assert ev.exhausted
        assert ev.remaining == 0

    def test_unlimited(self, instance):
        ev = Evaluator(instance)
        assert not ev.exhausted
        assert ev.remaining is None

    def test_invalid_budget(self, instance):
        with pytest.raises(SearchError):
            Evaluator(instance, max_evaluations=0)

    def test_reset(self, instance):
        ev = Evaluator(instance, 10)
        ev.count = 7
        ev.reset()
        assert ev.count == 0


class TestEngine:
    def test_requires_initialization(self, instance, params):
        engine = TSMOEngine(instance, params, 1)
        with pytest.raises(SearchError, match="initialize"):
            engine.generate_neighborhood()
        with pytest.raises(SearchError, match="initialize"):
            engine.select_and_update([])

    def test_initialize_seeds_memories(self, instance, params):
        engine = TSMOEngine(instance, params, 1)
        initial = engine.initialize()
        assert engine.current is initial
        assert len(engine.memories.archive) == 1
        assert engine.evaluator.count == 1

    def test_step_advances(self, instance, params):
        engine = TSMOEngine(instance, params, 1)
        engine.initialize()
        engine.step()
        assert engine.iteration == 1
        assert engine.evaluator.count == 1 + params.neighborhood_size

    def test_selection_is_nondominated_and_not_tabu(self, instance, params):
        engine = TSMOEngine(instance, params, 1)
        engine.initialize()
        neighbors = engine.generate_neighborhood()
        chosen = engine.select_and_update(neighbors)
        matching = [n for n in neighbors if n.solution == chosen]
        if matching:  # not a restart
            selected = matching[0]
            for other in neighbors:
                assert not dominates(
                    other.objectives.as_array(), selected.objectives.as_array()
                )
            # Its attribute was pushed onto the tabu list.
            assert selected.move.attribute in engine.memories.tabulist

    def test_empty_neighborhood_forces_restart(self, instance, params):
        engine = TSMOEngine(instance, params, 1)
        engine.initialize()
        before = engine.restarts
        engine.select_and_update([])
        assert engine.restarts == before + 1

    def test_stagnation_triggers_restart_flag(self, instance):
        # An archive that cannot change: capacity 1 with an unbeatable
        # entry forces "noImprovement" after restart_after iterations.
        params = TSMOParams(
            max_evaluations=10_000,
            neighborhood_size=5,
            tabu_tenure=3,
            archive_capacity=1,
            nondom_capacity=5,
            restart_after=3,
        )
        engine = TSMOEngine(instance, params, 1)
        engine.initialize()
        perfect = ObjectiveVector(0.0, 0, 0.0)
        engine.memories.archive.clear()
        engine.memories.archive.try_add(engine.current, perfect)
        for _ in range(10):
            engine.step()
        assert engine.restarts >= 1

    def test_tabu_all_candidates_restarts(self, instance, params):
        # Tenure must exceed the neighborhood size so nothing expires
        # while we blacklist every candidate.
        from dataclasses import replace

        wide = replace(params, tabu_tenure=params.neighborhood_size * 2)
        engine = TSMOEngine(instance, wide, 1)
        engine.initialize()
        neighbors = engine.generate_neighborhood()
        for n in neighbors:
            engine.memories.tabulist.push(n.move.attribute)
        before = engine.restarts
        engine.select_and_update(neighbors)
        assert engine.restarts == before + 1


class TestSequentialRun:
    def test_budget_respected(self, instance, params):
        result = run_sequential_tsmo(instance, params, seed=3)
        assert result.evaluations >= params.max_evaluations
        # Overshoot bounded by one neighborhood.
        assert result.evaluations <= params.max_evaluations + params.neighborhood_size
        assert result.iterations > 0

    def test_deterministic(self, instance, params):
        a = run_sequential_tsmo(instance, params, seed=9)
        b = run_sequential_tsmo(instance, params, seed=9)
        assert np.array_equal(a.front(), b.front())
        assert a.iterations == b.iterations

    def test_seeds_differ(self, instance, params):
        a = run_sequential_tsmo(instance, params, seed=1)
        b = run_sequential_tsmo(instance, params, seed=2)
        assert not np.array_equal(a.front(), b.front())

    def test_archive_is_nondominated(self, instance, params):
        result = run_sequential_tsmo(instance, params, seed=5)
        front = result.front()
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_search_improves_over_initial(self, instance):
        """The front after the search must dominate-or-match a larger
        budgetless baseline: compare best feasible distance to the I1
        seed's."""
        from repro.core.construction import i1_construct

        params = TSMOParams(
            max_evaluations=2000, neighborhood_size=40, restart_after=8
        )
        seed_solution = i1_construct(instance, rng=np.random.default_rng(4))
        result = run_sequential_tsmo(instance, params, seed=4, initial=seed_solution)
        best = result.best_feasible()
        assert best is not None
        assert best[0] <= seed_solution.objectives.distance + 1e-9

    def test_result_metadata(self, instance, params):
        result = run_sequential_tsmo(instance, params, seed=1)
        assert result.algorithm == "sequential"
        assert result.instance_name == instance.name
        assert result.processors == 1
        assert result.wall_time > 0
        assert result.simulated_time is None

    def test_feasible_front_subset(self, instance, params):
        result = run_sequential_tsmo(instance, params, seed=1)
        feasible = result.feasible_front()
        assert feasible.shape[0] <= result.front().shape[0]
        if feasible.size:
            assert np.all(feasible[:, 2] <= 1e-9)

    def test_trace_recording(self, instance, params):
        trace = TrajectoryRecorder()
        result = run_sequential_tsmo(instance, params, seed=1, trace=trace)
        assert len(trace.selections) == result.iterations + 1  # + initial
        assert len(trace.neighbors) == result.evaluations - 1  # minus initial
        # Sequential search never selects across iterations.
        assert trace.carryover_count == 0


class TestTrajectoryRecorder:
    def test_cap(self):
        rec = TrajectoryRecorder(max_neighbors=3)
        for i in range(10):
            rec.record_neighbor(i, ObjectiveVector(1, 1, 0))
        assert len(rec.neighbors) == 3

    def test_arrays(self):
        rec = TrajectoryRecorder()
        rec.record_neighbor(1, ObjectiveVector(10, 2, 0.5))
        rec.record_selection(1, 2, ObjectiveVector(9, 2, 0.0))
        n = rec.neighbors_array()
        s = rec.selections_array()
        assert n.shape == (1, 5)
        assert s.shape == (1, 5)
        assert s[0, 0] == 1 and s[0, 1] == 2
        assert rec.carryover_count == 1

    def test_restart_not_counted_as_carryover(self):
        rec = TrajectoryRecorder()
        rec.record_selection(0, 5, ObjectiveVector(1, 1, 0), restarted=True)
        assert rec.carryover_count == 0

    def test_empty_arrays(self):
        rec = TrajectoryRecorder()
        assert rec.neighbors_array().shape == (0, 5)
        assert rec.selections_array().shape == (0, 5)
