"""Persistent, fault-tolerant worker pool for the real-process TSMO.

The paper's master–worker variants assume workers that *exist for the
whole run* and a master that survives worker trouble — its asynchronous
decision function (§III.D) is precisely a straggler-tolerance policy.
This module provides that substrate on real OS processes, replacing the
throwaway ``multiprocessing.Pool`` the first backend used:

* **long-lived spawn-context workers** fed over per-worker task queues
  and answering over per-worker result queues, so the instance (with
  its O(N²) travel matrix) ships once per worker life and route-stats
  caches persist across tasks.  Result queues are deliberately *not*
  shared: a ``multiprocessing.Queue`` with several writer processes
  guards its pipe with an interprocess lock, and a worker dying while
  its feeder thread holds that lock would wedge every *other* worker's
  ``put`` forever — a single crash poisoning the whole pool.  With one
  writer per queue, a crash can only corrupt the dead worker's own
  queue, which is abandoned on respawn anyway;
* **streaming result batches** (``batch_size`` neighbors per message),
  so the asynchronous master can run conditions c1–c4 on partial
  neighborhoods exactly as Algorithm 2 prescribes;
* **liveness supervision** — worker heartbeats on an interval, a
  per-task deadline and a heartbeat timeout; a silent or dead worker is
  detected within one polling cycle, never waited on forever;
* **bounded retry with exponential backoff** — the task a failed
  worker held is re-dispatched (up to ``max_retries`` times, then
  executed on the master); because every task carries its own seed or
  RNG state, a retry regenerates *the same neighbors*, so a crash never
  forks the search trajectory;
* **exactly-once delivery across retries** — the pool remembers how
  many neighbors of each task already reached the driver and skips that
  prefix of a retried task's output, so mid-task crashes neither drop
  nor duplicate neighbors;
* **replacement workers** — a failed worker slot is respawned up to
  ``respawn_cap`` times; when every slot is dead and the respawn budget
  is spent, the pool *degrades* to master-local execution and the run
  still completes (never a hang);
* **deterministic fault injection** — a :class:`FaultPlan` (or the
  ``REPRO_POOL_FAULTS`` environment variable) kills or delays chosen
  workers on chosen tasks, so every failure path above is testable in
  CI without flaky timing tricks.

Everything the pool observes is aggregated into :meth:`WorkerPool.report`
— per-worker task/batch/crash/respawn counters, retry and straggler
totals, dispatch backlog high-water mark and task latency quantiles —
which the drivers attach to ``TSMOResult.extra["pool"]``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.solution import Solution
from repro.errors import WorkerPoolError
from repro.obs import ENV_OBS, ENV_TRACE_DIR, NULL_OBS, EventTracer, utc_timestamp
from repro.parallel.messages import PoolBatch, PoolHeartbeat, PoolTask, StopMessage
from repro.rng import FastRng
from repro.vrptw.instance import Instance

__all__ = [
    "BatchEvent",
    "FaultPlan",
    "PoolParams",
    "TaskOutcome",
    "WorkerPool",
]

#: exit code a worker uses for an injected crash (diagnosable in logs).
_FAULT_EXIT = 17


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    Faults are keyed by ``(worker slot, per-slot task ordinal)`` — the
    ordinal counts every task ever dispatched to that slot, surviving
    respawns (a replacement worker resumes the count), so each entry
    fires exactly once per run.

    ``kills`` entries are ``(slot, ordinal, after_batches)``: the
    worker exits hard (``os._exit``) either before executing the task
    (``after_batches is None``) or after having streamed that many
    result batches of it — the latter exercises the exactly-once
    resume-by-offset path.  ``delays`` entries are ``(slot, ordinal,
    seconds)``: the worker sleeps before executing, which trips the
    per-task deadline when ``seconds`` exceeds it (a synthetic
    straggler).

    The environment form ``REPRO_POOL_FAULTS`` is a comma list of
    ``kill:SLOT@ORDINAL``, ``kill:SLOT@ORDINAL+BATCHES`` and
    ``delay:SLOT@ORDINAL:SECONDS`` items, e.g.
    ``"kill:1@3,delay:0@2:0.5"``.
    """

    kills: tuple[tuple[int, int, int | None], ...] = ()
    delays: tuple[tuple[int, int, float], ...] = ()

    @staticmethod
    def from_env(spec: str | None = None) -> "FaultPlan | None":
        """Parse ``REPRO_POOL_FAULTS`` (or an explicit spec string)."""
        if spec is None:
            spec = os.environ.get("REPRO_POOL_FAULTS", "")
        spec = spec.strip()
        if not spec:
            return None
        kills: list[tuple[int, int, int | None]] = []
        delays: list[tuple[int, int, float]] = []
        for item in spec.split(","):
            item = item.strip()
            kind, _, rest = item.partition(":")
            try:
                if kind == "kill":
                    slot_s, _, ordinal_s = rest.partition("@")
                    ordinal_s, _, after_s = ordinal_s.partition("+")
                    kills.append(
                        (int(slot_s), int(ordinal_s), int(after_s) if after_s else None)
                    )
                elif kind == "delay":
                    where, _, seconds_s = rest.partition(":")
                    slot_s, _, ordinal_s = where.partition("@")
                    delays.append((int(slot_s), int(ordinal_s), float(seconds_s)))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except ValueError as exc:
                raise WorkerPoolError(
                    f"malformed REPRO_POOL_FAULTS item {item!r}: {exc}"
                ) from exc
        return FaultPlan(kills=tuple(kills), delays=tuple(delays))

    def action(
        self, slot: int, ordinal: int
    ) -> tuple[str, float | int | None] | None:
        """The fault to apply for this (slot, ordinal), if any."""
        for s, o, after in self.kills:
            if s == slot and o == ordinal:
                return ("kill", after)
        for s, o, seconds in self.delays:
            if s == slot and o == ordinal:
                return ("delay", seconds)
        return None

    def __bool__(self) -> bool:
        return bool(self.kills or self.delays)


# ----------------------------------------------------------------------
# Pool configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PoolParams:
    """Supervision knobs of the worker pool.

    The defaults are sized for production-style runs; tests shrink the
    intervals so failure paths resolve in milliseconds.
    """

    #: seconds between worker liveness beacons.
    heartbeat_interval: float = 0.25
    #: a busy worker silent for this long is declared hung.
    heartbeat_timeout: float = 30.0
    #: hard per-task wall-clock deadline (``None`` disables; the
    #: heartbeat timeout still catches fully wedged workers).
    task_deadline: float | None = 120.0
    #: re-dispatch attempts per task before the master runs it locally.
    max_retries: int = 2
    #: total replacement workers the pool may spawn over its lifetime.
    respawn_cap: int = 2
    #: base of the exponential re-dispatch backoff (seconds); attempt k
    #: waits ``backoff_base * 2**(k-1)``, capped at ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: default blocking granularity of :meth:`WorkerPool.poll`.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise WorkerPoolError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise WorkerPoolError("heartbeat_timeout must exceed the interval")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise WorkerPoolError("task_deadline must be positive (or None)")
        if self.max_retries < 0:
            raise WorkerPoolError("max_retries must be >= 0")
        if self.respawn_cap < 0:
            raise WorkerPoolError("respawn_cap must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise WorkerPoolError("need 0 <= backoff_base <= backoff_cap")
        if self.poll_interval <= 0:
            raise WorkerPoolError("poll_interval must be positive")


# ----------------------------------------------------------------------
# Task execution (shared by worker processes and the master fallback)
# ----------------------------------------------------------------------
def _task_rng(task: PoolTask) -> np.random.Generator:
    if task.rng_state is not None:
        bit_generator = np.random.PCG64()
        bit_generator.state = task.rng_state
        return np.random.Generator(bit_generator)
    return np.random.default_rng(task.seed)


def execute_task(
    instance: Instance,
    evaluator: Evaluator,
    registry: OperatorRegistry,
    task: PoolTask,
    worker: int,
):
    """Yield the :class:`PoolBatch` stream of one task.

    Pure in the sense that matters: the batches are a function of
    ``(instance, task)`` only — the evaluator/registry are reusable
    caches that never change the sampled moves or the objective floats.
    That is the determinism-under-retry invariant: re-running the same
    task after a crash reproduces the same neighbor sequence.
    """
    cache = evaluator.stats_cache
    hits0, misses0 = cache.hits, cache.misses
    solution = Solution(instance, task.routes)
    rng = _task_rng(task)
    out = []
    fast = FastRng(rng)
    try:
        for _ in range(task.count):
            move = registry.draw_move(solution, fast)
            if move is None:
                break
            obj = evaluator.evaluate_move(solution, move)
            child = move.apply(solution)  # routes must ship to the master
            out.append(
                (child.routes, (obj.distance, obj.vehicles, obj.tardiness), move.attribute)
            )
            if len(out) >= task.batch_size:
                yield PoolBatch(
                    worker=worker,
                    task_id=task.task_id,
                    attempt=task.attempt,
                    neighbors=tuple(out),
                    final=False,
                )
                out = []
    finally:
        fast.detach()
    yield PoolBatch(
        worker=worker,
        task_id=task.task_id,
        attempt=task.attempt,
        neighbors=tuple(out),
        final=True,
        rng_state=rng.bit_generator.state if task.rng_state is not None else None,
        cache_delta=(cache.hits - hits0, cache.misses - misses0),
    )


def _pool_worker_main(
    slot: int,
    generation: int,
    instance: Instance,
    task_q,
    result_q,
    heartbeat_interval: float,
    fault_plan: FaultPlan | None,
    ordinal_base: int,
) -> None:
    """Entry point of one worker process (spawn context)."""
    evaluator = Evaluator(instance)
    registry = default_registry()
    # Spawn children inherit the master's environment, so the same
    # REPRO_TRACE_DIR / REPRO_OBS switch that enabled the master's
    # bundle enables worker-side event collection — no new plumbing
    # through the task messages.  Workers never open their own sink;
    # drained events ride back on final PoolBatch messages and the
    # master ingests them under this per-worker span.
    tracer = None
    if os.environ.get(ENV_TRACE_DIR) or os.environ.get(ENV_OBS, "").strip() not in (
        "",
        "0",
    ):
        tracer = EventTracer(span=f"worker-{slot}")
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                result_q.put(PoolHeartbeat(slot, generation))
            except Exception:  # pragma: no cover - master gone
                return

    threading.Thread(target=beat, daemon=True).start()

    ordinal = ordinal_base
    while True:
        try:
            msg = task_q.get()
        except (EOFError, OSError):  # pragma: no cover - master gone
            os._exit(0)
        if isinstance(msg, StopMessage):
            break
        task: PoolTask = msg
        action = fault_plan.action(slot, ordinal) if fault_plan else None
        ordinal += 1
        kill_after: int | None = None
        if action is not None:
            kind, arg = action
            if kind == "kill":
                if arg is None:
                    os._exit(_FAULT_EXIT)
                kill_after = int(arg)
            elif kind == "delay":
                time.sleep(float(arg))
        batches_sent = 0
        for batch in execute_task(instance, evaluator, registry, task, slot):
            if batch.final and tracer is not None:
                tracer.emit(
                    "worker_task",
                    worker=slot,
                    task_id=task.task_id,
                    neighbors=task.count,
                )
                batch = replace(batch, events=tuple(tracer.drain()))
            result_q.put(batch)
            batches_sent += 1
            if kill_after is not None and batches_sent >= kill_after:
                os._exit(_FAULT_EXIT)
    stop_beating.set()


# ----------------------------------------------------------------------
# Master-side bookkeeping
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BatchEvent:
    """One delivered batch: what the drivers consume from :meth:`poll`.

    ``neighbors`` holds only *fresh* triples — the prefix a retried
    task already delivered has been skipped by the pool.  ``final``
    marks task completion (the c1 signal of the asynchronous decision
    function); ``rng_state``/``cache_delta`` ride on final events only.
    """

    task_id: int
    iteration: int
    neighbors: tuple
    final: bool
    worker: int
    rng_state: dict | None = None
    cache_delta: tuple[int, int] | None = None


@dataclass(slots=True)
class TaskOutcome:
    """Everything a completed task produced, in generation order."""

    neighbors: tuple
    rng_state: dict | None
    cache_delta: tuple[int, int]


class _Slot:
    """One worker position: a process, its feed queue, its counters."""

    __slots__ = (
        "index",
        "process",
        "task_q",
        "result_q",
        "alive",
        "busy",
        "dispatched_at",
        "generation",
        "heard",
        "last_seen",
        "dispatched_count",
        "tasks_done",
        "batches",
        "crashes",
        "stragglers",
        "respawns",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.task_q = None
        self.result_q = None
        self.alive = False
        self.busy: PoolTask | None = None
        self.dispatched_at = 0.0
        self.generation = 0
        self.heard = False
        self.last_seen = 0.0
        self.dispatched_count = 0
        self.tasks_done = 0
        self.batches = 0
        self.crashes = 0
        self.stragglers = 0
        self.respawns = 0


class _TaskState:
    """Master-side lifecycle of one submitted task."""

    __slots__ = (
        "task",
        "attempt",
        "delivered",
        "attempt_seen",
        "submitted_at",
        "ready_at",
    )

    def __init__(self, task: PoolTask, now: float) -> None:
        self.task = task
        self.attempt = 0
        #: neighbors already handed to the driver (across attempts).
        self.delivered = 0
        #: neighbors seen so far within the current attempt.
        self.attempt_seen = 0
        self.submitted_at = now
        self.ready_at = now


class WorkerPool:
    """A supervised, persistent pool of neighborhood-evaluation workers.

    Use as a context manager::

        with WorkerPool(instance, n_workers=4) as pool:
            tid = pool.submit(routes, count=50, seed=123, iteration=1)
            outcome = pool.gather([tid])[tid]

    or drive it event-by-event with :meth:`poll` (the asynchronous
    master).  All blocking calls are bounded — worker failure is
    handled by retry/respawn/degradation, never by waiting forever.
    """

    def __init__(
        self,
        instance: Instance,
        n_workers: int,
        *,
        params: PoolParams | None = None,
        fault_plan: FaultPlan | None = None,
        batch_size: int | None = None,
        obs=NULL_OBS,
    ) -> None:
        if n_workers < 1:
            raise WorkerPoolError("need at least one worker process")
        self.instance = instance
        self.obs = obs
        self.n_workers = n_workers
        self.params = params or PoolParams()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        #: default streaming granularity for :meth:`submit`.
        self.default_batch_size = batch_size
        self.degraded = False

        self._ctx = mp.get_context("spawn")
        self._slots = [_Slot(i) for i in range(n_workers)]
        self._next_task_id = 0
        self._pending: deque[int] = deque()  # task_ids awaiting dispatch
        self._tasks: dict[int, _TaskState] = {}
        self._respawns_used = 0
        self._closed = False

        # Global counters for the report.
        self._retries = 0
        self._crashes = 0
        self._stragglers = 0
        self._master_fallback_tasks = 0
        self._stale_batches = 0
        self._heartbeats = 0
        self._tasks_completed = 0
        self._max_backlog = 0
        self._latencies: list[float] = []

        # Master-local execution state (degradation / retry exhaustion).
        self._local_evaluator: Evaluator | None = None
        self._local_registry: OperatorRegistry | None = None

        for slot in self._slots:
            self._spawn(slot)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn(self, slot: _Slot) -> None:
        slot.task_q = self._ctx.Queue()
        slot.result_q = self._ctx.Queue()
        slot.generation += 1
        slot.process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                slot.index,
                slot.generation,
                self.instance,
                slot.task_q,
                slot.result_q,
                self.params.heartbeat_interval,
                self.fault_plan,
                slot.dispatched_count,
            ),
            daemon=True,
        )
        slot.process.start()
        slot.alive = True
        slot.busy = None
        slot.heard = False
        slot.last_seen = time.monotonic()

    def close(self) -> None:
        """Stop every worker; bounded waits only, stragglers get killed."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.alive and slot.process is not None:
                try:
                    slot.task_q.put(StopMessage(reason="pool closed"))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        for slot in self._slots:
            proc = slot.process
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - stubborn process
                    proc.kill()
                    proc.join(timeout=1.0)
            for q in (slot.task_q, slot.result_q):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
        self._maybe_dump_report()

    def _maybe_dump_report(self) -> None:
        """Persist the counter report when CI asks for it.

        With ``REPRO_POOL_REPORT_DIR`` set, every pool writes its final
        report there as JSON — the artifact CI uploads when a pool test
        fails, so hangs and crash loops are diagnosable post-mortem.
        """
        directory = os.environ.get("REPRO_POOL_REPORT_DIR")
        if not directory:
            return
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"pool-{os.getpid()}-{id(self):x}.json"
            )
            payload = dict(self.report(), written_at=utc_timestamp())
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, default=str)
        except OSError:  # pragma: no cover - report is best-effort
            pass

    # -- submission ----------------------------------------------------
    def submit(
        self,
        routes: tuple[tuple[int, ...], ...],
        count: int,
        *,
        seed: int | None = None,
        rng_state: dict | None = None,
        iteration: int = 0,
        batch_size: int | None = None,
    ) -> int:
        """Queue one neighborhood chunk; returns its task id."""
        if self._closed:
            raise WorkerPoolError("pool is closed")
        if count < 1:
            raise WorkerPoolError("task count must be >= 1")
        if (seed is None) == (rng_state is None):
            raise WorkerPoolError("tasks need exactly one of seed= or rng_state=")
        if batch_size is None:
            batch_size = self.default_batch_size or count
        task_id = self._next_task_id
        self._next_task_id += 1
        task = PoolTask(
            task_id=task_id,
            attempt=0,
            routes=routes,
            count=count,
            batch_size=batch_size,
            iteration=iteration,
            seed=seed,
            rng_state=rng_state,
        )
        self._tasks[task_id] = _TaskState(task, time.monotonic())
        self._pending.append(task_id)
        self._max_backlog = max(self._max_backlog, len(self._pending))
        return task_id

    # -- event loop ----------------------------------------------------
    def poll(self, timeout: float | None = None) -> list[BatchEvent]:
        """Advance the pool and return newly delivered batches.

        Dispatches pending tasks, drains the result queue (blocking up
        to ``timeout`` for the first message), and polices liveness —
        crashed or hung workers are respawned and their tasks retried.
        Returns possibly-empty; never blocks beyond ``timeout`` plus a
        bounded policing pass.
        """
        if timeout is None:
            timeout = self.params.poll_interval
        events: list[BatchEvent] = []
        self._dispatch(events)
        self._drain(timeout, events)
        self._police(events)
        self._dispatch(events)
        return events

    def gather(self, task_ids) -> dict[int, TaskOutcome]:
        """Block (with supervision) until every listed task completes."""
        want = set(task_ids)
        buffers: dict[int, list] = {tid: [] for tid in want}
        done: dict[int, TaskOutcome] = {}
        while want:
            for event in self.poll():
                if event.task_id not in want:
                    continue
                buffers[event.task_id].extend(event.neighbors)
                if event.final:
                    done[event.task_id] = TaskOutcome(
                        neighbors=tuple(buffers.pop(event.task_id)),
                        rng_state=event.rng_state,
                        cache_delta=event.cache_delta or (0, 0),
                    )
                    want.discard(event.task_id)
        return done

    # -- internals -----------------------------------------------------
    def _idle_slots(self) -> list[_Slot]:
        return [s for s in self._slots if s.alive and s.busy is None]

    def _alive_count(self) -> int:
        return sum(1 for s in self._slots if s.alive)

    def _dispatch(self, events: list[BatchEvent]) -> None:
        now = time.monotonic()
        if self.degraded:
            while self._pending:
                tid = self._pending.popleft()
                self._run_locally(tid, events)
            return
        idle = self._idle_slots()
        deferred: list[int] = []
        while self._pending and idle:
            tid = self._pending.popleft()
            state = self._tasks[tid]
            if state.ready_at > now:  # still in its retry backoff window
                deferred.append(tid)
                continue
            slot = idle.pop(0)
            task = replace(state.task, attempt=state.attempt)
            slot.busy = task
            slot.dispatched_at = now
            slot.dispatched_count += 1
            try:
                slot.task_q.put(task)
            except Exception:  # pragma: no cover - feed queue broken
                self._fail_slot(slot, "crash", events)
        for tid in reversed(deferred):
            self._pending.appendleft(tid)

    def _handle_message(self, msg, events: list[BatchEvent]) -> None:
        if isinstance(msg, PoolHeartbeat):
            self._heartbeats += 1
            if 0 <= msg.worker < len(self._slots):
                slot = self._slots[msg.worker]
                # A beacon a dead predecessor left in the queue must
                # not vouch for its respawned replacement.
                if msg.generation == slot.generation:
                    slot.heard = True
                    slot.last_seen = time.monotonic()
            return
        self._accept_batch(msg, events)

    def _drain_slot(self, slot: _Slot, events: list[BatchEvent]) -> int:
        """Empty one worker's result queue without blocking."""
        if slot.result_q is None:
            return 0
        drained = 0
        while True:
            try:
                msg = slot.result_q.get_nowait()
            except (queue.Empty, OSError):
                break
            drained += 1
            self._handle_message(msg, events)
        return drained

    def _drain(self, timeout: float, events: list[BatchEvent]) -> None:
        """Drain every worker's result queue, waiting up to ``timeout``.

        The queues are polled round-robin (they cannot be waited on
        jointly); once any queue yields a message the pass finishes the
        sweep and returns, otherwise it sleeps in ``poll_interval``
        steps until the deadline.
        """
        deadline = time.monotonic() + timeout
        while True:
            drained = sum(self._drain_slot(slot, events) for slot in self._slots)
            if drained:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(self.params.poll_interval, remaining))

    def _accept_batch(self, msg: PoolBatch, events: list[BatchEvent]) -> None:
        slot = self._slots[msg.worker] if 0 <= msg.worker < len(self._slots) else None
        state = self._tasks.get(msg.task_id)
        if state is None or msg.attempt != state.attempt:
            # Stale output of a superseded attempt — it must not count
            # as liveness either: only current-attempt batches (below)
            # can come from the slot's current incarnation.
            self._stale_batches += 1
            return
        if slot is not None:
            slot.heard = True
            slot.last_seen = time.monotonic()
            slot.batches += 1
        # Worker trace events ride on current-attempt batches only (a
        # retried attempt re-emits them), so ingesting here — after the
        # stale check — keeps the master's trace free of duplicates.
        if msg.events and self.obs.tracer.enabled:
            self.obs.tracer.ingest(msg.events)
        # Exactly-once across retries: skip the already-delivered prefix
        # (retries regenerate the identical neighbor sequence, so an
        # offset is a correct resume point).
        n = len(msg.neighbors)
        skip = min(max(state.delivered - state.attempt_seen, 0), n)
        fresh = msg.neighbors[skip:]
        state.attempt_seen += n
        state.delivered = max(state.delivered, state.attempt_seen)
        if msg.final:
            self._complete_task(msg, slot)
        if fresh or msg.final:
            events.append(
                BatchEvent(
                    task_id=msg.task_id,
                    iteration=state.task.iteration,
                    neighbors=fresh,
                    final=msg.final,
                    worker=msg.worker,
                    rng_state=msg.rng_state,
                    cache_delta=msg.cache_delta,
                )
            )

    def _complete_task(self, msg: PoolBatch, slot: _Slot | None) -> None:
        state = self._tasks.pop(msg.task_id)
        self._tasks_completed += 1
        self._latencies.append(time.monotonic() - state.submitted_at)
        if slot is not None:
            slot.tasks_done += 1
            if slot.busy is not None and slot.busy.task_id == msg.task_id:
                slot.busy = None

    def _police(self, events: list[BatchEvent]) -> None:
        now = time.monotonic()
        p = self.params
        for slot in self._slots:
            if not slot.alive:
                continue
            dead = not slot.process.is_alive()
            hung = False
            if not dead and slot.busy is not None:
                over_deadline = (
                    p.task_deadline is not None
                    and now - slot.dispatched_at > p.task_deadline
                )
                # Silence only counts once this incarnation has been
                # heard from: a freshly (re)spawned worker legitimately
                # spends boot time (interpreter + imports) before its
                # first heartbeat, and a worker wedged *during* boot is
                # still caught by the task deadline or is_alive().
                silent = slot.heard and now - slot.last_seen > p.heartbeat_timeout
                hung = over_deadline or silent
            if dead or hung:
                self._fail_slot(slot, "crash" if dead else "straggler", events)

    def _fail_slot(self, slot: _Slot, reason: str, events: list[BatchEvent]) -> None:
        proc = slot.process
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn process
                proc.kill()
                proc.join(timeout=1.0)
        # Salvage whatever the worker managed to send before dying —
        # anything still unread after this is regenerated by the retry.
        self._drain_slot(slot, events)
        for q in (slot.task_q, slot.result_q):
            # Abandon both queues: the task queue may hold an
            # undelivered task copy that must not reach the replacement
            # worker, and the result queue's write end may be corrupted
            # by the death.
            if q is not None:
                q.close()
                q.cancel_join_thread()
        slot.task_q = None
        slot.result_q = None
        slot.alive = False
        if reason == "crash":
            slot.crashes += 1
            self._crashes += 1
        else:
            slot.stragglers += 1
            self._stragglers += 1

        held = slot.busy
        slot.busy = None
        if held is not None:
            self._retry_task(held.task_id, events)

        if self._respawns_used < self.params.respawn_cap:
            self._respawns_used += 1
            slot.respawns += 1
            self._spawn(slot)
        elif self._alive_count() == 0 and not self.degraded:
            self.degraded = True
            # The pool has collapsed: every queued task now runs on the
            # master so the search still completes.
            while self._pending:
                self._run_locally(self._pending.popleft(), events)

    def _retry_task(self, task_id: int, events: list[BatchEvent]) -> None:
        state = self._tasks.get(task_id)
        if state is None:  # completed just before the failure was seen
            return
        state.attempt += 1
        state.attempt_seen = 0
        if state.attempt > self.params.max_retries:
            self._master_fallback_tasks += 1
            self._run_locally(task_id, events)
            return
        self._retries += 1
        backoff = min(
            self.params.backoff_base * (2.0 ** (state.attempt - 1)),
            self.params.backoff_cap,
        )
        state.ready_at = time.monotonic() + backoff
        self._pending.append(task_id)
        self._max_backlog = max(self._max_backlog, len(self._pending))

    def _run_locally(self, task_id: int, events: list[BatchEvent]) -> None:
        """Execute one task on the master (degradation / retry-exhaustion)."""
        state = self._tasks.get(task_id)
        if state is None:
            return
        if self._local_evaluator is None:
            self._local_evaluator = Evaluator(self.instance)
            self._local_registry = default_registry()
        task = replace(state.task, attempt=state.attempt)
        for batch in execute_task(
            self.instance, self._local_evaluator, self._local_registry, task, -1
        ):
            self._accept_batch(batch, events)

    # -- observability -------------------------------------------------
    def report(self) -> dict:
        """The structured counter report (``TSMOResult.extra["pool"]``)."""
        latencies = sorted(self._latencies)

        def quantile(q: float) -> float | None:
            if not latencies:
                return None
            return latencies[min(int(q * len(latencies)), len(latencies) - 1)]

        plan = self.fault_plan
        return {
            "n_workers": self.n_workers,
            "degraded": self.degraded,
            "crashes": self._crashes,
            "stragglers": self._stragglers,
            "respawns": self._respawns_used,
            "retries": self._retries,
            "master_fallback_tasks": self._master_fallback_tasks,
            "stale_batches": self._stale_batches,
            "heartbeats": self._heartbeats,
            "tasks_completed": self._tasks_completed,
            "max_backlog": self._max_backlog,
            "latency": {
                "p50": quantile(0.50),
                "p90": quantile(0.90),
                "max": latencies[-1] if latencies else None,
            },
            "per_worker": [
                {
                    "slot": s.index,
                    "tasks": s.tasks_done,
                    "batches": s.batches,
                    "crashes": s.crashes,
                    "stragglers": s.stragglers,
                    "respawns": s.respawns,
                }
                for s in self._slots
            ],
            "faults_planned": {
                "kills": len(plan.kills) if plan else 0,
                "delays": len(plan.delays) if plan else 0,
            },
        }
