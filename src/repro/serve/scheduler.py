"""The multi-tenant solve scheduler: one pool, many jobs, fair shares.

:class:`SolveScheduler` multiplexes any number of concurrent solve
jobs onto **one** shared :class:`~repro.parallel.pool.WorkerPool`.
The scheduler's constructor instance is only the *default*: a
:class:`~repro.serve.job.JobSpec` may carry its own instance, which
rides the ledger in wire form and the task path as a shared-memory
ref (one refcounted segment per distinct instance content, unlinked
when the last referencing job reaches a terminal state — see
:class:`~repro.parallel.shm.SharedInstanceStore`).  The design is
built around one invariant:

    *only the pump touches the pool.*

The pool is not thread-safe, so every pool call — dispatch, poll,
cancel — happens inside the single :meth:`_pump` coroutine; the
blocking ``pool.poll`` runs via ``asyncio.to_thread`` so the event
loop stays live for submissions.  Client-facing methods
(:meth:`submit`, :meth:`cancel`) only mutate scheduler state; the pump
applies their effects between polls.

Scheduling is three layered decisions, made every pump cycle:

* **admission** — :meth:`submit` bounds the wait queue
  (``max_queued``): overload is *rejected* loudly with
  :class:`~repro.errors.AdmissionError`, never silently dropped.
  Admission into the running set (``max_active``) pops the bounded
  queue highest-priority-first, FIFO within a priority level.
* **fairness** — a weighted :class:`DeficitRoundRobin` over *tenants*
  arbitrates which ready job dispatches its next iteration; the charge
  is the iteration's neighbor count, so tenants receive pool work in
  proportion to their weights regardless of how many jobs each has
  in flight.
* **flow control** — dispatch stops once the pool backlog reaches
  ``max_inflight`` tasks, so the fairness decision is re-made at every
  slot rather than buried in a deep FIFO queue.

Exactly-once per job rides on the pool's own machinery: every task is
tagged with its job id, retries re-seed deterministically, and the
delivered-prefix offsets guarantee no neighbor is lost or duplicated —
the service adds nothing but the tag.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time

from dataclasses import dataclass

from repro.errors import (
    AdmissionError,
    JobCancelled,
    JobDeadlineExceeded,
    SearchInterrupted,
    ServeError,
    WorkerPoolError,
    WrongInstanceError,
)
from repro.obs import NULL_OBS, Obs
from repro.obs.stream import (
    DEFAULT_BUFFER,
    TERMINAL_JOB_STATES,
    EventBus,
    is_terminal_job_event,
)
from repro.obs.tailserv import TailServer
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedInstanceStore, instance_fingerprint
from repro.persistence import CheckpointPlan
from repro.serve.job import Job, JobSpec, JobState
from repro.serve.ledger import LEDGER_FILENAME, JobLedger

__all__ = ["DeficitRoundRobin", "ServeParams", "SolveScheduler"]

#: histogram buckets for job latency / queue-wait observations (seconds).
_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: job_state values that end a tail stream (shared with the remote
#: tail server so both views end on the same event).
_TERMINAL_STATES = TERMINAL_JOB_STATES


@dataclass(frozen=True, slots=True)
class ServeParams:
    """Knobs of the solve service.

    ``quantum`` is the deficit round-robin credit (in neighbors) a
    weight-1.0 tenant accrues per replenishment round; larger values
    trade fairness granularity for fewer arbitration decisions.
    ``max_inflight`` bounds the pool backlog the dispatcher maintains
    (default ``2 * n_workers``: enough to keep every worker busy while
    the next fairness decision is being made).  ``snapshot_interval``
    is the cadence (seconds) of live ``metrics_snapshot`` events on the
    telemetry bus.
    """

    max_active: int = 64
    max_queued: int = 128
    pump_interval: float = 0.02
    quantum: float = 32.0
    max_inflight: int | None = None
    snapshot_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ServeError("max_active must be >= 1")
        if self.max_queued < 0:
            raise ServeError("max_queued must be >= 0")
        if self.pump_interval <= 0:
            raise ServeError("pump_interval must be positive")
        if self.quantum <= 0:
            raise ServeError("quantum must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ServeError("max_inflight must be >= 1")
        if self.snapshot_interval <= 0:
            raise ServeError("snapshot_interval must be positive")


class DeficitRoundRobin:
    """Weighted deficit round-robin over tenants (pure, deterministic).

    Each tenant holds a *deficit* (spendable credit).  A replenishment
    round grants every backlogged tenant ``quantum * weight`` credit;
    serving a tenant charges the served work's cost.  :meth:`pick`
    collapses the round loop analytically: it computes how many whole
    rounds each backlogged tenant needs before it can afford its next
    item, grants that many rounds to all of them at once, and serves
    the first affordable tenant in rotation order — O(tenants) per
    decision, bit-for-bit reproducible, and long-run service shares
    proportional to weights.

    Idle tenants forfeit accumulated credit (the classic DRR rule):
    fairness divides the pool among tenants that *want* work now, and
    a tenant returning from idle must not burst ahead on stale credit.
    """

    def __init__(self, quantum: float = 32.0) -> None:
        if quantum <= 0:
            raise ServeError("quantum must be positive")
        self.quantum = float(quantum)
        self._deficit: dict[str, float] = {}
        self._weight: dict[str, float] = {}
        self._order: list[str] = []
        self._cursor = 0

    def ensure(self, tenant: str, weight: float = 1.0) -> None:
        """Register a tenant (idempotent; first registration wins the
        rotation position, :meth:`set_weight` adjusts later)."""
        if tenant not in self._weight:
            self._order.append(tenant)
            self._deficit[tenant] = 0.0
            self._weight[tenant] = float(weight)

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServeError("tenant weight must be positive")
        self.ensure(tenant, weight)
        self._weight[tenant] = float(weight)

    def deficits(self) -> dict[str, float]:
        """Per-tenant spendable credit, in rotation order (diagnostic)."""
        return {tenant: self._deficit[tenant] for tenant in self._order}

    def pick(self, costs: dict[str, float]) -> str | None:
        """Choose which backlogged tenant serves next.

        ``costs`` maps each tenant with ready work to the cost of its
        next item; the winner's deficit is charged.  Returns ``None``
        only for an empty ``costs``.
        """
        if not costs:
            return None
        for tenant in costs:
            self.ensure(tenant)
        # Idle tenants lose their savings.
        for tenant in self._order:
            if tenant not in costs:
                self._deficit[tenant] = 0.0
        # Rotation order starting at the cursor.
        n = len(self._order)
        rotation = [
            self._order[(self._cursor + i) % n]
            for i in range(n)
            if self._order[(self._cursor + i) % n] in costs
        ]
        rounds = {
            tenant: max(
                0,
                math.ceil(
                    (costs[tenant] - self._deficit[tenant])
                    / (self.quantum * self._weight[tenant])
                ),
            )
            for tenant in rotation
        }
        need = min(rounds.values())
        winner = next(t for t in rotation if rounds[t] == need)
        if need:
            for tenant in rotation:
                self._deficit[tenant] += need * self.quantum * self._weight[tenant]
        self._deficit[winner] -= costs[winner]
        self._cursor = (self._order.index(winner) + 1) % n
        return winner

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DeficitRoundRobin(quantum={self.quantum}, tenants={self._order})"


class SolveScheduler:
    """Multi-tenant solve service over one shared worker pool.

    Use as an async context manager (or call :meth:`start` /
    :meth:`close` explicitly)::

        async with SolveScheduler(instance, n_workers=2) as scheduler:
            job = scheduler.submit(JobSpec(job_id="a", seed=7))
            result = await job.wait()

    ``checkpoint_dir`` enables per-job snapshots: each job writes
    ``serve_<job>.ckpt`` on its ``checkpoint_every`` cadence, and a job
    resubmitted with ``resume=True`` — to this scheduler or a brand-new
    one after a crash — continues from its snapshot bit-identically.

    With a checkpoint directory the scheduler is also *supervised*:
    every accepted job is journaled to a durable ledger
    (``serve_ledger.jsonl``), so a scheduler constructed over the same
    directory after a crash re-admits every unfinished job
    automatically (``recover=False`` opts out).  Jobs carry per-attempt
    fault budgets (``max_retries`` / ``deadline_s`` on
    :class:`~repro.serve.job.JobSpec`): a failed or overrunning attempt
    re-queues with exponential backoff and resumes from the latest
    checkpoint rather than scratch.  When the running set is full, a
    strictly higher-priority arrival preempts the lowest-priority
    running job to its checkpoint and resumes it later.
    """

    def __init__(
        self,
        instance,
        *,
        n_workers: int = 2,
        params: ServeParams | None = None,
        pool_params=None,
        tenant_weights: dict[str, float] | None = None,
        checkpoint_dir=None,
        checkpoint_every: int | None = None,
        obs=NULL_OBS,
        fault_plan=None,
        recover: bool = True,
        chaos=None,
        tail_port: int | None = None,
        tail_host: str = "127.0.0.1",
    ) -> None:
        if n_workers < 1:
            raise ServeError("need at least one worker process")
        self.instance = instance
        self.n_workers = n_workers
        self.params = params or ServeParams()
        self.pool_params = pool_params
        self.fault_plan = fault_plan
        # The telemetry plane needs an enabled tracer to have anything
        # to stream, so a scheduler handed the null bundle builds its
        # own: from the environment when REPRO_TRACE_DIR/REPRO_OBS ask
        # for a sink, else a plain in-memory bundle (nothing written to
        # disk).  Still pure observation: the engines stay
        # uninstrumented and bit-identity against the sequential oracle
        # is guarded by tests either way.
        self._owns_obs = False
        if obs is NULL_OBS:
            obs = Obs.from_env(span="serve")
            if not obs.enabled:
                obs = Obs(span="serve")
            self._owns_obs = True
        self.obs = obs
        #: live event fan-out behind :meth:`tail` / :meth:`tail_all`.
        self.bus = EventBus()
        self._bus_attached = False
        self._last_snapshot_at: float | None = None
        self._prev_counters: dict[str, float] = {}
        #: latest ``metrics_snapshot`` payload (``None`` until the
        #: first snapshot interval elapses) — the ``--watch`` view's
        #: pull-side fallback.
        self.last_snapshot: dict | None = None
        self._weights = dict(tenant_weights or {})
        self._plan = (
            CheckpointPlan(checkpoint_dir, every=checkpoint_every)
            if checkpoint_dir is not None
            else None
        )
        # The durable job ledger lives next to the checkpoints: a
        # scheduler without a checkpoint directory has nowhere to
        # recover *to*, so it runs unsupervised (best effort) exactly
        # as before.
        if self._plan is not None:
            self._plan.directory.mkdir(parents=True, exist_ok=True)
            self._ledger = JobLedger(self._plan.directory / LEDGER_FILENAME)
        else:
            self._ledger = None
        self._recover = recover
        self._recovered_from_ledger = False
        self._chaos = chaos
        self._pump_cycles = 0
        self._drr = DeficitRoundRobin(self.params.quantum)
        for tenant, weight in self._weights.items():
            self._drr.set_weight(tenant, weight)
        self._jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, Job]] = []
        self._active: dict[str, Job] = {}
        self._seq = 0
        #: shared-memory segments of per-job instances, refcounted by
        #: job id; segments die with their last referencing job.
        self._store = SharedInstanceStore()
        #: content fingerprint of the constructor (default) instance,
        #: computed lazily — submitting only default-instance jobs with
        #: no ledger pays the hash exactly once.
        self._default_fp: str | None = None
        #: remote tail server (created in start() when tail_port is set;
        #: tail_port=0 binds an ephemeral port, see tail_address()).
        self._tail_port = tail_port
        self._tail_host = tail_host
        self._tail_server: TailServer | None = None
        self._tail_task: asyncio.Task | None = None
        self._pool: WorkerPool | None = None
        self._pump_task: asyncio.Task | None = None
        self._stopping = False
        self._closed = False
        self._max_inflight = self.params.max_inflight or 2 * n_workers
        # Service counters (always on; obs mirrors them when enabled).
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.cancelled = 0
        self.failed = 0
        self.peak_active = 0
        self.job_retries = 0
        self.preemptions = 0
        self.recovered_jobs = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and the pump (needs a running loop).

        Any failure on this path — pool spawn, a corrupt ledger raising
        during recovery — tears down whatever was already built (pool
        processes, shared-memory segments, bus listener) before
        re-raising: a constructor-path exception must never leak a
        ``/dev/shm`` segment that no ``close()`` will ever reach.
        """
        if self._closed:
            raise ServeError("cannot restart a closed scheduler")
        try:
            if self._pool is None:
                self._pool = WorkerPool(
                    self.instance,
                    self.n_workers,
                    params=self.pool_params,
                    fault_plan=self.fault_plan,
                    obs=self.obs,
                )
            if not self._bus_attached:
                # Every tracer event — scheduler-emitted lifecycle events
                # and worker events folded in by the pool's poll thread —
                # fans out to tail subscribers.  publish() never blocks,
                # so the pump is never back-pressured by a slow consumer.
                self.obs.tracer.add_listener(self.bus.publish)
                self._bus_attached = True
            if (
                self._recover
                and not self._recovered_from_ledger
                and self._ledger is not None
                and self._ledger.exists()
            ):
                self._recovered_from_ledger = True
                self._recover_from_ledger()
        except BaseException:
            self._store.close()
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self._teardown_stream()
            self._closed = True
            raise
        if self._tail_port is not None and self._tail_server is None:
            self._tail_server = TailServer(
                self.bus, host=self._tail_host, port=self._tail_port
            )
            self._tail_task = asyncio.get_running_loop().create_task(
                self._tail_server.start(), name="repro-serve-tailserv"
            )
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="repro-serve-pump"
            )

    async def tail_address(self) -> tuple[str, int]:
        """The remote tail server's bound ``(host, port)``.

        Useful with ``tail_port=0`` (ephemeral): awaits the listener
        actually binding before reporting where it landed.
        """
        if self._tail_server is None:
            raise ServeError("scheduler was not started with a tail_port")
        return await self._tail_server.address()

    def _recover_from_ledger(self) -> None:
        """Re-admit every job the ledger says was accepted but never
        finished (the supervised-recovery half of the failure story).

        Each open episode's ``accepted`` record carries the full wire
        form of its :class:`~repro.serve.job.JobSpec`; the job is
        rebuilt with ``resume=True`` so an attempt that reached a
        checkpoint continues bit-identically from its snapshot and one
        that never snapshotted restarts fresh.  Jobs the client already
        resubmitted by id keep the client's handle — recovery never
        shadows a live submission.
        """
        loop = asyncio.get_running_loop()
        for job_id, entry in self._ledger.replay().items():
            if job_id in self._jobs:
                continue
            spec = JobSpec.from_wire(entry["spec"], resume=True)
            job = Job(spec, loop.create_future(), now=time.monotonic())
            # Identity check before re-admission: the `accepted` entry
            # recorded the fingerprint of the instance this job was
            # solving.  A job with its own instance payload rebuilds it
            # from the ledger; a default-instance job gets whatever
            # instance *this* scheduler was constructed over — which
            # after a restart may be a different problem entirely.  On
            # mismatch the job fails loudly (wrong_instance waypoint +
            # terminal failed), never resumes silently.
            effective = spec.instance if spec.instance is not None else self.instance
            actual_fp = instance_fingerprint(effective)
            recorded_fp = entry.get("instance_fp")
            if recorded_fp is not None and recorded_fp != actual_fp:
                job._admit_seq = self._seq
                self._seq += 1
                self._jobs[job_id] = job
                self.submitted += 1
                exc = WrongInstanceError(
                    f"job {job_id!r} was accepted for instance fingerprint "
                    f"{recorded_fp[:12]}…, but the instance available at "
                    f"recovery has fingerprint {actual_fp[:12]}…; refusing "
                    "to resume it against the wrong problem"
                )
                self._record(job, "wrong_instance", recorded=recorded_fp, actual=actual_fp)
                self._note_wrong_instance(job, exc)
                job._fail(exc)
                self.failed += 1
                self._record(job, "failed", cause=repr(exc), attempts=job.attempts + 1)
                if self.obs.enabled:
                    self.obs.metrics.inc("serve.jobs_failed")
                    self._emit_state(job_id, JobState.FAILED)
                continue
            job._instance_fp = actual_fp
            if spec.instance is not None:
                job._instance_ref = self._store.acquire(
                    spec.instance, job_id, fingerprint=actual_fp
                )
            job.recovered = True
            job._admit_seq = self._seq
            self._jobs[job_id] = job
            heapq.heappush(self._heap, (-spec.priority, self._seq, job))
            self._seq += 1
            self.submitted += 1
            self.recovered_jobs += 1
            self._ledger.record("recovered", job_id)
            if self.obs.enabled:
                self.obs.metrics.inc("serve.recovered_jobs")
                tracer = self.obs.tracer
                if tracer.enabled:
                    tracer.emit(
                        "job_recovered",
                        span=f"job-{job_id}",
                        job=job_id,
                        state=JobState.QUEUED,
                        trace=job_id,
                    )
                self._emit_state(job_id, JobState.QUEUED)

    async def abort(self) -> None:
        """Tear the service down with **no** terminal bookkeeping.

        The in-process stand-in for SIGKILL that the chaos harness
        uses: the pump stops, the worker processes are shut down, but
        unfinished jobs are neither failed nor journaled — their ledger
        episodes stay open, exactly as after a real crash, so a new
        scheduler on the same checkpoint directory recovers every one
        of them.  Client futures are cancelled; the work itself is not
        lost (it continues on the recovered scheduler).
        """
        if self._closed:
            return
        self._stopping = True
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        if self._pool is not None:
            self._pool.close()
        for job in self._jobs.values():
            if not job._future.done():
                job._future.cancel()
        # A SIGKILL stand-in still cleans up *this* process's segments:
        # a real kill leans on the resource tracker; in-process abort
        # must not leak /dev/shm entries into the surviving interpreter.
        self._store.close()
        await self._stop_tail_server()
        self._teardown_stream()
        self._closed = True

    async def __aenter__(self) -> "SolveScheduler":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, *, drain: bool = False) -> None:
        """Stop the service.

        ``drain=True`` first waits for every queued and running job to
        reach a terminal state; ``drain=False`` (the default) stops
        after the current poll — unfinished jobs fail with a
        :class:`~repro.errors.ServeError` telling the caller to
        resubmit with ``resume=True``, and their checkpoint files stay
        on disk.
        """
        if self._closed:
            return
        if drain and self._pump_task is not None:
            pending = [job._future for job in self._jobs.values()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._stopping = True
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        for job in self._jobs.values():
            if not job._future.done():
                job._fail(
                    ServeError(
                        f"scheduler closed before job {job.job_id!r} finished "
                        f"({job.evaluations} evaluations served); resubmit "
                        "with resume=True to continue from its checkpoint"
                    )
                )
                # A deliberate close is a terminal decision, not a crash:
                # closing the episode keeps the ledger conserved and stops
                # the next scheduler from resurrecting abandoned work.
                self._record(job, "failed", cause="scheduler closed", attempts=job.attempts + 1)
        if self._pool is not None:
            self._pool.close()
        self._store.close()
        await self._stop_tail_server()
        self._teardown_stream()
        self._closed = True

    async def _stop_tail_server(self) -> None:
        if self._tail_task is not None:
            try:
                await self._tail_task
            except Exception:  # pragma: no cover - bind failure already surfaced
                pass
            self._tail_task = None
        if self._tail_server is not None:
            await self._tail_server.stop()

    def _teardown_stream(self) -> None:
        if self._bus_attached:
            self.obs.tracer.remove_listener(self.bus.publish)
            self._bus_attached = False
        self.bus.close()
        if self._owns_obs:
            self.obs.close()  # flush the auto-created bundle's sink, if any

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one job (or refuse it, loudly).

        Raises :class:`~repro.errors.AdmissionError` when the bounded
        wait queue is full or the scheduler is shutting down — the
        request never entered any queue, so the client can back off and
        resubmit.  Must run inside the scheduler's event loop.
        """
        if self._closed or self._stopping:
            raise AdmissionError(
                f"scheduler is shut down; job {spec.job_id!r} was not accepted"
            )
        if spec.job_id in self._jobs:
            raise ServeError(f"duplicate job id {spec.job_id!r}")
        if spec.resume and self._plan is None:
            raise ServeError(
                f"job {spec.job_id!r} requests resume but the scheduler has "
                "no checkpoint directory"
            )
        if len(self._heap) >= self.params.max_queued:
            self.rejected += 1
            if self.obs.enabled:
                self.obs.metrics.inc("serve.admission_rejects")
                self._emit_state(spec.job_id, "rejected")
            raise AdmissionError(
                f"admission queue full ({self.params.max_queued} jobs "
                f"waiting); job {spec.job_id!r} rejected — back off and "
                "resubmit"
            )
        future = asyncio.get_running_loop().create_future()
        job = Job(spec, future, now=time.monotonic())
        # Content identity first: the fingerprint rides the ledger (so
        # recovery can verify it), the checkpoint (via Job._build_state)
        # and the dedup key of the instance store.
        if spec.instance is not None:
            fp = instance_fingerprint(spec.instance)
            job._instance_ref = self._store.acquire(
                spec.instance, spec.job_id, fingerprint=fp
            )
        else:
            fp = self._default_fingerprint()
        job._instance_fp = fp
        # Durable accept *before* the job becomes visible: once the
        # ledger line is fsynced, no crash can lose this job.
        if self._ledger is not None:
            try:
                self._ledger.record(
                    "accepted",
                    spec.job_id,
                    spec=spec.to_wire(),
                    tenant=spec.tenant,
                    priority=spec.priority,
                    instance_fp=fp,
                )
            except BaseException:
                # The job never became visible; its segment ref must
                # not outlive this failed submit.
                if job._instance_ref is not None:
                    self._store.release(fp, spec.job_id)
                raise
        job._admit_seq = self._seq
        self._jobs[spec.job_id] = job
        heapq.heappush(self._heap, (-spec.priority, self._seq, job))
        self._seq += 1
        self.submitted += 1
        if self.obs.enabled:
            self._emit_state(spec.job_id, JobState.QUEUED)
        return job

    def _default_fingerprint(self) -> str:
        if self._default_fp is None:
            self._default_fp = instance_fingerprint(self.instance)
        return self._default_fp

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns False if already terminal.

        Queued jobs cancel immediately; running jobs are cancelled by
        the pump, which drops their pending pool tasks and discards the
        remaining batches of in-flight ones (graceful drain — workers
        are never killed, other jobs keep their cached state).
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        if job.done():
            return False
        if job.state in (JobState.QUEUED, JobState.PREEMPTED):
            # Not on the pool (a preempted job's tasks were already
            # cancelled at suspension), so cancel immediately; the
            # job's stale heap entry is skipped at admission.
            self._finish_cancelled(job)
        else:
            job.cancel_requested = True
        return True

    def get_job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def report(self) -> dict:
        """Service counters plus the pool's own report (always readable,
        including after :meth:`close`)."""
        queued = sum(
            1 for j in self._jobs.values() if j.state == JobState.QUEUED
        )
        out = {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "active": len(self._active),
            "queued": queued,
            "peak_active": self.peak_active,
            "job_retries": self.job_retries,
            "preemptions": self.preemptions,
            "recovered_jobs": self.recovered_jobs,
            "instance_segments": self._store.segment_count(),
        }
        if self._tail_server is not None:
            out["tailserv"] = self._tail_server.report()
        if self._pool is not None:
            out["pool"] = self._pool.report()
        return out

    async def tail(self, job_id: str, *, maxsize: int = DEFAULT_BUFFER):
        """Stream one job's events live, ending at its terminal state.

        An async iterator over the job's ``job_state`` /
        ``job_progress`` / ``checkpoint`` / worker events as they
        happen (everything carrying the job's id or trace).  The
        stream ends after yielding the terminal ``job_state``
        (done/cancelled/failed); tailing a job that already finished
        yields nothing.  A subscriber that falls more than ``maxsize``
        events behind loses the oldest buffered ones —
        :attr:`~repro.obs.stream.Subscription.dropped` on the bus
        counts them — and never slows the pump down.
        """
        job = self.get_job(job_id)
        sub = self.bus.subscribe(
            predicate=lambda e: (
                e.get("job") == job_id or e.get("trace") == job_id
            ),
            maxsize=maxsize,
        )
        # No await between the done() check and iteration: the pump
        # runs on this same loop, so the terminal event either already
        # happened (stream stays empty) or will reach the subscription.
        if job.done():
            sub.close()
            return
        try:
            async for event in sub:
                yield event
                if is_terminal_job_event(event):
                    return
        finally:
            sub.close()

    async def tail_all(self, *, maxsize: int = DEFAULT_BUFFER):
        """Stream every tracer event (all jobs, snapshots, workers).

        Ends when the scheduler closes; same drop-oldest back-pressure
        policy as :meth:`tail`.
        """
        sub = self.bus.subscribe(maxsize=maxsize)
        try:
            async for event in sub:
                yield event
        finally:
            sub.close()

    # ------------------------------------------------------------------
    # The pump: the single owner of every pool interaction
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        pool = self._pool
        interval = self.params.pump_interval
        try:
            while True:
                if self._stopping:
                    return
                self._pump_cycles += 1
                if self._chaos is not None:
                    stall = self._chaos.stall_for(self._pump_cycles)
                    if stall:
                        await asyncio.sleep(stall)
                self._apply_cancellations()
                self._apply_deadlines()
                self._admit()
                self._dispatch()
                self._update_gauges()
                self._maybe_snapshot()
                if pool.backlog():
                    events = await asyncio.to_thread(pool.poll, interval)
                    self._route(events)
                else:
                    await asyncio.sleep(interval)
        except Exception as exc:  # noqa: BLE001 - the pump must not die silently
            wrapped = ServeError(f"solve-service pump failed: {exc}")
            wrapped.__cause__ = exc
            for job in list(self._jobs.values()):
                if not job._future.done():
                    job._fail(wrapped)
                    self.failed += 1
                    self._record(
                        job, "failed", cause=repr(wrapped), attempts=job.attempts + 1
                    )
            self._active.clear()

    def _route(self, events) -> None:
        for event in events:
            job = self._active.get(event.tag)
            if job is None or job.cancel_requested:
                continue
            try:
                job._on_event(event)
            except Exception as exc:  # CrashInjected, SearchInterrupted, ...
                self._fail_or_retry(job, exc)
        for job in list(self._active.values()):
            if job._finished and not job._pending_finals:
                self._finish_job(job)

    def _admit(self) -> None:
        now = time.monotonic()
        deferred: list[tuple[int, int, Job]] = []
        while self._heap:
            entry = self._heap[0]
            job = entry[2]
            if job.state not in (JobState.QUEUED, JobState.PREEMPTED):
                heapq.heappop(self._heap)
                continue  # cancelled/failed while waiting — stale entry
            if job.state == JobState.QUEUED and job.retry_at > now:
                # Backoff gate: the retry is queued but not yet due.
                deferred.append(heapq.heappop(self._heap))
                continue
            if len(self._active) >= self.params.max_active:
                victim = self._preemption_victim(job.spec.priority)
                if victim is None:
                    break
                self._preempt(victim)
                continue
            heapq.heappop(self._heap)
            if job.state == JobState.PREEMPTED:
                # Same engine object, untouched since suspension: the
                # resumed iteration replays the exact dispatch the
                # preemption aborted, so the trajectory stays
                # bit-identical to an uninterrupted run.
                job._resume_preempted()
                self._active[job.job_id] = job
                self.peak_active = max(self.peak_active, len(self._active))
                if self.obs.enabled:
                    self._emit_state(job.job_id, JobState.RUNNING)
                if job._finished and not job._pending_finals:
                    self._finish_job(job)  # preempted after its last iteration
                continue
            policy = self._policy_for(job)
            self._drr.ensure(job.tenant, self._weights.get(job.tenant, 1.0))
            effective = (
                job.spec.instance
                if job.spec.instance is not None
                else self.instance
            )
            try:
                job._start(effective, policy, self.obs)
            except Exception as exc:
                self._fail_or_retry(job, exc)
                continue
            if job.checkpoint_corrupt is not None:
                self._note_checkpoint_corrupt(job)
            self._active[job.job_id] = job
            self.peak_active = max(self.peak_active, len(self._active))
            if self.obs.enabled:
                self._emit_state(job.job_id, JobState.RUNNING)
            if job._finished:  # zero budget left (e.g. resumed past it)
                self._finish_job(job)
        for item in deferred:
            heapq.heappush(self._heap, item)

    def _policy_for(self, job: Job):
        """The checkpoint policy one attempt of ``job`` runs under.

        Retries and recovered jobs always resume (continuing from the
        latest snapshot instead of scratch is the whole point of the
        retry budget); chaos-injected crashes fire on the first attempt
        only, so the retry that follows proves the recovery path.
        """
        if self._plan is None:
            return None
        spec = job.spec
        crash_after = None
        if (
            self._chaos is not None
            and job.attempts == 0
            and not job.recovered
        ):
            crash_after = self._chaos.crash_after_for(job.job_id)
        resume = spec.resume or job.attempts > 0 or job.recovered
        if (
            spec.checkpoint_every is None
            and not resume
            and self._plan.every is None
            and crash_after is None
        ):
            return None
        return self._plan.policy_for_job(
            job.job_id,
            every=spec.checkpoint_every,
            resume=resume,
            crash_after=crash_after,
        )

    def _note_checkpoint_corrupt(self, job: Job) -> None:
        """A resume found a corrupt snapshot: loud, journaled, non-fatal
        (the attempt restarted fresh; see ``Job._start``)."""
        self._record(job, "checkpoint_corrupt", error=job.checkpoint_corrupt)
        if self.obs.enabled:
            self.obs.metrics.inc("serve.checkpoint_corrupt")
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.emit(
                    "job_checkpoint_corrupt",
                    span=f"job-{job.job_id}",
                    job=job.job_id,
                    error=job.checkpoint_corrupt,
                    trace=job.job_id,
                )

    def _note_wrong_instance(self, job: Job, exc: BaseException) -> None:
        """A job was about to run against the wrong instance: loud,
        journaled, and terminal (unlike a corrupt checkpoint there is
        no safe fresh-restart — the problem itself is ambiguous)."""
        if self.obs.enabled:
            self.obs.metrics.inc("serve.wrong_instance")
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.emit(
                    "job_wrong_instance",
                    span=f"job-{job.job_id}",
                    job=job.job_id,
                    error=str(exc),
                    trace=job.job_id,
                )

    def _preemption_victim(self, priority: int) -> Job | None:
        """The running job a ``priority`` arrival may displace: the
        lowest-priority active job (latest-admitted on ties), and only
        if its priority is *strictly* lower — equal-priority work is
        never churned."""
        victim: Job | None = None
        victim_key: tuple[int, int] | None = None
        for job in self._active.values():
            if job.cancel_requested or job.state != JobState.RUNNING:
                continue
            key = (job.spec.priority, -job._admit_seq)
            if victim_key is None or key < victim_key:
                victim, victim_key = job, key
        if victim is None or victim.spec.priority >= priority:
            return None
        return victim

    def _preempt(self, victim: Job) -> None:
        self._pool.cancel_tag(victim.job_id)
        del self._active[victim.job_id]
        victim._suspend()
        heapq.heappush(
            self._heap, (-victim.spec.priority, victim._admit_seq, victim)
        )
        self.preemptions += 1
        self._record(victim, "preempted", evaluations=victim.evaluations)
        if self.obs.enabled:
            self.obs.metrics.inc("serve.preemptions")
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.emit(
                    "job_preempted",
                    span=f"job-{victim.job_id}",
                    job=victim.job_id,
                    evaluations=victim.evaluations,
                    trace=victim.job_id,
                )
            self._emit_state(victim.job_id, JobState.PREEMPTED)

    def _dispatch(self) -> None:
        pool = self._pool
        while pool.backlog() < self._max_inflight:
            ready: dict[str, Job] = {}
            for job in self._active.values():
                if job._ready and job.tenant not in ready:
                    ready[job.tenant] = job
            if not ready:
                return
            costs = {
                tenant: float(job._iteration_cost())
                for tenant, job in ready.items()
            }
            tenant = self._drr.pick(costs)
            job = ready[tenant]
            try:
                job._dispatch(pool)
            except Exception as exc:
                self._fail_or_retry(job, exc)

    def _apply_cancellations(self) -> None:
        for job in list(self._active.values()):
            if job.cancel_requested:
                self._pool.cancel_tag(job.job_id)
                del self._active[job.job_id]
                self._finish_cancelled(job)

    def _apply_deadlines(self) -> None:
        now = time.monotonic()
        for job in list(self._active.values()):
            deadline = job.spec.deadline_s
            if (
                deadline is not None
                and not job.cancel_requested
                and job.attempt_started_at is not None
                and now - job.attempt_started_at > deadline
            ):
                self._fail_or_retry(
                    job,
                    JobDeadlineExceeded(
                        f"job {job.job_id!r} attempt {job.attempts + 1} "
                        f"exceeded its {deadline}s deadline after "
                        f"{job.evaluations} evaluations"
                    ),
                )

    # ------------------------------------------------------------------
    # Terminal transitions (and the retry escape hatch before them)
    # ------------------------------------------------------------------
    def _record(self, job: Job, event: str, **fields) -> None:
        if self._ledger is not None:
            try:
                self._ledger.record(event, job.job_id, **fields)
            except OSError:  # pragma: no cover - disk loss at journal time
                # The job outcome must still reach the client; a
                # write-failed ledger only degrades recovery.
                pass

    def _fail_or_retry(self, job: Job, exc: BaseException) -> None:
        """Route one attempt's failure: burn a retry when the budget
        allows, otherwise make the failure terminal.

        Cancellation and admission refusals are never retried — they
        are decisions, not faults.  Wrong-instance resumes are not
        retried either: every retry would see the same mismatch.
        """
        retryable = not isinstance(
            exc,
            (AdmissionError, JobCancelled, SearchInterrupted, WrongInstanceError),
        )
        if retryable and job.attempts < job.spec.max_retries:
            self._retry_job(job, exc)
        else:
            self._fail_job(job, exc)

    def _retry_job(self, job: Job, exc: BaseException) -> None:
        self._active.pop(job.job_id, None)
        if self._pool is not None and not self._pool._closed:
            try:
                self._pool.cancel_tag(job.job_id)
            except WorkerPoolError:  # pragma: no cover - defensive
                pass
        job._reset_for_retry(time.monotonic())
        heapq.heappush(self._heap, (-job.spec.priority, job._admit_seq, job))
        self.job_retries += 1
        self._record(job, "retry", attempt=job.attempts, cause=repr(exc))
        if self.obs.enabled:
            self.obs.metrics.inc("serve.job_retries")
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.emit(
                    "job_retry",
                    span=f"job-{job.job_id}",
                    job=job.job_id,
                    attempt=job.attempts,
                    cause=type(exc).__name__,
                    trace=job.job_id,
                )
            self._emit_state(job.job_id, JobState.QUEUED)

    def _release_instance(self, job: Job) -> None:
        """Drop the job's refcount on its shared instance segment (the
        segment unlinks when the last referencing job goes terminal).
        No-op for default-instance jobs and under double release."""
        if job._instance_ref is not None and job._instance_fp is not None:
            self._store.release(job._instance_fp, job.job_id)
            job._instance_ref = None

    def _finish_job(self, job: Job) -> None:
        del self._active[job.job_id]
        job._finalize(self.n_workers)
        self._release_instance(job)
        self.completed += 1
        self._record(job, "done", evaluations=job.evaluations)
        if self.obs.enabled:
            m = self.obs.metrics
            m.inc("serve.jobs_completed")
            m.observe(
                "serve.job_latency_s",
                job.finished_at - job.submitted_at,
                buckets=_LATENCY_BUCKETS,
            )
            m.observe(
                "serve.job_queue_wait_s",
                job.started_at - job.submitted_at,
                buckets=_LATENCY_BUCKETS,
            )
            self._emit_state(job.job_id, JobState.DONE)

    def _finish_cancelled(self, job: Job) -> None:
        job._cancelled()
        self._release_instance(job)
        self.cancelled += 1
        self._record(job, "cancelled", evaluations=job.evaluations)
        if self.obs.enabled:
            self.obs.metrics.inc("serve.jobs_cancelled")
            self._emit_state(job.job_id, JobState.CANCELLED)

    def _fail_job(self, job: Job, exc: BaseException) -> None:
        self._active.pop(job.job_id, None)
        if self._pool is not None and not self._pool._closed:
            try:
                self._pool.cancel_tag(job.job_id)
            except WorkerPoolError:  # pragma: no cover - defensive
                pass
        if isinstance(exc, WrongInstanceError):
            # Journal the waypoint (checkpoint_corrupt-style) before the
            # terminal record, so the ledger names *why* this job died.
            self._record(
                job, "wrong_instance", error=str(exc), attempts=job.attempts + 1
            )
            self._note_wrong_instance(job, exc)
        job._fail(exc)
        self._release_instance(job)
        self.failed += 1
        self._record(job, "failed", cause=repr(exc), attempts=job.attempts + 1)
        if self.obs.enabled:
            self.obs.metrics.inc("serve.jobs_failed")
            self._emit_state(job.job_id, JobState.FAILED)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit_state(self, job_id: str, state: str) -> None:
        tracer = self.obs.tracer
        if tracer.enabled:
            # ``job-<id>`` is the root span of the job's trace: no
            # ``parent`` field, so the spans CLI anchors the tree here.
            tracer.emit(
                "job_state",
                span=f"job-{job_id}",
                job=job_id,
                state=state,
                trace=job_id,
            )

    def _update_gauges(self) -> None:
        if self.obs.enabled:
            m = self.obs.metrics
            m.gauge("serve.jobs_active", len(self._active))
            m.gauge(
                "serve.jobs_queued",
                sum(1 for j in self._jobs.values() if j.state == JobState.QUEUED),
            )
            m.gauge("serve.peak_active", self.peak_active)
            if self._pool is not None:
                m.gauge("serve.pool_backlog", self._pool.backlog())

    def _maybe_snapshot(self) -> None:
        """Publish a point-in-time metrics reading on the snapshot
        cadence: the live-telemetry heartbeat watchers and soak
        harnesses sample instead of waiting for the run to end."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return
        now = time.monotonic()
        if (
            self._last_snapshot_at is not None
            and now - self._last_snapshot_at < self.params.snapshot_interval
        ):
            return
        self._last_snapshot_at = now
        counters = {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "job_retries": self.job_retries,
            "preemptions": self.preemptions,
            "recovered_jobs": self.recovered_jobs,
        }
        deltas = {
            name: value - self._prev_counters.get(name, 0)
            for name, value in counters.items()
        }
        self._prev_counters = counters
        snapshot = {
            "jobs_active": len(self._active),
            "jobs_queued": sum(
                1 for j in self._jobs.values() if j.state == JobState.QUEUED
            ),
            "pool_backlog": self._pool.backlog() if self._pool is not None else 0,
            "deficits": self._drr.deficits(),
            "counters": counters,
            "deltas": deltas,
            "stream": {
                "published": self.bus.published,
                "dropped": self.bus.dropped(),
                "subscribers": self.bus.subscriber_count(),
            },
            "metrics": self.obs.metrics.snapshot(),
        }
        self.last_snapshot = snapshot
        tracer.emit("metrics_snapshot", snapshot=snapshot)
