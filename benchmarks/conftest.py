"""Shared helpers for the benchmark suite.

Each ``bench_tableN.py`` regenerates one of the paper's tables at the
configured scale (``REPRO_BENCH_SCALE`` scales it up to the full
protocol), times the regeneration under pytest-benchmark, prints the
paper-style table, and writes it to ``benchmarks/output/`` so the
artifact survives the pytest capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.config import BenchConfig

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """The experiment scale for this benchmark session."""
    return BenchConfig.from_env()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: Path, name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/output/."""
    print(f"\n{text}")
    (output_dir / f"{name}.txt").write_text(text, encoding="utf-8")
