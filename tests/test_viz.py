"""Tests for the SVG visualization helpers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.viz import front_svg, solution_svg, write_svg
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def solution():
    instance = generate_instance("C1", 25, seed=5)
    return i1_construct(instance, rng=np.random.default_rng(1))


class TestSolutionSVG:
    def test_valid_xml(self, solution):
        ET.fromstring(solution_svg(solution))

    def test_one_polyline_per_route(self, solution):
        svg = solution_svg(solution)
        assert svg.count("<polyline") == solution.n_routes

    def test_one_circle_per_customer(self, solution):
        svg = solution_svg(solution)
        assert svg.count("<circle") == solution.instance.n_customers

    def test_depot_marker(self, solution):
        assert "<rect" in solution_svg(solution)

    def test_custom_title_escaped(self, solution):
        svg = solution_svg(solution, title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in svg
        ET.fromstring(svg)


class TestFrontSVG:
    def test_valid_xml_and_labels(self):
        svg = front_svg(
            {"A": np.array([[1.0, 2.0], [2.0, 1.0]]), "B": np.array([[3.0, 3.0]])}
        )
        root = ET.fromstring(svg)
        assert root is not None
        assert svg.count("<circle") == 3
        assert ">A<" in svg and ">B<" in svg

    def test_empty_fronts(self):
        svg = front_svg({"empty": np.zeros((0, 2))})
        assert "no points" in svg

    def test_three_objective_columns(self):
        svg = front_svg(
            {"A": np.array([[10.0, 2.0, 0.5]])}, x_index=0, y_index=2, y_label="f3"
        )
        ET.fromstring(svg)
        assert "f3" in svg


class TestWriteSVG:
    def test_roundtrip(self, tmp_path, solution):
        path = write_svg(solution_svg(solution), tmp_path / "out.svg")
        assert path.exists()
        ET.fromstring(path.read_text())
