"""The multiobjective tabu search (TSMO) of the paper.

:mod:`repro.tabu.search` implements Algorithm 1 — the sequential TSMO —
on top of the three memories of §III.B (tabu list, medium-term
non-dominated memory, Pareto archive).  The engine is deliberately
factored so the parallel variants in :mod:`repro.parallel` reuse the
identical selection/update logic and differ only in *where* and *when*
neighborhoods are generated.
"""

from repro.tabu.memories import Memories
from repro.tabu.neighborhood import Neighbor, sample_neighborhood
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult, run_sequential_tsmo
from repro.tabu.tabulist import TabuList
from repro.tabu.trace import TrajectoryRecorder

__all__ = [
    "Memories",
    "Neighbor",
    "TSMOEngine",
    "TSMOParams",
    "TSMOResult",
    "TabuList",
    "TrajectoryRecorder",
    "run_sequential_tsmo",
    "sample_neighborhood",
]
