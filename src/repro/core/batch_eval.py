"""Vectorized batch neighborhood sampling and evaluation (the kernel).

The paper's unit of parallel work — draw a neighborhood of random
moves, score each one (§III.B) — is the dominant cost of every driver
even after delta evaluation: per move the sampler pays a numpy scalar
dispatch per random draw and the evaluator a Python loop over route
edits.  This module replaces both loops with array programs over a
compact summary of the parent solution:

* **descriptor emitters** — each operator's ``propose_batch`` maps a
  block of uniform doubles to ``(fields, valid)``: an ``(m, 4)``
  integer descriptor array (operator-specific layout, see the operator
  modules) plus the local-feasibility mask, evaluated with gathers over
  :class:`ParentArrays` instead of per-candidate Python;
* **batched evaluation** — the kernel builds each accepted move's
  edited route tuples, serves their :class:`~repro.core.routes.
  RouteStats` through the shared :class:`~repro.core.stats_cache.
  RouteStatsCache` (misses re-scanned in one vectorized sweep by
  :func:`batch_route_stats`), and assembles all objective vectors at
  once by scattering the per-route deltas into a ``(n_routes+1, S)``
  matrix and left-folding its rows — the same float-association as
  ``Solution.objectives``, so every objective is *bit-identical* to the
  scalar path;
* **bit-identity oracle** — the scalar :meth:`~repro.core.evaluation.
  Evaluator.evaluate_move` path stays available behind the
  ``REPRO_VECTOR_EVAL`` knob (on by default).  Move *sampling* is the
  same batched algorithm either way, so the knob toggles only who
  computes the objectives; trajectories must match bit-for-bit.

Fallback rules (all deterministic functions of the parent, never of
the knob):

* a registry containing any operator without a descriptor emitter
  (e.g. the non-paper ``SegmentExchange``) is not batch-supported —
  callers keep the legacy scalar loop on both knob settings;
* an operator whose ``batch_ready(pre)`` is false for this parent
  (say, 2-opt* on a single-route solution) is skipped without
  consuming RNG, exactly like its scalar ``propose`` returning
  ``None`` before the first draw;
* slots still unfilled after :data:`_MAX_ROUNDS` oversampling rounds
  fall back to scalar ``registry.draw_move`` (counted in the
  ``eval.scalar_fallbacks`` metric), and a ``None`` from that cap
  truncates the neighborhood exactly like the legacy sampler.

Known counter caveat: the kernel performs its cache lookups grouped by
operator kind rather than in slot order.  The multiset of looked-up
routes is identical to the scalar order, so hit/miss totals only ever
diverge when the cache is actively evicting *and* a simulated-time run
charges ``CostModel.miss_scan_cost > 0`` (it defaults to 0.0); cache
counters were already excluded from trajectory-identity guarantees by
the delta-evaluation PR.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.objectives import ObjectiveVector
from repro.core.operators.exchange import Exchange, ExchangeMove
from repro.core.operators.or_opt import SEGMENT_LENGTH, OrOpt, OrOptMove
from repro.core.operators.relocate import Relocate, RelocateMove
from repro.core.operators.two_opt import TwoOpt, TwoOptMove
from repro.core.operators.two_opt_star import TwoOptStar, TwoOptStarMove
from repro.core.routes import RouteStats, route_stats

__all__ = [
    "BatchResult",
    "ParentArrays",
    "batch_route_stats",
    "batch_supported",
    "sample_batch",
    "vector_eval_enabled",
]

#: operator-wheel spins per slot — every candidate redraws its kind,
#: exactly the scalar path's "redraw on failure" semantics, with all
#: retries materialized up front so each operator's emitter runs
#: exactly once per neighborhood (per-call numpy dispatch is the
#: kernel's cost floor, so the retry structure must not multiply it).
#: Even on tight-window instances where two of the five operators
#: accept ~1% of their draws the mean per-candidate failure rate is
#: ~0.75, so ~3% of slots exhaust all 12 candidates — a handful of
#: scalar-tail draws per 50-slot neighborhood, cheap next to doubling
#: every emitter's row count with more rounds.
_ROUNDS = 12

#: below this many cache misses the scalar rescan loop beats the
#: vectorized sweep's setup cost.
_RESCAN_MIN = 12

#: ``eval.batch_size`` histogram buckets (same shape as the search-layer
#: batch-size histograms).
_BATCH_BUCKETS = (0, 5, 10, 25, 50, 100, 250, 500)

_ENV_KNOB = "REPRO_VECTOR_EVAL"


def vector_eval_enabled() -> bool:
    """The ``REPRO_VECTOR_EVAL`` knob (on unless explicitly disabled)."""
    return os.environ.get(_ENV_KNOB, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


# ----------------------------------------------------------------------
# Parent/instance summaries
# ----------------------------------------------------------------------
class _InstanceArrays:
    """Instance-level vectors the kernel gathers from (built once)."""

    __slots__ = (
        "ready",
        "due",
        "service",
        "demand",
        "depart",
        "travel_flat",
        "n_sites",
        "depot_ok",
        "batch_scan_ok",
    )

    def __init__(self, instance) -> None:
        self.ready = instance.ready_time
        self.due = instance.due_date
        self.service = instance.service_time
        self.demand = instance.demand
        #: earliest possible departure from each site (ready + service),
        #: the left side of the local feasibility criterion.
        self.depart = self.ready + self.service
        self.travel_flat = instance.travel.ravel()
        self.n_sites = instance.n_sites
        #: per-site feasibility of a fresh depot->c->depot route.
        self.depot_ok = (self.depart[0] + instance.travel[0] <= self.due) & (
            self.depart + instance.travel[:, 0] <= self.due[0]
        )
        #: the uniform-step rescan below folds the final depot leg with
        #: the customer-step recipe, which is exact only when the depot
        #: has no ready/service/demand of its own (true for every
        #: generator instance; guarded anyway).
        self.batch_scan_ok = (
            float(self.ready[0]) == 0.0
            and float(self.service[0]) == 0.0
            and float(self.demand[0]) == 0.0
        )


class ParentArrays:
    """Array summary of one parent solution for descriptor emitters.

    ``Rz`` is the padded route matrix: row r holds route ``r`` with a
    leading depot column and trailing zero padding, so predecessor /
    successor / boundary lookups are single gathers that naturally
    return the depot at route ends.  ``route_of``/``pos_of`` are
    site-indexed (position 0-based within the route), ``prefload[r, c]``
    is the demand of the first ``c`` customers of route ``r``, and
    ``dist_r``/``tard_r`` are the parent's per-route statistics (the
    baseline the kernel's scatter-and-fold assembly edits).
    """

    __slots__ = (
        "solution",
        "routes",
        "n_routes",
        "n_customers",
        "capacity",
        "new_route_ok",
        "Rz",
        "Rz_width",
        "L",
        "route_of",
        "pos_of",
        "route_of_l",
        "pos_of_l",
        "loads",
        "prefload",
        "dist_r",
        "tard_r",
        "eligible2",
        "eligible3",
        "depart",
        "due",
        "demand",
        "travel_flat",
        "n_sites",
        "depot_ok",
    )

    def __init__(self, solution, arrays: _InstanceArrays) -> None:
        instance = solution.instance
        routes = solution.routes
        n = len(routes)
        self.solution = solution
        self.routes = routes
        self.n_routes = n
        self.n_customers = instance.n_customers
        self.capacity = instance.capacity
        self.new_route_ok = solution.vehicle_slack > 0
        L = np.fromiter((len(r) for r in routes), dtype=np.int64, count=n)
        width = (int(L.max()) if n else 0) + 2
        Rz = np.zeros((n, width), dtype=np.int64)
        for i, r in enumerate(routes):
            Rz[i, 1 : 1 + len(r)] = r
        self.Rz = Rz
        self.Rz_width = width
        self.L = L
        ns = arrays.n_sites
        route_of = np.zeros(ns, dtype=np.int64)
        pos_of = np.zeros(ns, dtype=np.int64)
        rows, cols = np.nonzero(Rz)
        customers = Rz[rows, cols]
        route_of[customers] = rows
        pos_of[customers] = cols - 1
        self.route_of = route_of
        self.pos_of = pos_of
        self.route_of_l = route_of.tolist()
        self.pos_of_l = pos_of.tolist()
        self.loads = np.array(solution.route_loads(), dtype=np.float64)
        dm = np.where(Rz > 0, arrays.demand[Rz], 0.0)
        self.prefload = np.cumsum(dm, axis=1)
        if solution._objectives is None:
            solution.objectives  # noqa: B018 - warms every per-route stat
        stats = solution._stats
        self.dist_r = np.fromiter((st.distance for st in stats), dtype=np.float64, count=n)
        self.tard_r = np.fromiter((st.tardiness for st in stats), dtype=np.float64, count=n)
        self.eligible2 = np.nonzero(L >= 2)[0]
        self.eligible3 = np.nonzero(L >= SEGMENT_LENGTH + 1)[0]
        self.depart = arrays.depart
        self.due = arrays.due
        self.demand = arrays.demand
        self.travel_flat = arrays.travel_flat
        self.n_sites = ns
        self.depot_ok = arrays.depot_ok


class _KernelState:
    """Per-evaluator kernel cache: instance arrays + last parent summary.

    Lives on ``Evaluator._kernel`` (not on the solution) so checkpoint
    pickles of solutions stay byte-identical with and without the
    kernel having run.
    """

    __slots__ = ("instance", "arrays", "_parent", "_pre")

    def __init__(self, instance) -> None:
        self.instance = instance
        self.arrays = _InstanceArrays(instance)
        self._parent = None
        self._pre: ParentArrays | None = None

    def parent_arrays(self, solution) -> ParentArrays:
        if solution is not self._parent:
            self._pre = ParentArrays(solution, self.arrays)
            self._parent = solution
        return self._pre


def _kernel_state(evaluator) -> _KernelState:
    state = evaluator._kernel
    if state is None or state.instance is not evaluator.instance:
        state = _KernelState(evaluator.instance)
        evaluator._kernel = state
    return state


def batch_supported(registry) -> bool:
    """Whether every operator in ``registry`` has a descriptor emitter.

    Registries mixing in non-batch operators (or subclasses that
    override ``propose``) keep the legacy scalar sampling loop on both
    knob settings, so the bit-identity guarantee is preserved trivially.
    The answer is memoized on the registry.
    """
    flag = getattr(registry, "_batch_supported", None)
    if flag is None:
        flag = all(
            type(op) in _MOVE_BUILDERS and getattr(op, "batch_words", 0) > 0
            for op in registry.operators
        )
        registry._batch_supported = flag
    return flag


# ----------------------------------------------------------------------
# Vectorized multi-route rescan (cache-miss sweep)
# ----------------------------------------------------------------------
def batch_route_stats(instance, routes) -> list[RouteStats]:
    """:func:`~repro.core.routes.route_stats` for many routes at once.

    Runs the arrival-time recursion elementwise over a padded route
    matrix — one numpy step per route position instead of one Python
    loop per route.  Every arithmetic step is the same IEEE double
    operation in the same order as the scalar recursion, so the
    returned stats are bit-identical.  Instances whose depot carries
    ready/service/demand of its own (none of ours do) fall back to the
    scalar loop, because the uniform step would then mis-handle the
    final depot leg.
    """
    k = len(routes)
    if k == 0:
        return []
    ready = instance.ready_time
    service = instance.service_time
    demand = instance.demand
    if not (
        float(ready[0]) == 0.0
        and float(service[0]) == 0.0
        and float(demand[0]) == 0.0
    ):
        return [route_stats(instance, r) for r in routes]
    L = np.fromiter((len(r) for r in routes), dtype=np.int64, count=k)
    width = int(L.max()) + 2
    M = np.zeros((k, width), dtype=np.int64)
    for i, r in enumerate(routes):
        M[i, 1 : 1 + len(r)] = r
    travel = instance.travel.ravel()
    ns = instance.n_sites
    due = instance.due_date
    dist = np.zeros(k)
    clock = np.zeros(k)
    tard = np.zeros(k)
    load = np.zeros(k)
    steps = L + 1  # customers plus the return-to-depot leg
    for p in range(1, width):
        active = steps >= p
        if not active.any():
            break
        prev = M[:, p - 1]
        site = M[:, p]
        leg = travel[prev * ns + site]
        ndist = dist + leg
        nclock = clock + leg
        late = nclock - due[site]
        ntard = np.where(late > 0.0, tard + late, tard)
        # Wait for the window to open, then serve.  At the final step
        # ``site`` is the depot: ready/service are 0.0 there, so the
        # maximum and the add reproduce the scalar path's bare arrival.
        nclock = np.maximum(nclock, ready[site])
        nclock = nclock + service[site]
        nload = load + demand[site]
        dist = np.where(active, ndist, dist)
        clock = np.where(active, nclock, clock)
        tard = np.where(active, ntard, tard)
        load = np.where(active, nload, load)
    return [
        RouteStats(distance=d, load=ld, tardiness=t, completion=c)
        for d, ld, t, c in zip(dist.tolist(), load.tolist(), tard.tolist(), clock.tolist())
    ]


# ----------------------------------------------------------------------
# Batched sampling (shared by both knob settings)
# ----------------------------------------------------------------------
def _propose_all(size, registry, rng, pre):
    """Fill up to ``size`` slots with vector-proposed descriptors.

    The §III.B wheel is materialized up front: one uniform block draws
    :data:`_ROUNDS` operator kinds per slot, then *each kind's emitter
    runs exactly once* over all its (slot, round) candidates.  A slot
    is won by its earliest feasible candidate.  Returns ``(kinds,
    fields, unfilled)``; ``kinds[s] == -1`` marks slots for the scalar
    fallback.
    """
    operators = registry.operators
    n_ops = len(operators)
    ready = [op.batch_ready(pre) for op in operators]
    if not any(ready):
        # Nothing can propose on this parent (e.g. an empty solution):
        # identical to every scalar propose bailing before its first
        # draw, so no RNG is consumed here either.
        return (
            np.full(size, -1, dtype=np.int64),
            np.zeros((size, 4), dtype=np.int64),
            np.arange(size, dtype=np.int64),
        )
    n_pairs = size * _ROUNDS
    u = rng.random(n_pairs)
    if registry._uniform:
        wheel = (u * n_ops).astype(np.int64)
        np.minimum(wheel, n_ops - 1, out=wheel)
    else:
        wheel = np.searchsorted(
            np.asarray(registry._cumulative), u, side="right"
        )
        np.minimum(wheel, n_ops - 1, out=wheel)
    # Candidate p = slot * _ROUNDS + round, so slot-major order makes
    # the earliest round the smallest candidate index.
    pair_valid = np.zeros(n_pairs, dtype=bool)
    pair_fields = np.zeros((n_pairs, 4), dtype=np.int64)
    for k in range(n_ops):
        if not ready[k]:
            continue
        sel = np.nonzero(wheel == k)[0]
        m = sel.size
        if m == 0:
            continue
        op = operators[k]
        words = op.batch_words
        U = rng.random(m * words)
        f, valid = op.propose_batch(pre, U.reshape(m, words))
        winners = sel[valid]
        pair_valid[winners] = True
        pair_fields[winners] = f[valid]
    per_slot = pair_valid.reshape(size, _ROUNDS)
    has = per_slot.any(axis=1)
    round_won = per_slot.argmax(axis=1)
    flat = np.arange(size, dtype=np.int64) * _ROUNDS + round_won
    kinds = np.where(has, wheel[flat], -1)
    fields = pair_fields[flat]  # unfilled slots carry zeros, never read
    return kinds, fields, np.nonzero(~has)[0]


def _scalar_tail(solution, registry, rng, unfilled):
    """Scalar ``draw_move`` for the slots vector proposal left unfilled.

    Mirrors the legacy sampler's semantics: a ``None`` (retry cap
    exhausted) truncates the neighborhood at that slot.
    """
    tail = {}
    draw = registry.draw_move
    for s in unfilled.tolist():
        move = draw(solution, rng)
        if move is None:
            return tail, s
        tail[s] = move
    return tail, None


# ----------------------------------------------------------------------
# Move materialization from descriptors
# ----------------------------------------------------------------------
def _move_relocate(pre, f):
    customer, dst, dst_pos, src = f
    return RelocateMove(
        customer=customer,
        src_route=src,
        src_pos=pre.pos_of_l[customer],
        dst_route=dst,
        dst_pos=dst_pos,
    )


def _move_exchange(pre, f):
    a, b = f[0], f[1]
    return ExchangeMove(
        customer_a=a,
        route_a=pre.route_of_l[a],
        pos_a=pre.pos_of_l[a],
        customer_b=b,
        route_b=pre.route_of_l[b],
        pos_b=pre.pos_of_l[b],
    )


def _move_two_opt(pre, f):
    r, start, end = f[0], f[1], f[2]
    route = pre.routes[r]
    return TwoOptMove(
        route_index=r,
        start=start,
        end=end,
        segment_first=route[start],
        segment_last=route[end],
    )


def _move_two_opt_star(pre, f):
    ra_i, cut_a, rb_i, cut_b = f
    ra = pre.routes[ra_i]
    rb = pre.routes[rb_i]
    tail_a = ra[cut_a - 1] if cut_a > 0 else 0
    head_b = rb[cut_b] if cut_b < len(rb) else 0
    tail_b = rb[cut_b - 1] if cut_b > 0 else 0
    head_a = ra[cut_a] if cut_a < len(ra) else 0
    boundary = frozenset(c for c in (tail_a, head_b, tail_b, head_a) if c != 0)
    return TwoOptStarMove(
        route_a=ra_i, cut_a=cut_a, route_b=rb_i, cut_b=cut_b, boundary=boundary
    )


def _move_or_opt(pre, f):
    r, start, insert_at = f[0], f[1], f[2]
    route = pre.routes[r]
    return OrOptMove(
        route_index=r,
        start=start,
        insert_at=insert_at,
        segment=route[start : start + SEGMENT_LENGTH],
    )


_MOVE_BUILDERS = {
    Relocate: _move_relocate,
    Exchange: _move_exchange,
    TwoOpt: _move_two_opt,
    TwoOptStar: _move_two_opt_star,
    OrOpt: _move_or_opt,
}


class _LazyMove:
    """Deferred move materialization for unselected neighbors.

    Most of a neighborhood is never selected or archived; building the
    move object (tuple slices, a dataclass) is pure overhead for those.
    The callable rebuilds the exact move from its descriptor on demand.
    """

    __slots__ = ("_builder", "_pre", "_fields")

    def __init__(self, builder, pre, fields) -> None:
        self._builder = builder
        self._pre = pre
        self._fields = fields

    def __call__(self):
        return self._builder(self._pre, self._fields)


# ----------------------------------------------------------------------
# Edit builders: descriptor -> edited route tuples (+ cache lookups)
# ----------------------------------------------------------------------
#
# Each builder walks its kind's accepted descriptors, builds the child
# route tuples, and reports them in ascending child-route order through
# the callbacks — ``look`` (an edited or added route needing stats),
# ``kill`` (a deleted route: contributes 0.0 and no cache traffic,
# matching the scalar path's ``continue``).  Returns the kind's
# ``routes_touched`` contribution (len(replacements) + len(added), as
# the scalar metrics count it).


def _edits_relocate(pre, rows, cols, look, kill, open_new):
    routes = pre.routes
    pos_l = pre.pos_of_l
    for col, row in zip(cols, rows):
        customer, dst, dst_pos, src = row
        sp = pos_l[customer]
        src_route = routes[src]
        new_src = src_route[:sp] + src_route[sp + 1 :]
        if dst < 0:
            if new_src:
                look(src, col, new_src)
            else:
                kill(src, col)
            open_new(col, (customer,))
        elif src < dst:
            if new_src:
                look(src, col, new_src)
            else:
                kill(src, col)
            dst_route = routes[dst]
            look(dst, col, dst_route[:dst_pos] + (customer,) + dst_route[dst_pos:])
        else:
            dst_route = routes[dst]
            look(dst, col, dst_route[:dst_pos] + (customer,) + dst_route[dst_pos:])
            if new_src:
                look(src, col, new_src)
            else:
                kill(src, col)
    return 2 * len(cols)


def _edits_exchange(pre, rows, cols, look, kill, open_new):
    routes = pre.routes
    rof = pre.route_of_l
    pof = pre.pos_of_l
    for col, row in zip(cols, rows):
        a = row[0]
        b = row[1]
        ra = rof[a]
        pa = pof[a]
        rb = rof[b]
        pb = pof[b]
        ta = routes[ra]
        tb = routes[rb]
        new_a = ta[:pa] + (b,) + ta[pa + 1 :]
        new_b = tb[:pb] + (a,) + tb[pb + 1 :]
        if ra < rb:
            look(ra, col, new_a)
            look(rb, col, new_b)
        else:
            look(rb, col, new_b)
            look(ra, col, new_a)
    return 2 * len(cols)


def _edits_two_opt(pre, rows, cols, look, kill, open_new):
    routes = pre.routes
    for col, row in zip(cols, rows):
        r = row[0]
        start = row[1]
        end = row[2]
        route = routes[r]
        look(r, col, route[:start] + route[start : end + 1][::-1] + route[end + 1 :])
    return len(cols)


def _edits_two_opt_star(pre, rows, cols, look, kill, open_new):
    routes = pre.routes
    for col, row in zip(cols, rows):
        ra_i, cut_a, rb_i, cut_b = row
        ra = routes[ra_i]
        rb = routes[rb_i]
        new_a = ra[:cut_a] + rb[cut_b:]
        new_b = rb[:cut_b] + ra[cut_a:]
        if ra_i < rb_i:
            pairs = ((ra_i, new_a), (rb_i, new_b))
        else:
            pairs = ((rb_i, new_b), (ra_i, new_a))
        for idx, tup in pairs:
            if tup:
                look(idx, col, tup)
            else:
                kill(idx, col)
    return 2 * len(cols)


def _edits_or_opt(pre, rows, cols, look, kill, open_new):
    routes = pre.routes
    for col, row in zip(cols, rows):
        r = row[0]
        start = row[1]
        insert_at = row[2]
        route = routes[r]
        remainder = route[:start] + route[start + SEGMENT_LENGTH :]
        look(r, col, remainder[:insert_at] + route[start : start + SEGMENT_LENGTH] + remainder[insert_at:])
    return len(cols)


_EDIT_BUILDERS = {
    Relocate: _edits_relocate,
    Exchange: _edits_exchange,
    TwoOpt: _edits_two_opt,
    TwoOptStar: _edits_two_opt_star,
    OrOpt: _edits_or_opt,
}


# ----------------------------------------------------------------------
# Batched evaluation + scatter-and-fold assembly
# ----------------------------------------------------------------------
def _evaluate_vector(evaluator, pre, kinds, fields, vslots, registry):
    """Objectives for all vector-proposed slots in a few array ops.

    Returns ``(distance, tardiness, vehicles, routes_touched)`` arrays
    aligned with ``vslots``.  Bit-identity argument: the child's
    objective fold is ``sum over child routes in order``; here every
    parent route contributes its parent value unless scattered over
    (edited -> cached stats, deleted -> 0.0, which is additively inert
    since all partial sums are >= +0.0), and a virtual last row carries
    routes opened by relocate-to-new — exactly the child route order.
    The fold runs as an explicit row loop because numpy's pairwise
    ``sum`` would change the float association.
    """
    cache = evaluator.stats_cache
    lookup_deferred = cache.lookup_deferred
    n = pre.n_routes
    rr: list[int] = []
    cc: list[int] = []
    vd: list[float] = []
    vt: list[float] = []
    prr: list[int] = []
    pcc: list[int] = []
    pii: list[int] = []
    pend_map: dict = {}
    pend_routes: list = []
    del_cols: list[int] = []
    add_cols: list[int] = []

    def look(row, col, tup):
        st = lookup_deferred(tup)
        if st is None:
            idx = pend_map.get(tup)
            if idx is None:
                idx = len(pend_routes)
                pend_map[tup] = idx
                pend_routes.append(tup)
            prr.append(row)
            pcc.append(col)
            pii.append(idx)
        else:
            rr.append(row)
            cc.append(col)
            vd.append(st.distance)
            vt.append(st.tardiness)

    def kill(row, col):
        rr.append(row)
        cc.append(col)
        vd.append(0.0)
        vt.append(0.0)
        del_cols.append(col)

    def open_new(col, tup):
        look(n, col, tup)
        add_cols.append(col)

    kinds_v = kinds[vslots]
    routes_touched = 0
    operators = registry.operators
    for k in np.unique(kinds_v).tolist():
        idx = np.nonzero(kinds_v == k)[0]
        builder = _EDIT_BUILDERS[type(operators[k])]
        rows = fields[vslots[idx]].tolist()
        routes_touched += builder(pre, rows, idx.tolist(), look, kill, open_new)

    if pend_routes:
        instance = evaluator.instance
        if len(pend_routes) >= _RESCAN_MIN:
            computed = batch_route_stats(instance, pend_routes)
        else:
            computed = [route_stats(instance, r) for r in pend_routes]
        fulfill = cache.fulfill
        for tup, st in zip(pend_routes, computed):
            fulfill(tup, st)
        pend_d = np.fromiter((st.distance for st in computed), dtype=np.float64)
        pend_t = np.fromiter((st.tardiness for st in computed), dtype=np.float64)

    S = len(vslots)
    Md = np.empty((n + 1, S))
    Md[:n] = pre.dist_r[:, None]
    Md[n] = 0.0
    Mt = np.empty((n + 1, S))
    Mt[:n] = pre.tard_r[:, None]
    Mt[n] = 0.0
    if rr:
        ri = np.asarray(rr)
        ci = np.asarray(cc)
        Md[ri, ci] = vd
        Mt[ri, ci] = vt
    if prr:
        ri = np.asarray(prr)
        ci = np.asarray(pcc)
        ii = np.asarray(pii)
        Md[ri, ci] = pend_d[ii]
        Mt[ri, ci] = pend_t[ii]
    # The fold must be the left-to-right association of the scalar path.
    # ``np.add.reduce`` over axis 0 of a C-order matrix with >1 column
    # is a strided (sequential) reduction — numpy's pairwise summation
    # only applies along the contiguous axis — so it IS that left fold;
    # the explicit loop covers the single-column / very-tall cases where
    # the reduction could become contiguous and re-associate.
    if S > 1 and n < 100:
        distance = np.add.reduce(Md, axis=0)
        tardiness = np.add.reduce(Mt, axis=0)
    else:
        distance = Md[0].copy()
        tardiness = Mt[0].copy()
        for r in range(1, n + 1):
            distance += Md[r]
            tardiness += Mt[r]
    vehicles = np.full(S, n, dtype=np.int64)
    for col in del_cols:
        vehicles[col] -= 1
    for col in add_cols:
        vehicles[col] += 1
    return distance, tardiness, vehicles, routes_touched


# ----------------------------------------------------------------------
# Public entry: one neighborhood, sampled and evaluated
# ----------------------------------------------------------------------
class BatchResult:
    """One sampled neighborhood: per-slot entries plus phase timings.

    ``entries[s]`` is ``(objectives, move, maker)`` — exactly one of
    ``move``/``maker`` is set; a maker is a zero-argument callable
    producing the move (see :class:`_LazyMove`).
    """

    __slots__ = ("entries", "gen_seconds", "eval_seconds")

    def __init__(self, entries, gen_seconds, eval_seconds) -> None:
        self.entries = entries
        self.gen_seconds = gen_seconds
        self.eval_seconds = eval_seconds


def sample_batch(
    solution,
    size,
    registry,
    rng,
    evaluator,
    *,
    vector=True,
    eager_moves=False,
    timed=False,
) -> BatchResult:
    """Sample and evaluate one neighborhood through the batch kernel.

    Sampling (the RNG-consuming part) is identical for both values of
    ``vector``; the flag picks the evaluation path — the vectorized
    kernel or the scalar bit-identity oracle
    (:meth:`~repro.core.evaluation.Evaluator.evaluate_move`).  Slots
    that fell back to scalar ``draw_move`` are scalar-evaluated on both
    paths.  ``rng`` must be the plain :class:`numpy.random.Generator`
    whose stream defines the trajectory.
    """
    state = _kernel_state(evaluator)
    pre = state.parent_arrays(solution)
    clock = time.perf_counter
    t0 = clock() if timed else 0.0
    kinds, fields, unfilled = _propose_all(size, registry, rng, pre)
    tail, cut = _scalar_tail(solution, registry, rng, unfilled)
    t1 = clock() if timed else 0.0

    limit = size if cut is None else cut
    vslots = np.nonzero(kinds[:limit] >= 0)[0]
    entries: list = [None] * limit
    metrics = evaluator.metrics
    operators = registry.operators
    builders = [_MOVE_BUILDERS[type(op)] for op in operators]
    evaluate_move = evaluator.evaluate_move

    if vector:
        if len(vslots):
            distance, tardiness, vehicles, routes_touched = _evaluate_vector(
                evaluator, pre, kinds, fields, vslots, registry
            )
            evaluator.count += len(vslots)
            kl = kinds[vslots].tolist()
            fl = fields[vslots].tolist()
            dl = distance.tolist()
            tl = tardiness.tolist()
            vl = vehicles.tolist()
            if eager_moves:
                for j, s in enumerate(vslots.tolist()):
                    obj = ObjectiveVector(
                        distance=dl[j], vehicles=vl[j], tardiness=tl[j]
                    )
                    entries[s] = (obj, builders[kl[j]](pre, fl[j]), None)
            else:
                for j, s in enumerate(vslots.tolist()):
                    obj = ObjectiveVector(
                        distance=dl[j], vehicles=vl[j], tardiness=tl[j]
                    )
                    entries[s] = (obj, None, _LazyMove(builders[kl[j]], pre, fl[j]))
        for s, move in tail.items():
            entries[s] = (evaluate_move(solution, move), move, None)
        if metrics.enabled:
            if len(vslots):
                metrics.inc("evaluate.moves", len(vslots))
                metrics.inc("evaluate.routes_touched", routes_touched)
            metrics.inc("eval.vector_calls")
            metrics.observe("eval.batch_size", len(vslots), buckets=_BATCH_BUCKETS)
            if tail:
                metrics.inc("eval.scalar_fallbacks", len(tail))
    else:
        # Oracle path: same slots, same moves, evaluated one by one in
        # slot order through the scalar delta engine.
        kinds_l = kinds.tolist()
        for s in range(limit):
            move = tail.get(s)
            if move is None:
                move = builders[kinds_l[s]](pre, fields[s].tolist())
            entries[s] = (evaluate_move(solution, move), move, None)
    gen_seconds = (t1 - t0) if timed else 0.0
    eval_seconds = (clock() - t1) if timed else 0.0
    return BatchResult(entries, gen_seconds, eval_seconds)
