"""The paper's §V future-work experiments, realized.

Two comparisons the conclusions call for:

1. **TSMO vs. an established MOEA** — NSGA-II on the identical
   representation, operators, evaluator and budget ("a comparison
   between the TSMO versions here and the well established
   multiobjective evolutionary algorithms in both runtime and solution
   quality");
2. **the asynchronous × multisearch hybrid** — islands of asynchronous
   master–worker groups exchanging elites ("combining the multisearch
   TS with the asynchronous TS to get the best of both worlds"),
   benchmarked against the plain asynchronous and collaborative
   variants at the same total processor count.
"""

import numpy as np
from conftest import emit

from repro.moea.nsga2 import NSGA2Params, run_nsga2
from repro.mo.coverage import mutual_coverage
from repro.parallel.async_ts import run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.costmodel import CostModel
from repro.parallel.hybrid_ts import HybridParams, run_hybrid_tsmo
from repro.stats.speedup import format_speedup
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

SEEDS = (1, 2, 3)


def _mean_best(runs, index):
    values = [r.best_feasible()[index] for r in runs if r.best_feasible()]
    return float(np.mean(values)) if values else float("nan")


def nsga2_comparison(bench_config):
    n = max(20, round(60 * bench_config.city_fraction / 0.15))
    instance = generate_instance("R2", n, seed=41)
    params = TSMOParams(
        max_evaluations=bench_config.max_evaluations,
        neighborhood_size=bench_config.neighborhood_size,
        restart_after=bench_config.restart_after,
    )
    tsmo = [run_sequential_tsmo(instance, params, seed=s) for s in SEEDS]
    nsga = [
        run_nsga2(instance, params, NSGA2Params(population_size=24), seed=s)
        for s in SEEDS
    ]
    cov = [
        mutual_coverage(t.feasible_front(), g.feasible_front())
        for t in tsmo
        for g in nsga
    ]
    c_tsmo = float(np.mean([c[0] for c in cov]))
    c_nsga = float(np.mean([c[1] for c in cov]))
    return {
        "instance": instance.name,
        "tsmo": (_mean_best(tsmo, 0), _mean_best(tsmo, 1), np.mean([r.wall_time for r in tsmo])),
        "nsga": (_mean_best(nsga, 0), _mean_best(nsga, 1), np.mean([r.wall_time for r in nsga])),
        "coverage": (c_tsmo, c_nsga),
    }


def hybrid_comparison(bench_config):
    n = max(20, round(60 * bench_config.city_fraction / 0.15))
    instance = generate_instance("R1", n, seed=43)
    params = TSMOParams(
        max_evaluations=bench_config.max_evaluations,
        neighborhood_size=bench_config.neighborhood_size,
        restart_after=bench_config.restart_after,
    )
    cost = CostModel().for_neighborhood(params.neighborhood_size)
    ts = np.mean(
        [
            run_sequential_simulated(instance, params, seed=s, cost_model=cost).simulated_time
            for s in SEEDS
        ]
    )
    total_procs = 12
    rows = []
    for label, runs in (
        (
            "async@12",
            [
                run_asynchronous_tsmo(instance, params, total_procs, seed=s, cost_model=cost)
                for s in SEEDS
            ],
        ),
        (
            "coll@12",
            [
                run_collaborative_tsmo(
                    instance,
                    params,
                    total_procs,
                    seed=s,
                    cost_model=cost,
                    collab_params=CollabParams(
                        initial_phase_patience=bench_config.collab_patience
                    ),
                )
                for s in SEEDS
            ],
        ),
        (
            "hybrid 3x4",
            [
                run_hybrid_tsmo(
                    instance,
                    params,
                    HybridParams(
                        n_islands=3,
                        procs_per_island=4,
                        initial_phase_patience=bench_config.collab_patience,
                    ),
                    seed=s,
                    cost_model=cost,
                )
                for s in SEEDS
            ],
        ),
    ):
        tp = np.mean([r.simulated_time for r in runs])
        rows.append((label, ts / tp, _mean_best(runs, 0), _mean_best(runs, 1)))
    return instance.name, rows


def test_nsga2_vs_tsmo(benchmark, bench_config, output_dir):
    data = benchmark.pedantic(
        nsga2_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"TSMO vs NSGA-II on {data['instance']} (equal evaluation budget, "
        f"mean of {len(SEEDS)} runs)",
        f"{'algorithm':<10} {'distance':>10} {'vehicles':>9} {'wall s':>8}",
        f"{'TSMO':<10} {data['tsmo'][0]:>10.1f} {data['tsmo'][1]:>9.2f} {data['tsmo'][2]:>8.2f}",
        f"{'NSGA-II':<10} {data['nsga'][0]:>10.1f} {data['nsga'][1]:>9.2f} {data['nsga'][2]:>8.2f}",
        f"set coverage: C(TSMO, NSGA-II) = {data['coverage'][0] * 100:.1f}%   "
        f"C(NSGA-II, TSMO) = {data['coverage'][1] * 100:.1f}%",
    ]
    emit(output_dir, "future_nsga2", "\n".join(lines))
    assert np.isfinite(data["tsmo"][0]) and np.isfinite(data["nsga"][0])


def test_hybrid_best_of_both_worlds(benchmark, bench_config, output_dir):
    name, rows = benchmark.pedantic(
        hybrid_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"Hybrid async x multisearch on {name} (12 processors total, "
        f"mean of {len(SEEDS)} runs)",
        f"{'variant':<12} {'speedup':>9} {'distance':>10} {'vehicles':>9}",
    ]
    for label, ratio, dist, veh in rows:
        lines.append(
            f"{label:<12} {format_speedup(ratio):>9} {dist:>10.1f} {veh:>9.2f}"
        )
    emit(output_dir, "future_hybrid", "\n".join(lines))
    by = {r[0]: r for r in rows}
    # The §V hypothesis: the hybrid is faster than sequential (unlike
    # collaborative) while matching-or-beating async quality.
    assert by["hybrid 3x4"][1] > 1.0
    assert by["coll@12"][1] < 1.0
