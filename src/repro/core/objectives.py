"""Objective vectors for the three-objective CVRPTW formulation.

The paper optimizes (§II):

* ``f1`` — total tour length over the giant permutation (sum of travel
  costs along consecutive sites, depot legs included);
* ``f2`` — number of vehicles actually deployed, i.e. the number of
  positions where a depot marker is followed by a customer;
* ``f3`` — total tardiness: sum over all sites of
  ``max(arrival - due_date, 0)`` (the soft-time-window constraint
  violation, including late return to the depot).

All objectives are minimized.  A solution is *feasible* in the paper's
reporting sense when it violates neither time windows nor capacities;
with the operators used here capacity violations cannot occur, so
feasibility reduces to ``f3 == 0`` (up to floating-point tolerance).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["FEASIBILITY_TOLERANCE", "ObjectiveVector"]

#: Tardiness at or below this value counts as zero (pure float noise).
FEASIBILITY_TOLERANCE = 1e-9


class ObjectiveVector(NamedTuple):
    """The objective triple ``(f1, f2, f3)`` of one solution.

    Being a ``NamedTuple`` it compares lexicographically, unpacks, and
    converts to a numpy row for the Pareto machinery via
    :meth:`as_array`.  Dominance is intentionally *not* defined by
    ``<`` — use :func:`repro.mo.dominance.dominates`.
    """

    distance: float
    vehicles: int
    tardiness: float

    def as_array(self) -> np.ndarray:
        """Return the vector as a float64 array ``[f1, f2, f3]``."""
        return np.array([self.distance, float(self.vehicles), self.tardiness])

    @property
    def feasible(self) -> bool:
        """True when the solution violates no time window (``f3 ~ 0``)."""
        return self.tardiness <= FEASIBILITY_TOLERANCE

    def dominates(self, other: "ObjectiveVector") -> bool:
        """Pareto dominance: no worse in all objectives, better in one."""
        if (
            self.distance > other.distance
            or self.vehicles > other.vehicles
            or self.tardiness > other.tardiness
        ):
            return False
        return (
            self.distance < other.distance
            or self.vehicles < other.vehicles
            or self.tardiness < other.tardiness
        )

    def weakly_dominates(self, other: "ObjectiveVector") -> bool:
        """Weak dominance: no worse in all objectives (equality allowed)."""
        return (
            self.distance <= other.distance
            and self.vehicles <= other.vehicles
            and self.tardiness <= other.tardiness
        )

    def __repr__(self) -> str:
        return (
            f"ObjectiveVector(distance={self.distance:.2f}, "
            f"vehicles={self.vehicles}, tardiness={self.tardiness:.2f})"
        )
