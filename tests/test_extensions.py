"""Tests for the extensions: multiprocessing backend, adaptive memory."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.parallel.adaptive_memory import (
    AdaptiveMemory,
    AdaptiveMemoryParams,
    run_adaptive_memory_tsmo,
)
from repro.parallel.mp_backend import (
    RemoteMove,
    pickle_roundtrip_sizes,
    run_multiprocessing_tsmo,
)
from repro.core.construction import i1_construct
from repro.core.solution import Solution
from repro.mo.dominance import dominates
from repro.tabu.params import TSMOParams
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


class TestRemoteMove:
    def test_attribute_preserved(self):
        move = RemoteMove(("relocate", 7))
        assert move.attribute == ("relocate", 7)
        assert move.is_tabu({("relocate", 7)})

    def test_apply_refused(self, instance):
        move = RemoteMove("attr")
        with pytest.raises(SearchError, match="pre-applied"):
            move.apply(None)


class TestMultiprocessing:
    def test_payload_sizes(self, instance):
        sizes = pickle_roundtrip_sizes(instance)
        # The instance payload (with its O(N^2) matrix) dwarfs a routes
        # payload — the reason it ships once via the initializer.
        assert sizes["instance_bytes"] > 20 * sizes["routes_bytes"]

    def test_run_small(self, instance):
        params = TSMOParams(
            max_evaluations=150, neighborhood_size=20, restart_after=6
        )
        result = run_multiprocessing_tsmo(instance, params, n_workers=2, seed=1)
        assert result.algorithm == "multiprocessing"
        assert result.evaluations >= params.max_evaluations
        assert result.best_feasible() is not None
        front = result.front()
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_invalid_workers(self, instance):
        with pytest.raises(SearchError):
            run_multiprocessing_tsmo(instance, n_workers=0)


class TestAdaptiveMemoryPool:
    def test_harvest_and_capacity(self, instance):
        memory = AdaptiveMemory(capacity=5)
        sol = i1_construct(instance, rng=1)
        for k in range(4):
            memory.harvest(sol, score=float(k))
        assert len(memory.routes) == 5
        # Best-scored routes survive the truncation.
        assert all(r.score <= 1.0 for r in memory.routes)

    def test_construct_is_valid_solution(self, instance):
        memory = AdaptiveMemory(capacity=50)
        rng_pool = np.random.default_rng(0)
        for seed in range(3):
            sol = i1_construct(instance, rng=np.random.default_rng(seed))
            memory.harvest(sol, score=sol.objectives.distance)
        built = memory.construct(instance, rng_pool)
        assert isinstance(built, Solution)
        Solution._validate_routes(instance, built.routes)
        assert all(load <= instance.capacity for load in built.route_loads())

    def test_empty_pool_rejected(self, instance):
        with pytest.raises(SearchError, match="empty"):
            AdaptiveMemory(capacity=5).construct(instance, np.random.default_rng(0))

    def test_params_validation(self):
        with pytest.raises(SearchError):
            AdaptiveMemoryParams(pool_capacity=0)


class TestAdaptiveMemoryDriver:
    def test_run(self, instance):
        params = TSMOParams(
            max_evaluations=900, neighborhood_size=30, restart_after=6
        )
        result = run_adaptive_memory_tsmo(
            instance,
            params,
            AdaptiveMemoryParams(burst_evaluations=250, burst_neighborhood=25),
            seed=2,
        )
        assert result.algorithm == "adaptive_memory"
        assert result.evaluations >= params.max_evaluations
        assert result.best_feasible() is not None

    def test_budget_cap(self, instance):
        params = TSMOParams(max_evaluations=600, neighborhood_size=30)
        result = run_adaptive_memory_tsmo(
            instance,
            params,
            AdaptiveMemoryParams(burst_evaluations=200, burst_neighborhood=20),
            seed=3,
        )
        assert result.evaluations <= params.max_evaluations + 250
