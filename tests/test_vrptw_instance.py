"""Tests for the VRPTW instance substrate: customers, distances, Instance."""

import numpy as np
import pytest

from repro.errors import InstanceError
from repro.vrptw.customer import Customer, Depot
from repro.vrptw.distance import euclidean_matrix, pairwise_distances
from repro.vrptw.instance import Instance


def make_instance(**overrides):
    """A hand-written 3-customer instance with easy-to-check numbers."""
    kwargs = dict(
        name="hand",
        x=[0.0, 3.0, 0.0, -4.0],
        y=[0.0, 4.0, 5.0, 0.0],
        demand=[0.0, 10.0, 20.0, 30.0],
        ready_time=[0.0, 0.0, 10.0, 0.0],
        due_date=[1000.0, 100.0, 200.0, 300.0],
        service_time=[0.0, 5.0, 5.0, 5.0],
        capacity=50.0,
        n_vehicles=3,
    )
    kwargs.update(overrides)
    return Instance(**kwargs)


class TestCustomerRecords:
    def test_valid_customer(self):
        c = Customer(1, 1.0, 2.0, 5.0, 0.0, 10.0, 1.0)
        assert c.window_width == 10.0

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            Customer(1, 0, 0, 1, 10.0, 5.0, 0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="demand"):
            Customer(1, 0, 0, -1, 0, 10, 0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError, match="service"):
            Customer(1, 0, 0, 1, 0, 10, -2)

    def test_depot_index_zero_reserved(self):
        with pytest.raises(ValueError, match="index"):
            Customer(0, 0, 0, 1, 0, 10, 0)
        assert Depot(0, 0, 100).index == 0

    def test_depot_needs_positive_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            Depot(0, 0, 0)


class TestDistanceMatrix:
    def test_euclidean_values(self):
        t = euclidean_matrix(np.array([0.0, 3.0]), np.array([0.0, 4.0]))
        assert t[0, 1] == pytest.approx(5.0)
        assert t[1, 0] == pytest.approx(5.0)

    def test_zero_diagonal(self):
        rng = np.random.default_rng(0)
        t = euclidean_matrix(rng.random(10), rng.random(10))
        assert np.allclose(np.diag(t), 0.0)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        t = euclidean_matrix(rng.random(12), rng.random(12))
        assert np.allclose(t, t.T)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        t = euclidean_matrix(rng.random(8) * 10, rng.random(8) * 10)
        n = t.shape[0]
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert t[i, j] <= t[i, k] + t[k, j] + 1e-9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            euclidean_matrix(np.zeros(3), np.zeros(4))

    def test_requires_1d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            euclidean_matrix(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_pairwise_gather(self):
        t = euclidean_matrix(np.array([0.0, 3.0, 3.0]), np.array([0.0, 0.0, 4.0]))
        legs = pairwise_distances(t, np.array([0, 1, 2, 0]))
        assert legs == pytest.approx([3.0, 4.0, 5.0])

    def test_pairwise_short_sequence(self):
        t = euclidean_matrix(np.zeros(2), np.zeros(2))
        assert pairwise_distances(t, np.array([0])).size == 0


class TestInstanceValidation:
    def test_valid_instance_builds(self):
        inst = make_instance()
        assert inst.n_customers == 3
        assert inst.n_sites == 4
        assert inst.permutation_length == 3 + 3 + 1

    def test_travel_matrix_built(self):
        inst = make_instance()
        assert inst.distance(0, 1) == pytest.approx(5.0)
        assert inst.distance(0, 2) == pytest.approx(5.0)
        assert inst.distance(0, 3) == pytest.approx(4.0)

    def test_arrays_readonly(self):
        inst = make_instance()
        with pytest.raises(ValueError):
            inst.demand[1] = 99
        with pytest.raises(ValueError):
            inst.travel[0, 1] = 0

    def test_depot_demand_must_be_zero(self):
        with pytest.raises(InstanceError, match="depot demand"):
            make_instance(demand=[1.0, 10.0, 20.0, 30.0])

    def test_depot_service_must_be_zero(self):
        with pytest.raises(InstanceError, match="depot service"):
            make_instance(service_time=[1.0, 5.0, 5.0, 5.0])

    def test_negative_demand_rejected(self):
        with pytest.raises(InstanceError, match="non-negative"):
            make_instance(demand=[0.0, -1.0, 20.0, 30.0])

    def test_inverted_window_rejected(self):
        with pytest.raises(InstanceError, match="inverted"):
            make_instance(ready_time=[0.0, 200.0, 10.0, 0.0])

    def test_oversized_demand_rejected(self):
        with pytest.raises(InstanceError, match="exceeds capacity"):
            make_instance(demand=[0.0, 60.0, 20.0, 30.0])

    def test_fleet_must_be_positive(self):
        with pytest.raises(InstanceError, match="fleet"):
            make_instance(n_vehicles=0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(InstanceError, match="capacity"):
            make_instance(capacity=0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InstanceError, match="length"):
            make_instance(x=[0.0, 1.0, 2.0])

    def test_non_finite_rejected(self):
        with pytest.raises(InstanceError, match="non-finite"):
            make_instance(x=[0.0, np.nan, 2.0, 3.0])

    def test_needs_a_customer(self):
        with pytest.raises(InstanceError, match="depot and at least one"):
            Instance(
                name="empty",
                x=[0.0],
                y=[0.0],
                demand=[0.0],
                ready_time=[0.0],
                due_date=[10.0],
                service_time=[0.0],
                capacity=10,
                n_vehicles=1,
            )


class TestInstanceViews:
    def test_customer_record(self):
        inst = make_instance()
        c2 = inst.customer(2)
        assert c2.index == 2
        assert c2.demand == 20.0
        assert c2.ready_time == 10.0

    def test_customer_out_of_range(self):
        inst = make_instance()
        with pytest.raises(InstanceError):
            inst.customer(0)
        with pytest.raises(InstanceError):
            inst.customer(4)

    def test_customers_iterator(self):
        inst = make_instance()
        assert [c.index for c in inst.customers()] == [1, 2, 3]

    def test_depot_view(self):
        inst = make_instance()
        assert inst.depot.horizon == 1000.0

    def test_min_vehicles_bound(self):
        inst = make_instance()
        assert inst.min_vehicles_by_capacity == 2  # 60 demand / 50 capacity

    def test_fast_list_views_match_arrays(self):
        inst = make_instance()
        assert inst._ready_l == list(inst.ready_time)
        assert inst._due_l == list(inst.due_date)
        assert inst._travel_rows[0][1] == pytest.approx(inst.travel[0, 1])

    def test_from_customers_roundtrip(self):
        depot = Depot(0, 0, 500)
        customers = [
            Customer(2, 1, 1, 5, 0, 50, 2),
            Customer(1, 2, 2, 7, 10, 60, 3),
        ]
        inst = Instance.from_customers("rt", depot, customers, capacity=20, n_vehicles=2)
        assert inst.customer(1).demand == 7
        assert inst.customer(2).demand == 5

    def test_from_customers_bad_indices(self):
        depot = Depot(0, 0, 500)
        with pytest.raises(InstanceError, match="indices"):
            Instance.from_customers(
                "bad", depot, [Customer(3, 1, 1, 5, 0, 50, 2)], capacity=20, n_vehicles=1
            )
