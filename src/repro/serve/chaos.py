"""Deterministic chaos for the solve service.

:class:`ServeFaultPlan` extends the worker pool's
:class:`~repro.parallel.pool.FaultPlan` to every fault domain the
service spans: worker processes (SIGKILL-style exits, stragglers),
the pump (injected stalls), checkpoints (mid-run crash injection and
torn tail bytes) and the scheduler itself (kill-and-restart).  Every
fault is *scheduled*, not random — a plan is a pure value, the
environment form ``REPRO_SERVE_FAULTS`` round-trips it, and
:meth:`ServeFaultPlan.seeded` derives a reproducible schedule from a
seed — so a chaos failure replays exactly.

:func:`run_chaos_soak` drives the whole failure story end to end: it
plays a burst of jobs against a supervised scheduler, kills workers
and the scheduler mid-flight per the plan, tears checkpoint files
between incarnations, lets ledger recovery re-admit the survivors,
and then audits the wreckage — traffic conservation, ledger episode
conservation and (for lockstep jobs) bit-identity of every completed
front against the uninterrupted sequential oracle.
"""

from __future__ import annotations

import asyncio
import os
import random

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.errors import JobCancelled, ServeError
from repro.obs import NULL_OBS
from repro.parallel.pool import FaultPlan
from repro.serve.job import JobSpec
from repro.serve.ledger import LEDGER_FILENAME, JobLedger
from repro.serve.scheduler import ServeParams, SolveScheduler
from repro.serve.traffic import TrafficReport
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo

__all__ = ["ChaosReport", "ServeFaultPlan", "run_chaos_soak", "tear_checkpoint"]


@dataclass(frozen=True)
class ServeFaultPlan:
    """A deterministic schedule of service-level faults.

    * ``worker_kills`` / ``worker_delays`` — forwarded to the pool's
      :class:`~repro.parallel.pool.FaultPlan` (first scheduler
      incarnation only; a recovered scheduler gets a healthy pool).
    * ``stalls`` — ``(pump_cycle, seconds)``: the pump sleeps before
      that cycle, simulating an event-loop hiccup.
    * ``scheduler_kills`` — each entry is a count of terminal jobs;
      when the soak reaches it the scheduler is killed with no
      shutdown bookkeeping and a fresh one recovers from the ledger.
    * ``tears`` — job ids whose checkpoint file loses its tail bytes
      between incarnations (the torn-write crash signature).
    * ``crashes`` — ``(job_id, evaluations)``: the job's first attempt
      raises :class:`~repro.errors.CrashInjected` at that evaluation
      count, exercising retry-from-checkpoint.

    The environment form ``REPRO_SERVE_FAULTS`` is a comma list of
    ``kill-worker:SLOT@ORDINAL[+BATCHES]``,
    ``delay-worker:SLOT@ORDINAL:SECONDS``, ``stall:CYCLE:SECONDS``,
    ``kill-scheduler:AFTER_DONE``, ``tear:JOB_ID`` and
    ``crash:JOB_ID@EVALUATIONS`` items.
    """

    worker_kills: tuple[tuple[int, int, int | None], ...] = ()
    worker_delays: tuple[tuple[int, int, float], ...] = ()
    stalls: tuple[tuple[int, float], ...] = ()
    scheduler_kills: tuple[int, ...] = ()
    tears: tuple[str, ...] = ()
    crashes: tuple[tuple[str, int], ...] = ()

    # -- the scheduler's view (duck-typed; see SolveScheduler(chaos=)) --
    def stall_for(self, cycle: int) -> float:
        return sum(seconds for at, seconds in self.stalls if at == cycle)

    def crash_after_for(self, job_id: str) -> int | None:
        for target, evaluations in self.crashes:
            if target == job_id:
                return evaluations
        return None

    def pool_plan(self) -> FaultPlan | None:
        if not self.worker_kills and not self.worker_delays:
            return None
        return FaultPlan(kills=self.worker_kills, delays=self.worker_delays)

    @staticmethod
    def from_env(spec: str | None = None) -> "ServeFaultPlan | None":
        """Parse ``REPRO_SERVE_FAULTS`` (or an explicit spec string)."""
        if spec is None:
            spec = os.environ.get("REPRO_SERVE_FAULTS", "")
        spec = spec.strip()
        if not spec:
            return None
        worker_kills: list[tuple[int, int, int | None]] = []
        worker_delays: list[tuple[int, int, float]] = []
        stalls: list[tuple[int, float]] = []
        scheduler_kills: list[int] = []
        tears: list[str] = []
        crashes: list[tuple[str, int]] = []
        for item in spec.split(","):
            item = item.strip()
            kind, _, rest = item.partition(":")
            try:
                if kind == "kill-worker":
                    slot_s, _, ordinal_s = rest.partition("@")
                    ordinal_s, _, after_s = ordinal_s.partition("+")
                    worker_kills.append(
                        (int(slot_s), int(ordinal_s), int(after_s) if after_s else None)
                    )
                elif kind == "delay-worker":
                    where, _, seconds_s = rest.partition(":")
                    slot_s, _, ordinal_s = where.partition("@")
                    worker_delays.append(
                        (int(slot_s), int(ordinal_s), float(seconds_s))
                    )
                elif kind == "stall":
                    cycle_s, _, seconds_s = rest.partition(":")
                    stalls.append((int(cycle_s), float(seconds_s)))
                elif kind == "kill-scheduler":
                    scheduler_kills.append(int(rest))
                elif kind == "tear":
                    if not rest:
                        raise ValueError("tear needs a job id")
                    tears.append(rest)
                elif kind == "crash":
                    job_s, _, evals_s = rest.partition("@")
                    if not job_s:
                        raise ValueError("crash needs a job id")
                    crashes.append((job_s, int(evals_s)))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except ValueError as exc:
                raise ServeError(
                    f"malformed REPRO_SERVE_FAULTS item {item!r}: {exc}"
                ) from exc
        return ServeFaultPlan(
            worker_kills=tuple(worker_kills),
            worker_delays=tuple(worker_delays),
            stalls=tuple(stalls),
            scheduler_kills=tuple(sorted(scheduler_kills)),
            tears=tuple(tears),
            crashes=tuple(crashes),
        )

    @classmethod
    def seeded(cls, seed: int, n_jobs: int) -> "ServeFaultPlan":
        """A reproducible schedule covering every fault domain at once:
        two worker kills, a pump stall, one scheduler kill-and-restart,
        torn checkpoints and two mid-run crash injections."""
        rng = random.Random(seed)
        kill_at = max(2, n_jobs // 3)
        mid = kill_at + 1
        crash_targets = sorted(rng.sample(range(n_jobs), min(2, n_jobs)))
        return cls(
            worker_kills=(
                (0, rng.randrange(2, 5), None),
                (1, rng.randrange(4, 8), 1),
            ),
            stalls=((rng.randrange(10, 30), 0.05),),
            scheduler_kills=(kill_at,),
            tears=tuple(f"chaos-{mid + k:05d}" for k in range(3) if mid + k < n_jobs),
            # Crash past the default first snapshot threshold so the
            # retry demonstrably resumes from a checkpoint, not scratch.
            crashes=tuple((f"chaos-{k:05d}", 40) for k in crash_targets),
        )

    def to_dict(self) -> dict:
        return asdict(self)


def tear_checkpoint(path) -> bool:
    """Truncate a checkpoint file's tail — the signature of a crash
    midway through a (non-atomic) write.  Returns whether anything was
    torn (a missing or empty file is left alone)."""
    p = Path(path)
    if not p.exists():
        return False
    size = p.stat().st_size
    if size < 2:
        return False
    with open(p, "r+b") as handle:
        handle.truncate(size // 2)
    return True


@dataclass
class ChaosReport:
    """What one chaos soak survived, and whether the books balance."""

    traffic: TrafficReport
    ledger: dict
    incarnations: int
    scheduler_kills: int
    worker_kills: int
    tears_applied: int
    crash_targets: int
    job_retries: int
    preemptions: int
    recovered_jobs: int
    #: None when verification was skipped, else the oracle comparison.
    bit_identical: bool | None
    verified_jobs: int

    def conserved(self) -> bool:
        """The soak-level invariant: traffic conserved, ledger episodes
        conserved, and no completed front diverged from its oracle."""
        return (
            self.traffic.conserved()
            and bool(self.ledger.get("conserved"))
            and self.bit_identical is not False
        )

    def to_dict(self) -> dict:
        out = asdict(self)
        out["traffic"] = self.traffic.to_dict()
        out["conserved"] = self.conserved()
        return out


async def run_chaos_soak(
    instance,
    *,
    checkpoint_dir,
    plan: ServeFaultPlan | None = None,
    n_jobs: int = 60,
    n_workers: int = 2,
    seed: int = 0,
    budget: int = 96,
    neighborhood: int = 16,
    checkpoint_every: int | None = None,
    max_retries: int = 2,
    tenants: tuple = (("acme", 1.0), ("globex", 1.0)),
    serve_params: ServeParams | None = None,
    pool_params=None,
    obs=NULL_OBS,
    verify_bit_identity: bool = True,
    instances: tuple = (),
) -> ChaosReport:
    """Run the full failure story once and audit the books.

    Submits ``n_jobs`` lockstep jobs (ids ``chaos-00000``…, a high
    priority sprinkled in to force preemption), applies ``plan``'s
    faults — killing and restarting the scheduler over the same
    checkpoint directory so ledger recovery re-admits open episodes —
    and returns a :class:`ChaosReport` whose :meth:`~ChaosReport.conserved`
    must hold for *any* plan: no accepted job lost or double-counted,
    every ledger episode closed exactly once, and every completed
    lockstep front bit-identical to an uninterrupted sequential run.

    ``instances`` (optional) round-robins per-job instance payloads
    into the specs, exactly as in the traffic generators; each
    completed job is then verified against the sequential oracle on
    *its own* instance, and a kill-and-restart proves recovery rebuilds
    per-job instances from the ledger rather than the constructor.
    """
    if plan is None:
        plan = ServeFaultPlan.seeded(seed, n_jobs)
    mix = tuple(instances)
    if checkpoint_every is None:
        # Snapshot at every iteration boundary: a kill then always finds
        # live checkpoints, so recovery (and tearing) has teeth.
        checkpoint_every = max(min(neighborhood, budget // 4), 4)
    if serve_params is None:
        serve_params = ServeParams(
            max_active=4, max_queued=max(2 * n_jobs, 128), pump_interval=0.01
        )
    params = TSMOParams(max_evaluations=budget, neighborhood_size=neighborhood)
    tenant_names = [name for name, _ in tenants]
    specs = [
        JobSpec(
            job_id=f"chaos-{i:05d}",
            tenant=tenant_names[i % len(tenant_names)],
            seed=seed * 1_000_003 + i,
            params=params,
            driver="lockstep",
            # A high-priority job every so often, arriving into a full
            # running set, drives the preemption path.
            priority=5 if i % 9 == 7 else 0,
            max_retries=max_retries,
            retry_backoff_s=0.01,
            instance=mix[i % len(mix)] if mix else None,
        )
        for i in range(n_jobs)
    ]
    checkpoint_dir = Path(checkpoint_dir)

    loop = asyncio.get_running_loop()
    t0 = loop.time()
    outcomes: dict[str, tuple[str, object]] = {}
    kills = sorted(plan.scheduler_kills)
    tears_pending = set(plan.tears)
    tears_applied = 0
    incarnations = 0
    scheduler_kills_done = 0
    peak_active = 0
    agg = {"job_retries": 0, "preemptions": 0, "recovered_jobs": 0}

    while len(outcomes) < len(specs):
        if incarnations > len(kills) + 2:
            raise ServeError(
                f"chaos soak did not converge: {len(outcomes)}/{len(specs)} "
                f"jobs terminal after {incarnations} scheduler incarnations"
            )
        incarnations += 1
        first = incarnations == 1
        scheduler = SolveScheduler(
            instance,
            n_workers=n_workers,
            params=serve_params,
            pool_params=pool_params,
            tenant_weights=dict(tenants),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            obs=obs,
            # Injected faults belong to the first incarnation; the
            # recovered scheduler proves the clean-recovery path.
            fault_plan=plan.pool_plan() if first else None,
            chaos=plan if first else None,
        )
        killed = False
        scheduler.start()  # recovers the previous incarnation's open episodes
        handles = dict(scheduler._jobs)
        # High-priority jobs are held back on the first incarnation so
        # they *arrive* into a full running set — that, not queue order,
        # is what drives the preemption path.
        late: list[JobSpec] = []
        for spec in specs:
            if spec.job_id in outcomes or spec.job_id in handles:
                continue
            if first and spec.priority > 0:
                late.append(spec)
                continue
            handles[spec.job_id] = scheduler.submit(spec)
        kill_at = kills[scheduler_kills_done] if scheduler_kills_done < len(kills) else None
        while True:
            done_ids = [jid for jid, job in handles.items() if job.done()]
            if late and (done_ids or not handles):
                for spec in late:
                    handles[spec.job_id] = scheduler.submit(spec)
                late = []
                continue
            if kill_at is not None and len(outcomes) + len(done_ids) >= kill_at:
                killed = True
                break
            if len(done_ids) == len(handles):
                break
            await asyncio.sleep(0.02)
        # Collect terminal outcomes *before* tearing anything down —
        # an aborted scheduler cancels the remaining futures.
        for jid, job in handles.items():
            if jid in outcomes or not job.done():
                continue
            future = job._future
            if future.cancelled():
                continue
            exc = future.exception()
            if exc is None:
                outcomes[jid] = ("completed", future.result())
            elif isinstance(exc, JobCancelled):
                outcomes[jid] = ("cancelled", None)
            else:
                outcomes[jid] = ("failed", repr(exc))
        report = scheduler.report()
        peak_active = max(peak_active, report["peak_active"])
        for key in agg:
            agg[key] += report[key]
        if killed:
            scheduler_kills_done += 1
            await scheduler.abort()
            if tears_pending:
                for jid in sorted(tears_pending):
                    path = checkpoint_dir / f"serve_{jid}.ckpt"
                    if tear_checkpoint(path):
                        tears_applied += 1
                if not tears_applied:
                    # The named jobs finished before the kill: tear any
                    # surviving snapshot so the corrupt-resume path is
                    # still exercised.
                    for path in sorted(checkpoint_dir.glob("serve_*.ckpt")):
                        if tear_checkpoint(path):
                            tears_applied += 1
                            break
                tears_pending.clear()
        else:
            await scheduler.close()

    makespan = loop.time() - t0
    results = [res for kind, res in outcomes.values() if kind == "completed"]
    completed = len(results)
    cancelled = sum(1 for kind, _ in outcomes.values() if kind == "cancelled")
    failed = sum(1 for kind, _ in outcomes.values() if kind == "failed")
    traffic = TrafficReport(
        n_jobs=len(specs),
        accepted=len(specs),
        rejected=0,
        completed=completed,
        cancelled=cancelled,
        failed=failed,
        lost=len(specs) - len(outcomes),
        duplicates=completed
        - len({r.extra.get("job_id") for r in results}),
        short_of_budget=sum(1 for r in results if r.evaluations < budget),
        makespan_s=makespan,
        jobs_per_sec=completed / makespan if makespan > 0 else 0.0,
        peak_active=peak_active,
        job_retries=agg["job_retries"],
        preemptions=agg["preemptions"],
        recovered_jobs=agg["recovered_jobs"],
    )

    verified = 0
    bit_identical: bool | None = None
    if verify_bit_identity:
        bit_identical = True
        by_id = {spec.job_id: spec for spec in specs}
        for jid, (kind, result) in outcomes.items():
            spec = by_id[jid]
            if kind != "completed" or spec.driver != "lockstep":
                continue
            own = spec.instance if spec.instance is not None else instance
            oracle = run_sequential_tsmo(own, spec.params, seed=spec.seed)
            verified += 1
            if not (
                result.evaluations == oracle.evaluations
                and result.iterations == oracle.iterations
                and result.restarts == oracle.restarts
                and np.array_equal(result.front(), oracle.front())
            ):
                bit_identical = False

    ledger = JobLedger(checkpoint_dir / LEDGER_FILENAME)
    return ChaosReport(
        traffic=traffic,
        ledger=ledger.audit() if ledger.exists() else {"conserved": False},
        incarnations=incarnations,
        scheduler_kills=scheduler_kills_done,
        worker_kills=len(plan.worker_kills),
        tears_applied=tears_applied,
        crash_targets=len(plan.crashes),
        job_retries=agg["job_retries"],
        preemptions=agg["preemptions"],
        recovered_jobs=agg["recovered_jobs"],
        bit_identical=bit_identical,
        verified_jobs=verified,
    )
