"""The packed CVRPTW instance.

:class:`Instance` is the numerical heart of the substrate: it stores
site data as contiguous ``numpy`` arrays (depot at index 0) plus the
precomputed Euclidean travel-cost matrix, because evaluation — the hot
path identified in DESIGN.md — is array gathers over these buffers.

Invariants enforced at construction:

* arrays all have length ``N + 1`` and the depot row is site 0;
* demands are non-negative and the depot demand is 0;
* time windows are not inverted and lie within the depot horizon;
* no single customer demand exceeds the vehicle capacity (otherwise the
  instance is trivially infeasible for any fleet);
* the fleet has at least one vehicle.

All arrays are made read-only so instances can be shared freely between
the simulated processors without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import InstanceError
from repro.vrptw.customer import Customer, Depot
from repro.vrptw.distance import euclidean_matrix

__all__ = ["Instance"]


def _readonly(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a)
    a.setflags(write=False)
    return a


@dataclass(frozen=True)
class Instance:
    """A capacitated VRP instance with (soft) time windows.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"R1_4_1"`` in the
        Gehring–Homberger naming scheme.
    x, y:
        Site coordinates, depot first, length ``N + 1``.
    demand:
        Demands ``d_i`` (``d_0 == 0``).
    ready_time, due_date:
        Time windows ``[a_i, b_i]``; the depot window is
        ``[0, horizon]``.
    service_time:
        Service delays ``c_i`` (``c_0 == 0``).
    capacity:
        Homogeneous vehicle capacity ``m``.
    n_vehicles:
        Fleet size ``R`` — the maximum number of vehicles available at
        the depot (paper: 25 for the 100-city problems up to 100 for
        the 400-city problems).
    """

    name: str
    x: np.ndarray
    y: np.ndarray
    demand: np.ndarray
    ready_time: np.ndarray
    due_date: np.ndarray
    service_time: np.ndarray
    capacity: float
    n_vehicles: int
    travel: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        arrays = {
            "x": np.asarray(self.x, dtype=np.float64),
            "y": np.asarray(self.y, dtype=np.float64),
            "demand": np.asarray(self.demand, dtype=np.float64),
            "ready_time": np.asarray(self.ready_time, dtype=np.float64),
            "due_date": np.asarray(self.due_date, dtype=np.float64),
            "service_time": np.asarray(self.service_time, dtype=np.float64),
        }
        n_sites = arrays["x"].shape[0]
        if n_sites < 2:
            raise InstanceError("an instance needs a depot and at least one customer")
        for label, arr in arrays.items():
            if arr.ndim != 1:
                raise InstanceError(f"{label} must be one-dimensional")
            if arr.shape[0] != n_sites:
                raise InstanceError(
                    f"{label} has length {arr.shape[0]}, expected {n_sites}"
                )
            if not np.all(np.isfinite(arr)):
                raise InstanceError(f"{label} contains non-finite values")
        if self.n_vehicles < 1:
            raise InstanceError(f"fleet size must be >= 1, got {self.n_vehicles}")
        if self.capacity <= 0:
            raise InstanceError(f"vehicle capacity must be positive, got {self.capacity}")
        if arrays["demand"][0] != 0:
            raise InstanceError("depot demand must be zero")
        if arrays["service_time"][0] != 0:
            raise InstanceError("depot service time must be zero")
        if np.any(arrays["demand"] < 0):
            raise InstanceError("demands must be non-negative")
        if np.any(arrays["service_time"] < 0):
            raise InstanceError("service times must be non-negative")
        if np.any(arrays["due_date"] < arrays["ready_time"]):
            bad = int(np.argmax(arrays["due_date"] < arrays["ready_time"]))
            raise InstanceError(f"site {bad} has an inverted time window")
        if np.any(arrays["demand"][1:] > self.capacity):
            bad = 1 + int(np.argmax(arrays["demand"][1:] > self.capacity))
            raise InstanceError(
                f"customer {bad} demand {arrays['demand'][bad]} exceeds capacity "
                f"{self.capacity}; instance is trivially infeasible"
            )
        for label, arr in arrays.items():
            object.__setattr__(self, label, _readonly(arr))
        travel = euclidean_matrix(arrays["x"], arrays["y"])
        object.__setattr__(self, "travel", _readonly(travel))
        self._install_views()

    def _install_views(self) -> None:
        # Fast plain-Python views for the schedule scan in
        # repro.core.routes: route evaluation walks sites one at a time,
        # where list indexing beats numpy scalar extraction by ~3x (see
        # DESIGN.md "vectorized evaluation" note — the scan itself cannot
        # be vectorized because arrival times chain through max()).
        ready_l = self.ready_time.tolist()
        service_l = self.service_time.tolist()
        object.__setattr__(self, "_ready_l", ready_l)
        object.__setattr__(self, "_due_l", self.due_date.tolist())
        object.__setattr__(self, "_service_l", service_l)
        object.__setattr__(self, "_demand_l", self.demand.tolist())
        object.__setattr__(self, "_travel_rows", self.travel.tolist())
        # Earliest departure ready_i + service_i, the left term of every
        # edge-admissibility check (feasibility.py) — summed here once so
        # the operators' inlined checks do one add instead of two.
        object.__setattr__(
            self, "_depart_l", [r + s for r, s in zip(ready_l, service_l)]
        )

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def n_customers(self) -> int:
        """Number of customers ``N`` (sites excluding the depot)."""
        return self.x.shape[0] - 1

    @property
    def n_sites(self) -> int:
        """Number of sites ``N + 1`` (customers plus depot)."""
        return self.x.shape[0]

    @property
    def horizon(self) -> float:
        """The depot due date — the end of the planning horizon."""
        return float(self.due_date[0])

    @property
    def permutation_length(self) -> int:
        """Length ``L = N + R + 1`` of the giant-tour permutation (§II.A)."""
        return self.n_customers + self.n_vehicles + 1

    @property
    def total_demand(self) -> float:
        """Sum of all customer demands."""
        return float(self.demand.sum())

    @property
    def min_vehicles_by_capacity(self) -> int:
        """A lower bound on the number of vehicles: ceil(total demand / m)."""
        return int(np.ceil(self.total_demand / self.capacity))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def depot(self) -> Depot:
        """The depot as a record."""
        return Depot(x=float(self.x[0]), y=float(self.y[0]), horizon=self.horizon)

    def customer(self, index: int) -> Customer:
        """Return customer ``index`` (1-based) as a record."""
        if not 1 <= index <= self.n_customers:
            raise InstanceError(
                f"customer index {index} out of range 1..{self.n_customers}"
            )
        return Customer(
            index=index,
            x=float(self.x[index]),
            y=float(self.y[index]),
            demand=float(self.demand[index]),
            ready_time=float(self.ready_time[index]),
            due_date=float(self.due_date[index]),
            service_time=float(self.service_time[index]),
        )

    def customers(self) -> Iterator[Customer]:
        """Iterate over all customers in index order."""
        for i in range(1, self.n_customers + 1):
            yield self.customer(i)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def distance(self, i: int, j: int) -> float:
        """Travel cost ``t_{i,j}`` between two sites."""
        return float(self.travel[i, j])

    @classmethod
    def from_customers(
        cls,
        name: str,
        depot: Depot,
        customers: list[Customer],
        capacity: float,
        n_vehicles: int,
    ) -> "Instance":
        """Build an instance from site records (depot + customers).

        Customer records may arrive in any order; they are placed at
        their declared indices, which must form ``1..N`` exactly.
        """
        n = len(customers)
        indices = sorted(c.index for c in customers)
        if indices != list(range(1, n + 1)):
            raise InstanceError(
                f"customer indices must be exactly 1..{n}, got {indices[:5]}..."
            )
        x = np.empty(n + 1)
        y = np.empty(n + 1)
        demand = np.zeros(n + 1)
        ready = np.zeros(n + 1)
        due = np.empty(n + 1)
        service = np.zeros(n + 1)
        x[0], y[0], due[0] = depot.x, depot.y, depot.horizon
        for c in customers:
            x[c.index] = c.x
            y[c.index] = c.y
            demand[c.index] = c.demand
            ready[c.index] = c.ready_time
            due[c.index] = c.due_date
            service[c.index] = c.service_time
        return cls(
            name=name,
            x=x,
            y=y,
            demand=demand,
            ready_time=ready,
            due_date=due,
            service_time=service,
            capacity=capacity,
            n_vehicles=n_vehicles,
        )

    @classmethod
    def from_validated_arrays(
        cls,
        name: str,
        x: np.ndarray,
        y: np.ndarray,
        demand: np.ndarray,
        ready_time: np.ndarray,
        due_date: np.ndarray,
        service_time: np.ndarray,
        travel: np.ndarray,
        capacity: float,
        n_vehicles: int,
    ) -> "Instance":
        """Rehydrate an instance from arrays that already passed validation.

        The shared-memory attach path (``repro.parallel.shm``): the
        arrays come from an :class:`Instance` the master validated, and
        the travel matrix was computed once there, so this constructor
        skips both the invariant checks and the ``euclidean_matrix``
        recompute (the O(N^2) part of construction).  It must never be
        fed arrays of unknown provenance.

        Arrays are wrapped read-only without copying; buffers backed by
        shared memory stay shared (only the plain-list evaluation views
        are materialized per process).
        """
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        for label, arr in (
            ("x", x),
            ("y", y),
            ("demand", demand),
            ("ready_time", ready_time),
            ("due_date", due_date),
            ("service_time", service_time),
            ("travel", travel),
        ):
            view = arr.view()
            view.setflags(write=False)
            object.__setattr__(self, label, view)
        object.__setattr__(self, "capacity", capacity)
        object.__setattr__(self, "n_vehicles", n_vehicles)
        self._install_views()
        return self

    def __repr__(self) -> str:
        return (
            f"Instance({self.name!r}, customers={self.n_customers}, "
            f"vehicles={self.n_vehicles}, capacity={self.capacity})"
        )
