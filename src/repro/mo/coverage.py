"""Zitzler's set coverage metric ``C(A, B)`` (paper §IV, column 4).

"This metric measures the ratio between dominated and total solutions
of one algorithm against the solutions found by another.  The first
value shows the percentage of solutions found by one algorithm that
dominate those found by the other algorithms, whereas the second value
shows the percentage of domination of the other algorithms compared to
the one we are looking at."

Following Zitzler (1999), ``C(A, B)`` is the fraction of points in B
that are *weakly* dominated by at least one point of A.  ``C(A, B) ==
1`` means A covers B entirely; the metric is not symmetric, which is
why the paper prints both directions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mo.dominance import as_points

__all__ = ["set_coverage", "mutual_coverage"]


def set_coverage(a: Sequence | np.ndarray, b: Sequence | np.ndarray) -> float:
    """Fraction of points of ``b`` weakly dominated by some point of ``a``.

    Edge conventions (needed when a run produced no feasible
    solutions): ``C(∅, B) = 0`` for any B — an empty archive covers
    nothing, *including another empty archive* — and ``C(A, ∅) = 1``
    for non-empty A (vacuous coverage).  The empty-A check comes first
    so that ``C(∅, ∅) == 0``: two runs that both produced nothing must
    not be reported as fully covering each other.
    """
    pa = as_points(a)
    pb = as_points(b)
    if pa.shape[0] == 0:
        return 0.0
    if pb.shape[0] == 0:
        return 1.0
    # covered[j] == True iff some row of A weakly dominates B[j].
    le = np.all(pa[:, None, :] <= pb[None, :, :], axis=2)
    covered = le.any(axis=0)
    return float(covered.mean())


def mutual_coverage(
    a: Sequence | np.ndarray, b: Sequence | np.ndarray
) -> tuple[float, float]:
    """Both directions at once: ``(C(A, B), C(B, A))``."""
    return set_coverage(a, b), set_coverage(b, a)
