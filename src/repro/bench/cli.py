"""Command-line entry point: ``repro-bench`` (or ``python -m repro.bench.cli``).

Examples::

    repro-bench table1                 # regenerate Table I at bench scale
    repro-bench all --runs 5           # all four tables, 5 runs each
    repro-bench fig1                   # Figure-1 trajectory (ASCII)
    repro-bench table1 --save t1.json  # persist the run matrix
    repro-bench render t1.json         # re-render without re-running
    REPRO_BENCH_SCALE=paper repro-bench table1   # full-size protocol

Crash recovery::

    repro-bench table1 --checkpoint-dir ckpt --save t1.json
    # ... killed (SIGTERM, SIGKILL, power loss) ...
    repro-bench table1 --checkpoint-dir ckpt --save t1.json --resume

``--resume`` skips every cell journaled in the run manifest and
restores the interrupted cell from its latest snapshot; the completed
table is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.config import BenchConfig
from repro.bench.figures import fig1_trajectory, render_ascii
from repro.bench.report import render_profile, render_table
from repro.bench.runner import run_table
from repro.errors import SearchInterrupted
from repro.obs import ENV_OBS
from repro.persistence import ENV_CRASH_AFTER, CheckpointPlan
from repro.vrptw.catalog import TABLE_GROUPS

__all__ = ["main"]

_TABLE_TITLES = {
    "table1": "Table I  - 400-city classes C1/R1 (small time windows)",
    "table2": "Table II - 400-city classes C2/R2 (large time windows)",
    "table3": "Table III - 600-city classes C1/R1 (small time windows)",
    "table4": "Table IV - 600-city classes C2/R2 (large time windows)",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figure of Beham (IPPS 2007).",
    )
    parser.add_argument(
        "target",
        choices=[*sorted(TABLE_GROUPS), "all", "fig1", "render"],
        help="which experiment to run ('render' re-renders a saved JSON matrix)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="saved run-matrix JSON (for the 'render' target)",
    )
    parser.add_argument(
        "--save",
        metavar="FILE",
        default=None,
        help="also write the run matrix as JSON for later re-rendering",
    )
    parser.add_argument("--runs", type=int, default=None, help="runs per instance")
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--evaluations", type=int, default=None, help="evaluation budget per run"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="journal completed cells and snapshot in-flight searches here",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot every N evaluations (default: ~10 snapshots per run)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from --checkpoint-dir",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="instrument the runs and print a per-phase timing table "
        "per driver (implies REPRO_OBS=1; for 'render', reads stored "
        "profiles)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    config = BenchConfig.from_env()
    if args.runs is not None:
        config = config.with_overrides(runs=args.runs)
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    if args.evaluations is not None:
        config = config.with_overrides(max_evaluations=args.evaluations)
    if args.checkpoint_every is not None:
        config = config.with_overrides(checkpoint_every=args.checkpoint_every)

    if args.resume and not args.checkpoint_dir:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    if args.profile and not os.environ.get("REPRO_TRACE_DIR"):
        # In-memory instrumentation is enough for the timing table; a
        # JSONL trace still needs an explicit REPRO_TRACE_DIR.
        os.environ[ENV_OBS] = "1"
    plan = None
    if args.checkpoint_dir:
        every = config.checkpoint_every
        if every is None:
            # Roughly ten snapshots over the course of each run.
            every = max(1, config.max_evaluations // 10)
        crash_raw = os.environ.get(ENV_CRASH_AFTER, "").strip()
        plan = CheckpointPlan(
            args.checkpoint_dir,
            every=every,
            resume=args.resume,
            crash_after=int(crash_raw) if crash_raw else None,
        )

    if args.target == "fig1":
        data = fig1_trajectory(config)
        print(render_ascii(data))
        return 0

    if args.target == "render":
        from repro.bench.storage import load_table_data

        if not args.path:
            print("render needs a saved JSON path", file=sys.stderr)
            return 2
        data = load_table_data(args.path)
        print(render_table(data, title=_TABLE_TITLES.get(data.table, data.table)))
        if args.profile:
            print(render_profile(data))
        return 0

    tables = sorted(TABLE_GROUPS) if args.target == "all" else [args.target]
    progress = None if args.quiet else lambda msg: print(f"  ... {msg}", file=sys.stderr)
    for table in tables:
        start = time.perf_counter()
        try:
            data = run_table(table, config, progress=progress, checkpoint=plan)
        except SearchInterrupted as exc:
            where = f" (snapshot: {exc.path})" if exc.path else ""
            print(
                f"interrupted during {table}; resume with --resume{where}",
                file=sys.stderr,
            )
            return 130
        elapsed = time.perf_counter() - start
        print(render_table(data, title=_TABLE_TITLES[table]))
        if args.profile:
            print(render_profile(data))
            print()
        print(f"(regenerated in {elapsed:.1f}s wall time at bench scale)\n")
        if args.save:
            from repro.bench.storage import save_table_data

            suffix = "" if len(tables) == 1 else f".{table}"
            out = save_table_data(data, f"{args.save}{suffix}")
            print(f"(run matrix saved to {out})\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
