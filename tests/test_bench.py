"""Tests for the benchmark harness: config, runner, tables, report, figures."""

import numpy as np
import pytest

from repro.bench.config import BenchConfig
from repro.bench.figures import fig1_trajectory, render_ascii
from repro.bench.report import render_table
from repro.bench.runner import ALGORITHMS, run_configuration, run_table
from repro.bench.tables import TableData
from repro.errors import BenchmarkError
from repro.vrptw.catalog import instances_for_table


@pytest.fixture(scope="module")
def quick_config():
    return BenchConfig.quick().with_overrides(runs=2, max_evaluations=500)


@pytest.fixture(scope="module")
def table_data(quick_config):
    """One quick table-1 run shared by the assertions below."""
    return run_table("table1", quick_config)


class TestBenchConfig:
    def test_defaults_valid(self):
        cfg = BenchConfig()
        assert cfg.tsmo_params().neighborhood_size == cfg.neighborhood_size

    def test_paper_protocol(self):
        cfg = BenchConfig.paper()
        assert cfg.city_fraction == 1.0
        assert cfg.max_evaluations == 100_000
        assert cfg.neighborhood_size == 200
        assert cfg.runs == 30

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        cfg = BenchConfig.from_env()
        assert cfg.max_evaluations == 2 * BenchConfig().max_evaluations

    def test_env_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert BenchConfig.from_env().city_fraction == 1.0

    def test_env_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(BenchmarkError):
            BenchConfig.from_env()

    def test_env_runs_and_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RUNS", "7")
        monkeypatch.setenv("REPRO_BENCH_SEED", "99")
        cfg = BenchConfig.from_env()
        assert cfg.runs == 7 and cfg.seed == 99

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            BenchConfig(city_fraction=0.0)
        with pytest.raises(BenchmarkError):
            BenchConfig(processors=(1,))


class TestRunner:
    def test_unknown_algorithm(self, quick_config):
        instance = instances_for_table("table1", scale=0.05)[0].build()
        with pytest.raises(BenchmarkError, match="unknown algorithm"):
            run_configuration("genetic", instance, quick_config, 3, 1)

    def test_matrix_complete(self, table_data, quick_config):
        configs = table_data.configs()
        assert ("sequential", 1) in configs
        expected = 1 + 3 * len(quick_config.processors)
        assert len(configs) == expected

    def test_runs_per_config(self, table_data, quick_config):
        runs = table_data.runs_of(("sequential", 1))
        # 2 instances (C1 + R1) x runs
        assert len(runs) == 2 * quick_config.runs

    def test_all_algorithms_present(self, table_data):
        present = {key[0] for key in table_data.configs()}
        assert present == set(ALGORITHMS)


class TestTableData:
    def test_summary_rows(self, table_data):
        s = table_data.summary(("sequential", 1))
        assert s.distance.mean > 0
        assert s.runtime.mean > 0

    def test_coverage_pair_bounds(self, table_data):
        out_cov, in_cov = table_data.coverage_pair(("collaborative", 12))
        assert 0.0 <= out_cov <= 1.0
        assert 0.0 <= in_cov <= 1.0

    def test_speedup_positive(self, table_data):
        for p in (3, 6, 12):
            assert table_data.speedup_of(("asynchronous", p)) > 0

    def test_missing_config(self, table_data):
        with pytest.raises(BenchmarkError):
            table_data.runs_of(("genetic", 3))

    def test_significance_report_covers_sync_and_coll(self, table_data):
        report = table_data.significance_report()
        labels = {t.label_a.split("@")[0] for t in report}
        assert labels == {"synchronous", "collaborative"}
        assert len(report) == 6  # 2 algorithms x 3 processor counts

    def test_display_order(self, table_data):
        configs = table_data.configs()
        assert configs[0] == ("sequential", 1)
        # Blocks ordered by processor count.
        procs = [key[1] for key in configs[1:]]
        assert procs == sorted(procs)


class TestReport:
    def test_render_contains_all_rows(self, table_data):
        text = render_table(table_data, title="Quick Table I")
        assert "Quick Table I" in text
        assert "Sequential TSMO" in text
        assert text.count("TSMO sync.") == 3
        assert text.count("TSMO async.") == 3
        assert text.count("TSMO coll.") == 3
        assert "t-tests" in text

    def test_render_row_formats(self, table_data):
        text = render_table(table_data)
        # coverage cells look like "12.34% <-> 56.78%".
        assert "<->" in text
        assert "%" in text


class TestFigure1:
    def test_trajectory_data(self):
        cfg = BenchConfig.quick().with_overrides(max_evaluations=600)
        data = fig1_trajectory(cfg, n_processors=3, seed=1)
        assert data.neighbors.shape[1] == 5
        assert data.selections.shape[0] > 0
        assert data.iterations > 0

    def test_ascii_render(self):
        cfg = BenchConfig.quick().with_overrides(max_evaluations=600)
        data = fig1_trajectory(cfg, n_processors=3, seed=1)
        art = render_ascii(data)
        assert "Figure 1" in art
        assert "o" in art or "O" in art

    def test_carryover_present_in_async_trajectory(self):
        cfg = BenchConfig.quick().with_overrides(max_evaluations=1500)
        totals = [
            fig1_trajectory(cfg, n_processors=6, seed=s).carryover_neighbors
            for s in (1, 2)
        ]
        assert sum(totals) > 0
