"""Search-trajectory recording (the data behind Figure 1).

Figure 1 of the paper shows "a fictional search trajectory for the
asynchronous TS approaching the pareto-optimal front.  The numbers
denote the iteration at which the solution was created.  Equal numbers
denote solutions belonging to the same neighborhood.  The circles mark
solutions which have been selected as current solutions."

:class:`TrajectoryRecorder` captures exactly those series from a real
run: every evaluated neighbor with its creation iteration, every
selected current solution with the iteration that selected it (which,
for the asynchronous variant, can differ from its creation iteration —
the carryover the figure illustrates), and the archive front over
time.

The recorder predates the unified event stream in :mod:`repro.obs`;
its public API is kept as-is (it is the cheapest way to build the
Figure-1 arrays), but it now doubles as a thin shim: attach an
:class:`~repro.obs.events.EventTracer` and every selection and archive
change is mirrored onto the structured ``move_applied`` /
``archive_update`` event types, so trajectory data and the JSONL trace
come from one recording path.  Per-neighbor points are deliberately
*not* mirrored — they are the hot path and the event schema has no
per-neighbor type by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.objectives import ObjectiveVector
from repro.obs.events import NULL_TRACER

__all__ = ["TrajectoryRecorder", "TrajectoryPoint"]


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One recorded event of the search trajectory."""

    created_iteration: int
    selected_iteration: int  # -1 for neighbors never selected
    distance: float
    vehicles: int
    tardiness: float
    restarted: bool = False


@dataclass
class TrajectoryRecorder:
    """Collects trajectory events during a search run.

    ``max_neighbors`` caps the stored neighbor points (selected points
    are always kept) so long runs do not hoard memory.
    """

    max_neighbors: int | None = 100_000
    neighbors: list[TrajectoryPoint] = field(default_factory=list)
    selections: list[TrajectoryPoint] = field(default_factory=list)
    archive_sizes: list[tuple[int, int]] = field(default_factory=list)
    #: cumulative route-stats cache counters per iteration:
    #: ``(iteration, hits, misses, evictions)``.
    cache_timeline: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: optional structured-event mirror (see module docstring).  Not
    #: part of the checkpointed state — the JSONL sink is durable on
    #: its own and the ring is advisory.
    tracer: object = field(default=NULL_TRACER, repr=False, compare=False)

    def record_neighbor(self, iteration: int, objectives: ObjectiveVector) -> None:
        """Record one evaluated neighbor."""
        if self.max_neighbors is not None and len(self.neighbors) >= self.max_neighbors:
            return
        self.neighbors.append(
            TrajectoryPoint(
                created_iteration=iteration,
                selected_iteration=-1,
                distance=objectives.distance,
                vehicles=objectives.vehicles,
                tardiness=objectives.tardiness,
            )
        )

    def record_selection(
        self,
        created_iteration: int,
        selected_iteration: int,
        objectives: ObjectiveVector,
        *,
        restarted: bool = False,
    ) -> None:
        """Record a solution chosen as the new current solution."""
        self.selections.append(
            TrajectoryPoint(
                created_iteration=created_iteration,
                selected_iteration=selected_iteration,
                distance=objectives.distance,
                vehicles=objectives.vehicles,
                tardiness=objectives.tardiness,
                restarted=restarted,
            )
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "move_applied",
                iteration=selected_iteration,
                objectives=[
                    objectives.distance,
                    objectives.vehicles,
                    objectives.tardiness,
                ],
                created=created_iteration,
                restarted=restarted,
            )

    def record_archive_size(self, iteration: int, size: int) -> None:
        """Record the archive occupancy after an iteration."""
        self.archive_sizes.append((iteration, size))
        if self.tracer.enabled:
            self.tracer.emit(
                "archive_update", iteration=iteration, archive_size=size
            )

    def record_cache(
        self, iteration: int, hits: int, misses: int, evictions: int
    ) -> None:
        """Record the (cumulative) route-stats cache counters."""
        self.cache_timeline.append((iteration, hits, misses, evictions))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot all recorded series (points are frozen dataclasses,
        so sharing the tuples with the checkpoint payload is safe)."""
        return {
            "max_neighbors": self.max_neighbors,
            "neighbors": list(self.neighbors),
            "selections": list(self.selections),
            "archive_sizes": list(self.archive_sizes),
            "cache_timeline": list(self.cache_timeline),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the recorder exactly as exported."""
        self.max_neighbors = state["max_neighbors"]
        self.neighbors = list(state["neighbors"])
        self.selections = list(state["selections"])
        self.archive_sizes = list(state["archive_sizes"])
        self.cache_timeline = list(state["cache_timeline"])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def neighbors_array(self) -> np.ndarray:
        """Neighbors as an ``(n, 5)`` array:
        ``[created_iter, selected_iter, f1, f2, f3]``."""
        return _points_to_array(self.neighbors)

    def selections_array(self) -> np.ndarray:
        """Selected currents as an ``(n, 5)`` array (same columns)."""
        return _points_to_array(self.selections)

    def cache_array(self) -> np.ndarray:
        """Cache timeline as an ``(n, 4)`` array:
        ``[iteration, hits, misses, evictions]`` (cumulative)."""
        if not self.cache_timeline:
            return np.zeros((0, 4))
        return np.array(self.cache_timeline, dtype=np.float64)

    @property
    def carryover_count(self) -> int:
        """Selections whose solution was created in an *earlier*
        iteration than the one that selected it — the asynchronous
        behavior Figure 1 illustrates (always 0 for the sequential and
        synchronous variants)."""
        return sum(
            1
            for p in self.selections
            if not p.restarted and p.selected_iteration > p.created_iteration
        )


def _points_to_array(points: list[TrajectoryPoint]) -> np.ndarray:
    if not points:
        return np.zeros((0, 5))
    return np.array(
        [
            (p.created_iteration, p.selected_iteration, p.distance, p.vehicles, p.tardiness)
            for p in points
        ],
        dtype=np.float64,
    )
