"""Experiment harness regenerating the paper's tables and figure.

* :mod:`repro.bench.config` — scaling knobs (laptop-size defaults,
  ``REPRO_BENCH_SCALE=paper`` for the full-size protocol);
* :mod:`repro.bench.runner` — the run matrix (algorithm × processors ×
  instance × seed) behind each table;
* :mod:`repro.bench.tables` — row assembly: quality, runtime, set
  coverage, speedup, t-tests;
* :mod:`repro.bench.figures` — the Figure-1 trajectory data;
* :mod:`repro.bench.report` — paper-style text rendering;
* :mod:`repro.bench.cli` — ``repro-bench`` command-line entry point.
"""

from repro.bench.config import BenchConfig
from repro.bench.report import render_table
from repro.bench.runner import run_table
from repro.bench.storage import load_table_data, save_table_data
from repro.bench.tables import TableData

__all__ = [
    "BenchConfig",
    "TableData",
    "load_table_data",
    "render_table",
    "run_table",
    "save_table_data",
]
