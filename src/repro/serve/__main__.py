"""``python -m repro.serve`` — the traffic-generator benchmark.

Runs a reproducible open-loop workload against a fresh scheduler and
prints (and optionally writes) the service-level numbers; with
``--smoke`` it exits non-zero unless the exactly-once audit holds —
this is the command the CI ``serve`` job runs.

Example::

    PYTHONPATH=src python -m repro.serve --jobs 60 --rate 500 \\
        --workers 2 --budget 96 --neighborhood 16 \\
        --tenants acme:3,globex:1 --out BENCH_serve.json --smoke

``--chaos`` switches to the deterministic chaos soak instead: the same
jobs are driven through seeded worker kills, a scheduler
kill-and-restart (with ledger recovery), torn checkpoints and injected
crashes, and the run must still conserve every job::

    PYTHONPATH=src python -m repro.serve --chaos --jobs 60 \\
        --checkpoint-dir /tmp/serve-chaos --out BENCH_chaos.json --smoke

``--faults`` (or ``REPRO_SERVE_FAULTS``) overrides the seeded schedule
with an explicit one, e.g.
``kill-worker:0@3,stall:12:0.05,kill-scheduler:20,tear:chaos-00021``.

``--soak SECONDS`` switches to the sustained-load soak: instead of a
fixed job count, a fixed arrival rate is held for the duration and the
report is the *steady-state* SLO section (warmup-trimmed p50/p95/p99,
max backlog, event-drop counters), folded into ``--out`` under a
``"soak"`` key.  ``--watch`` (usable with any mode that runs a local
scheduler) tails the live telemetry bus and prints one status line per
``metrics_snapshot`` — jobs in flight, queue depth, DRR deficits and
running latency quantiles — without perturbing the run::

    PYTHONPATH=src python -m repro.serve --soak 30 --warmup 5 \\
        --rate 10 --workers 2 --watch --out BENCH_serve.json --smoke

``--instances CLASS:SIZE[:SEED],...`` makes the workload
multi-instance: every generated instance rides its job's spec as a
shared-memory payload, round-robin across arrivals (the first listed
instance doubles as the scheduler default).  ``--tail-port PORT``
additionally serves the telemetry bus over TCP, and ``--connect
HOST:PORT`` turns this command into a pure client of such a server —
no scheduler, no pool, just the remote event stream rendered exactly
like ``--watch``::

    # terminal 1: serve a mixed-instance soak with a tail server
    PYTHONPATH=src python -m repro.serve --soak 30 --rate 10 \\
        --instances R1:20,C1:16:7 --tail-port 9400

    # terminal 2 (any machine): watch it live
    PYTHONPATH=src python -m repro.serve --watch --connect 127.0.0.1:9400
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys

from repro.obs.expo import quantile_from_histogram, render_exposition
from repro.obs.timeutil import utc_timestamp
from repro.serve.chaos import ServeFaultPlan, run_chaos_soak
from repro.serve.scheduler import ServeParams, SolveScheduler
from repro.serve.traffic import (
    SoakConfig,
    TrafficConfig,
    run_soak,
    run_traffic,
    write_report,
)
from repro.vrptw.generator import generate_instance


def _parse_instances(text: str) -> tuple:
    """Parse ``CLASS:SIZE[:SEED],...`` into generated instances.

    The seed defaults to each entry's position so two unseeded entries
    of the same class/size still produce *different* instances — the
    point of a mixed-instance run.
    """
    instances = []
    for position, part in enumerate(text.split(",")):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) not in (2, 3):
            raise argparse.ArgumentTypeError(
                f"bad instance spec {part!r} (expected CLASS:SIZE[:SEED])"
            )
        klass = pieces[0]
        try:
            size = int(pieces[1])
            seed = int(pieces[2]) if len(pieces) == 3 else position
        except ValueError as exc:
            raise argparse.ArgumentTypeError(
                f"bad instance spec {part!r}: {exc}"
            ) from None
        instances.append(generate_instance(klass, size, seed=seed))
    if not instances:
        raise argparse.ArgumentTypeError("--instances needs at least one entry")
    return tuple(instances)


def _parse_connect(text: str) -> tuple:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"bad --connect address {text!r} (expected HOST:PORT)"
        )
    return host, int(port)


def _parse_tenants(text: str) -> tuple:
    tenants = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        tenants.append((name, float(weight) if weight else 1.0))
    return tuple(tenants) or (("default", 1.0),)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--jobs", type=int, default=50, help="jobs to submit")
    parser.add_argument(
        "--rate", type=float, default=500.0, help="mean arrivals/second (<=0: burst)"
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic + job seed base")
    parser.add_argument("--workers", type=int, default=2, help="pool worker processes")
    parser.add_argument("--budget", type=int, default=96, help="evaluations per job")
    parser.add_argument(
        "--neighborhood", type=int, default=16, help="neighbors per iteration"
    )
    parser.add_argument(
        "--driver", choices=("lockstep", "split"), default="lockstep"
    )
    parser.add_argument(
        "--n-tasks", type=int, default=1, help="tasks/iteration (split driver)"
    )
    parser.add_argument(
        "--tenants",
        type=_parse_tenants,
        default=(("acme", 1.0), ("globex", 1.0)),
        help="name:weight,... (default acme:1,globex:1)",
    )
    parser.add_argument("--max-active", type=int, default=64)
    parser.add_argument("--max-queued", type=int, default=256)
    parser.add_argument(
        "--cancel-every", type=int, default=0, help="cancel every k-th job (0: never)"
    )
    parser.add_argument(
        "--instance-class", default="R1", help="C1/C2/R1/R2/RC1/RC2"
    )
    parser.add_argument("--instance-size", type=int, default=20)
    parser.add_argument("--instance-seed", type=int, default=55)
    parser.add_argument("--out", default=None, help="write BENCH_serve.json here")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="exit non-zero unless zero jobs were lost or duplicated",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="enable per-job checkpoints + the durable job ledger here",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="default snapshot cadence (evaluations) for all jobs",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the deterministic chaos soak (requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="explicit REPRO_SERVE_FAULTS-style schedule for --chaos "
        "(default: seeded from --seed)",
    )
    parser.add_argument(
        "--soak",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the sustained-load soak for this many seconds instead "
        "of a fixed job count (uses --rate as the sustained arrival rate)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=2.0,
        help="seconds trimmed from the front of the soak before the "
        "steady-state SLO window opens",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="tail the live telemetry bus and print one status line per "
        "metrics snapshot (stderr)",
    )
    parser.add_argument(
        "--expo",
        default=None,
        metavar="PATH",
        help="write a Prometheus-style text exposition of the final "
        "metrics here",
    )
    parser.add_argument(
        "--instances",
        type=_parse_instances,
        default=None,
        metavar="CLASS:SIZE[:SEED],...",
        help="mixed-instance workload: jobs carry these instances "
        "round-robin as shared-memory payloads (first entry is also "
        "the scheduler default)",
    )
    parser.add_argument(
        "--tail-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live telemetry bus over TCP on this port "
        "(0: ephemeral; address is printed at startup)",
    )
    parser.add_argument(
        "--connect",
        type=_parse_connect,
        default=None,
        metavar="HOST:PORT",
        help="pure-client mode: tail a remote scheduler's event stream "
        "instead of running one (combine with --watch / --smoke)",
    )
    return parser


def _fmt_ms(seconds) -> str:
    """Render a latency quantile, or ``-`` when there is no data.

    Empty aggregates are ``None`` (no measurement), never a fabricated
    0 ms — see the traffic-report quantile helpers.
    """
    return f"{seconds * 1e3:.0f}ms" if seconds is not None else "-"


def _watch_line(snapshot: dict) -> str:
    """One human-readable status line per live ``metrics_snapshot``."""
    hist = snapshot.get("metrics", {}).get("histograms", {}).get(
        "serve.job_latency_s"
    )
    p50 = p99 = None
    if hist and hist.get("count", 0) > 0:
        p50 = quantile_from_histogram(hist["bounds"], hist["counts"], 0.50)
        p99 = quantile_from_histogram(hist["bounds"], hist["counts"], 0.99)
    quantiles = f"p50={_fmt_ms(p50)} p99={_fmt_ms(p99)}"
    counters = snapshot.get("counters", {})
    stream = snapshot.get("stream", {})
    deficits = " ".join(
        f"{tenant}={value:.1f}"
        for tenant, value in snapshot.get("deficits", {}).items()
    )
    return (
        f"[watch] active={snapshot.get('jobs_active', 0)} "
        f"queued={snapshot.get('jobs_queued', 0)} "
        f"backlog={snapshot.get('pool_backlog', 0)} "
        f"done={counters.get('completed', 0)} "
        f"rejected={counters.get('rejected', 0)} {quantiles} "
        f"drops={stream.get('dropped', 0)}"
        + (f" | drr {deficits}" if deficits else "")
    )


async def _watch_loop(scheduler) -> None:
    """Print the live snapshot stream until cancelled (or bus close).

    Pure consumer: it subscribes to the scheduler's telemetry bus like
    any other tail, so a slow terminal can only drop *its own* events,
    never slow the pump.
    """
    async for event in scheduler.tail_all():
        if event.get("type") == "metrics_snapshot":
            print(_watch_line(event["snapshot"]), file=sys.stderr, flush=True)


@contextlib.asynccontextmanager
async def _watching(scheduler, enabled: bool):
    task = asyncio.ensure_future(_watch_loop(scheduler)) if enabled else None
    try:
        yield
    finally:
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task


async def _announce_tail(scheduler, enabled: bool) -> None:
    if not enabled:
        return
    host, port = await scheduler.tail_address()
    print(f"serve: tail server listening on {host}:{port}", flush=True)


async def _run_connect(args) -> int:
    """Pure-client mode: tail a remote scheduler and render its stream.

    Prints one ``--watch`` status line per ``metrics_snapshot`` and one
    ``[event]`` line per job lifecycle event; exits when the server
    ends the stream (scheduler shutdown).  With ``--smoke`` the exit
    code asserts the stream was *live*: at least one metrics snapshot
    and at least one terminal ``job_state`` must have arrived.
    """
    from repro.obs.stream import is_terminal_job_event
    from repro.obs.tailserv import tail_client

    host, port = args.connect
    snapshots = 0
    terminals = 0
    events = 0
    async for event in tail_client(host, port):
        events += 1
        kind = event.get("type")
        if kind == "metrics_snapshot":
            snapshots += 1
            print(_watch_line(event["snapshot"]), flush=True)
        elif kind == "job_state":
            if is_terminal_job_event(event):
                terminals += 1
            print(
                f"[event] job={event.get('job')} state={event.get('state')}",
                flush=True,
            )
    print(
        f"serve-connect: stream from {host}:{port} ended after {events} "
        f"event(s) ({snapshots} snapshot(s), {terminals} terminal "
        f"job state(s))"
    )
    if args.smoke and (snapshots < 1 or terminals < 1):
        print(
            "serve-connect: SMOKE FAILURE — expected a live stream with "
            f">=1 metrics_snapshot and >=1 terminal job_state, got "
            f"snapshots={snapshots} terminals={terminals}",
            file=sys.stderr,
        )
        return 1
    return 0


def _write_expo(path: str, scheduler) -> None:
    text = render_exposition(scheduler.obs.metrics.snapshot())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"serve: wrote exposition {path}")


def _default_instance(args):
    """The scheduler's default instance: the first ``--instances``
    entry when a mix is given, the classic single-instance flags
    otherwise."""
    if args.instances:
        return args.instances[0]
    return generate_instance(
        args.instance_class, args.instance_size, seed=args.instance_seed
    )


async def _run_chaos(args) -> int:
    if not args.checkpoint_dir:
        print("serve: --chaos requires --checkpoint-dir", file=sys.stderr)
        return 2
    instance = _default_instance(args)
    plan = ServeFaultPlan.from_env(args.faults)
    if plan is None:
        plan = ServeFaultPlan.seeded(args.seed, args.jobs)
    report = await run_chaos_soak(
        instance,
        checkpoint_dir=args.checkpoint_dir,
        plan=plan,
        n_jobs=args.jobs,
        n_workers=args.workers,
        seed=args.seed,
        budget=args.budget,
        neighborhood=args.neighborhood,
        checkpoint_every=args.checkpoint_every,
        tenants=args.tenants,
        instances=args.instances or (),
    )
    traffic = report.traffic
    print(
        f"serve-chaos: {traffic.completed}/{traffic.accepted} completed "
        f"({traffic.cancelled} cancelled, {traffic.failed} failed) across "
        f"{report.incarnations} scheduler incarnation(s) in "
        f"{traffic.makespan_s:.2f}s"
    )
    print(
        f"serve-chaos: kills={report.scheduler_kills} "
        f"worker_kills={report.worker_kills} tears={report.tears_applied} "
        f"crashes={report.crash_targets} retries={report.job_retries} "
        f"preemptions={report.preemptions} recovered={report.recovered_jobs}"
    )
    print(
        f"serve-chaos: ledger conserved={report.ledger.get('conserved')} "
        f"bit_identical={report.bit_identical} "
        f"(verified {report.verified_jobs} fronts)"
    )
    if args.out:
        payload = {
            "bench": "serve-chaos",
            "written_at": utc_timestamp(),
            "plan": plan.to_dict(),
            "report": report.to_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        print(f"serve-chaos: wrote {args.out}")
    if args.smoke and not report.conserved():
        print(
            "serve-chaos: SMOKE FAILURE — conservation audit failed: "
            f"lost={traffic.lost} duplicates={traffic.duplicates} "
            f"ledger={report.ledger} bit_identical={report.bit_identical}",
            file=sys.stderr,
        )
        return 1
    return 0


async def _run_soak(args) -> int:
    instance = _default_instance(args)
    config = SoakConfig(
        duration_s=args.soak,
        warmup_s=args.warmup,
        rate=args.rate if args.rate > 0 else 10.0,
        seed=args.seed,
        budget=args.budget,
        neighborhood=args.neighborhood,
        tenants=args.tenants,
        driver=args.driver,
        n_tasks=args.n_tasks,
    )
    params = ServeParams(max_active=args.max_active, max_queued=args.max_queued)
    async with SolveScheduler(
        instance,
        n_workers=args.workers,
        params=params,
        tenant_weights=dict(args.tenants),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        tail_port=args.tail_port,
    ) as scheduler:
        await _announce_tail(scheduler, args.tail_port is not None)
        async with _watching(scheduler, args.watch):
            report = await run_soak(
                scheduler, config, instances=args.instances or ()
            )
        pool_report = scheduler.report().get("pool", {})
        if args.expo:
            _write_expo(args.expo, scheduler)
    steady = report.steady_latency_s
    print(
        f"serve-soak: {report.completed}/{report.accepted} jobs completed "
        f"({report.rejected} rejected, {report.cancelled} cancelled, "
        f"{report.failed} failed) over {report.duration_s:.0f}s "
        f"@ {report.rate:.1f} jobs/s"
    )
    print(
        f"serve-soak: steady-state latency p50={_fmt_ms(steady['p50'])} "
        f"p95={_fmt_ms(steady['p95'])} p99={_fmt_ms(steady['p99'])} "
        f"(n={steady['count']}, warmup {report.warmup_s:.0f}s trimmed)"
    )
    print(
        f"serve-soak: max_backlog={report.max_backlog} "
        f"max_queue_depth={report.max_queue_depth} "
        f"max_active={report.max_active} snapshots={report.snapshots} "
        f"dropped_events={report.dropped_events}"
    )
    if args.out:
        try:
            with open(args.out, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            payload = {"bench": "serve"}
        payload["written_at"] = utc_timestamp()
        payload["soak"] = {
            "config": {
                "duration_s": config.duration_s,
                "warmup_s": config.warmup_s,
                "rate": config.rate,
                "seed": config.seed,
                "budget": config.budget,
                "neighborhood": config.neighborhood,
                "driver": config.driver,
                "n_workers": args.workers,
                "instances": [
                    inst.name for inst in (args.instances or (instance,))
                ],
            },
            "report": report.to_dict(),
            "pool": pool_report,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
            handle.write("\n")
        print(f"serve-soak: wrote {args.out}")
    if args.smoke and not report.conserved():
        print(
            "serve-soak: SMOKE FAILURE — conservation audit failed: "
            f"lost={report.lost} accepted={report.accepted} "
            f"completed={report.completed} cancelled={report.cancelled} "
            f"failed={report.failed}",
            file=sys.stderr,
        )
        return 1
    return 0


async def _run(args) -> int:
    instance = _default_instance(args)
    config = TrafficConfig(
        n_jobs=args.jobs,
        rate=args.rate,
        seed=args.seed,
        budget=args.budget,
        neighborhood=args.neighborhood,
        tenants=args.tenants,
        driver=args.driver,
        n_tasks=args.n_tasks,
        cancel_every=args.cancel_every,
    )
    params = ServeParams(max_active=args.max_active, max_queued=args.max_queued)
    async with SolveScheduler(
        instance,
        n_workers=args.workers,
        params=params,
        tenant_weights=dict(args.tenants),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        tail_port=args.tail_port,
    ) as scheduler:
        await _announce_tail(scheduler, args.tail_port is not None)
        async with _watching(scheduler, args.watch):
            report = await run_traffic(
                scheduler, config, instances=args.instances or ()
            )
        pool_report = scheduler.report().get("pool", {})
        if args.expo:
            _write_expo(args.expo, scheduler)
    print(
        f"serve: {report.completed}/{report.accepted} jobs completed "
        f"({report.rejected} rejected, {report.cancelled} cancelled, "
        f"{report.failed} failed) in {report.makespan_s:.2f}s "
        f"= {report.jobs_per_sec:.1f} jobs/s"
    )
    print(
        f"serve: latency p50={_fmt_ms(report.latency_s['p50'])} "
        f"p99={_fmt_ms(report.latency_s['p99'])}, "
        f"peak_active={report.peak_active}, "
        f"pool tasks={pool_report.get('tasks_completed', 0)} "
        f"retries={pool_report.get('retries', 0)}"
    )
    if args.out:
        write_report(
            report,
            args.out,
            config=config,
            extra={"n_workers": args.workers, "pool": pool_report},
        )
        print(f"serve: wrote {args.out}")
    if args.smoke and not report.conserved():
        print(
            "serve: SMOKE FAILURE — conservation audit failed: "
            f"lost={report.lost} duplicates={report.duplicates} "
            f"short_of_budget={report.short_of_budget}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.connect is not None:
        return asyncio.run(_run_connect(args))
    if args.chaos:
        return asyncio.run(_run_chaos(args))
    if args.soak is not None:
        return asyncio.run(_run_soak(args))
    return asyncio.run(_run(args))


if __name__ == "__main__":
    sys.exit(main())
