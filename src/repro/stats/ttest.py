"""Pairwise t-tests for the significance analysis of §IV.

"To test the statistical significance a pairwise t-test was performed
on the results.  In the case with 3 processors a 5% significance level
could not be achieved all the time for the collaborative TS. ... The
results of the master slave and the sequential algorithms do not show
a significant difference."

We use Welch's unequal-variance two-sample t-test (the appropriate
default for independent runs of different algorithms) via
:func:`scipy.stats.ttest_ind`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import BenchmarkError

__all__ = ["TTestResult", "pairwise_ttest"]


@dataclass(frozen=True, slots=True)
class TTestResult:
    """Outcome of one pairwise comparison."""

    label_a: str
    label_b: str
    statistic: float
    p_value: float
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"{self.label_a} vs {self.label_b}: t={self.statistic:.3f}, "
            f"p={self.p_value:.4f} (n={self.n_a}/{self.n_b})"
        )


def pairwise_ttest(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    label_a: str = "A",
    label_b: str = "B",
) -> TTestResult:
    """Welch two-sample t-test between two run samples."""
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise BenchmarkError(
            f"t-test needs >= 2 samples per side, got {a.size} and {b.size}"
        )
    if np.var(a) == 0.0 and np.var(b) == 0.0:
        # Degenerate case: both samples are constant (common for the
        # integer vehicles objective — e.g. 10 runs all using 11
        # vehicles), where Welch's statistic is 0/0 and scipy returns
        # ``t=nan, p=nan`` — which ``significant()`` would silently
        # answer False on.  Resolve it explicitly: identical constants
        # are maximally indistinguishable (p=1); different constants
        # are separated with zero within-sample noise (p=0).
        if float(a[0]) == float(b[0]):
            stat, p = 0.0, 1.0
        else:
            stat = np.inf if a[0] > b[0] else -np.inf
            p = 0.0
    else:
        stat, p = sps.ttest_ind(a, b, equal_var=False)
    return TTestResult(
        label_a=label_a,
        label_b=label_b,
        statistic=float(stat),
        p_value=float(p),
        n_a=int(a.size),
        n_b=int(b.size),
    )
