"""Multiobjective evolutionary algorithms (paper §V future work).

"What remains for the future would be a comparison between the TSMO
versions here and the well established multiobjective evolutionary
algorithms in both runtime and solution quality" — this subpackage
provides that comparator: an NSGA-II (Deb et al. 2000) specialized to
the CVRPTW with route-based crossover and operator-based mutation, on
the same solution representation, evaluator and budget accounting as
the tabu searches, so fronts are directly comparable.
"""

from repro.moea.nsga2 import NSGA2Params, run_nsga2

__all__ = ["NSGA2Params", "run_nsga2"]
