"""Operator and move protocol.

A :class:`Move` is a small immutable record describing one neighborhood
transformation of a specific parent solution.  It can

* report its :meth:`~Move.route_edits` — the 1-2 parent routes it
  rewrites plus any routes it opens.  This is the delta-evaluation
  primitive: :meth:`repro.core.evaluation.Evaluator.evaluate_move`
  scores a neighbor from the edits alone (parent stats for untouched
  routes, cached/recomputed stats for the edited ones) without building
  the child :class:`~repro.core.solution.Solution`;
* :meth:`~Move.apply` itself, producing the neighbor solution with
  incremental route-statistics reuse (implemented once on the base
  class as ``solution.derive(*route_edits)``), and
* report its tabu :meth:`~Move.attribute` — the hashable key stored in
  the tabu list when the move is made and checked when a candidate is
  screened.  We use ``(operator name, frozenset of moved customers)``:
  once a customer has been moved by an operator, moving it again with
  the same operator is forbidden for *tenure* iterations, which
  realizes the paper's "forbids to make moves towards a configuration
  that it had already visited before" at move granularity.

An :class:`Operator` draws random moves from a parent solution.  It may
fail (return ``None``) when the random draw hits the local feasibility
criterion; the registry then redraws, matching §III.B: "If the operator
was unable to find a suitable move ... a new random number is drawn and
possibly a different operator is selected."
"""

from __future__ import annotations

import abc
from typing import Hashable

import numpy as np

from repro.core.solution import Solution

__all__ = ["Move", "Operator", "RouteEdits"]


#: Route edits of a move against its parent: replaced routes (index ->
#: new tuple, empty tuple = route deleted) and newly opened routes.
RouteEdits = tuple[dict[int, tuple[int, ...]], tuple[tuple[int, ...], ...]]


class Move(abc.ABC):
    """One candidate transformation of a specific parent solution."""

    __slots__ = ()

    #: short operator tag used in tabu attributes and traces.
    name: str = "move"

    @abc.abstractmethod
    def route_edits(self, solution: Solution) -> RouteEdits:
        """The parent routes this move rewrites and the routes it opens.

        ``solution`` must be the parent the move was proposed for; route
        indices and positions inside the move refer to it (a mismatch
        raises :class:`~repro.errors.OperatorError` — the move went
        stale).  Returns ``(replacements, added)`` in the exact shape
        :meth:`repro.core.solution.Solution.derive` consumes.
        """

    def changed_routes(self, solution: Solution) -> tuple[int, ...]:
        """Indices of the parent routes this move touches."""
        replacements, _ = self.route_edits(solution)
        return tuple(replacements)

    def apply(self, solution: Solution) -> Solution:
        """Produce the neighbor solution via :meth:`Solution.derive`.

        Untouched routes carry their cached statistics into the child;
        only the edited routes are re-scanned on first evaluation.
        """
        replacements, added = self.route_edits(solution)
        return solution.derive(replacements, added=added)

    @property
    @abc.abstractmethod
    def attribute(self) -> Hashable:
        """The tabu attribute identifying this move's family."""

    def is_tabu(self, tabu_attributes: "set[Hashable] | frozenset[Hashable]") -> bool:
        """Check this move against a set of forbidden attributes."""
        return self.attribute in tabu_attributes


class Operator(abc.ABC):
    """A random-move generator over solutions.

    Operators may additionally support the batched sampling protocol of
    :mod:`repro.core.batch_eval` by defining

    * ``batch_words`` — the number of uniform doubles one candidate
      consumes,
    * ``batch_ready(pre)`` — whether this operator can propose anything
      at all against the parent summarized by ``pre`` (a pure function
      of the parent, so skipping an unready operator consumes no RNG),
    * ``propose_batch(pre, U)`` — map a ``(m, batch_words)`` block of
      uniforms to ``(fields, valid)``: an ``(m, 4)`` integer descriptor
      array and a boolean mask of candidates that pass the local
      feasibility criterion.

    ``pre`` is the :class:`~repro.core.batch_eval.ParentArrays` summary
    of the parent solution.  The descriptor layout is operator-specific
    and decoded by the kernel's move/edit builders.
    """

    #: unique operator identifier (also used in tabu attributes).
    name: str = "operator"

    #: how many random draws :meth:`propose` makes before giving up; the
    #: registry treats ``None`` as "redraw the operator wheel".
    max_attempts: int = 8

    #: uniforms per batched candidate; 0 = no vectorized emitter.
    batch_words: int = 0

    def batch_ready(self, pre) -> bool:
        """Whether :meth:`propose_batch` can yield moves on this parent."""
        return False

    @abc.abstractmethod
    def propose(self, solution: Solution, rng: np.random.Generator) -> Move | None:
        """Draw one random move satisfying the local feasibility criterion.

        Returns ``None`` when no suitable move was found within
        :attr:`max_attempts` draws (e.g. the solution has a single route
        and the operator needs two).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
