"""Tests for ObjectiveVector and route schedule computation."""

import numpy as np
import pytest

from repro.core.objectives import FEASIBILITY_TOLERANCE, ObjectiveVector
from repro.core.routes import (
    EMPTY_ROUTE_STATS,
    route_load,
    route_schedule,
    route_stats,
)
from repro.errors import SolutionError
from repro.vrptw.instance import Instance


@pytest.fixture(scope="module")
def line_instance() -> Instance:
    """Four customers on a line at x = 10, 20, 30, 40; easy arithmetic.

    Customer i has ready time 15*i, due date 15*i + 10, service 2.
    """
    n = 4
    return Instance(
        name="line",
        x=[0.0, 10.0, 20.0, 30.0, 40.0],
        y=[0.0] * (n + 1),
        demand=[0.0, 5.0, 5.0, 5.0, 5.0],
        ready_time=[0.0, 15.0, 30.0, 45.0, 60.0],
        due_date=[500.0, 25.0, 40.0, 55.0, 70.0],
        service_time=[0.0, 2.0, 2.0, 2.0, 2.0],
        capacity=20.0,
        n_vehicles=3,
    )


class TestObjectiveVector:
    def test_feasibility(self):
        assert ObjectiveVector(1.0, 1, 0.0).feasible
        assert ObjectiveVector(1.0, 1, FEASIBILITY_TOLERANCE / 2).feasible
        assert not ObjectiveVector(1.0, 1, 0.1).feasible

    def test_dominates(self):
        a = ObjectiveVector(10.0, 2, 0.0)
        b = ObjectiveVector(12.0, 2, 0.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_weak_dominance_includes_equal(self):
        a = ObjectiveVector(10.0, 2, 0.0)
        assert a.weakly_dominates(a)

    def test_incomparable(self):
        a = ObjectiveVector(10.0, 3, 0.0)
        b = ObjectiveVector(12.0, 2, 0.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_as_array(self):
        arr = ObjectiveVector(1.5, 3, 0.25).as_array()
        assert np.array_equal(arr, [1.5, 3.0, 0.25])

    def test_tuple_behavior(self):
        d, v, t = ObjectiveVector(1.0, 2, 3.0)
        assert (d, v, t) == (1.0, 2, 3.0)


class TestRouteStats:
    def test_empty_route(self):
        assert route_stats(None, []) is EMPTY_ROUTE_STATS  # type: ignore[arg-type]
        assert EMPTY_ROUTE_STATS.empty

    def test_distance_out_and_back(self, line_instance):
        st = route_stats(line_instance, [1])
        assert st.distance == pytest.approx(20.0)

    def test_waiting_at_early_arrival(self, line_instance):
        # Arrive at customer 1 at t=10, ready 15 -> wait 5, depart 17.
        st = route_stats(line_instance, [1])
        assert st.tardiness == 0.0
        # Completion: depart 17, drive 10 back -> 27.
        assert st.completion == pytest.approx(27.0)

    def test_chained_arrivals(self, line_instance):
        # 1: arrive 10, start 15, depart 17; 2: arrive 27, ready 30 ->
        # depart 32; back at 32 + 20 = 52.
        st = route_stats(line_instance, [1, 2])
        assert st.completion == pytest.approx(52.0)
        assert st.tardiness == 0.0

    def test_tardiness_accumulates(self, line_instance):
        # Reverse order: 4 first (arrive 40 ready 60 -> depart 62),
        # then 3: arrive 62+10=72, due 55 -> 17 late; start 72, depart 74;
        # 2: arrive 84, due 40 -> 44 late; 1: arrive 96, due 25 -> 71 late.
        st = route_stats(line_instance, [4, 3, 2, 1])
        assert st.tardiness == pytest.approx(17 + 44 + 71)

    def test_late_depot_return_counts(self, line_instance):
        # Shrink the horizon so the return is late.
        tight = Instance(
            name="tight",
            x=[0.0, 10.0],
            y=[0.0, 0.0],
            demand=[0.0, 1.0],
            ready_time=[0.0, 0.0],
            due_date=[15.0, 12.0],
            service_time=[0.0, 2.0],
            capacity=10,
            n_vehicles=1,
        )
        st = route_stats(tight, [1])
        # Arrive 10, depart 12, back at 22, horizon 15 -> 7 late.
        assert st.tardiness == pytest.approx(7.0)

    def test_load(self, line_instance):
        assert route_stats(line_instance, [1, 2, 3]).load == 15.0
        assert route_load(line_instance, [1, 2, 3]) == 15.0


class TestRouteSchedule:
    def test_schedule_details(self, line_instance):
        sched = route_schedule(line_instance, [1, 2])
        assert sched.customers == (1, 2)
        assert sched.arrival[0] == pytest.approx(10.0)
        assert sched.wait[0] == pytest.approx(5.0)
        assert sched.service_start[0] == pytest.approx(15.0)
        assert sched.return_arrival == pytest.approx(52.0)
        assert sched.total_wait == pytest.approx(5.0 + 3.0)
        assert sched.total_tardiness == 0.0

    def test_schedule_matches_stats(self, line_instance):
        route = [2, 1, 4, 3]
        sched = route_schedule(line_instance, route)
        st = route_stats(line_instance, route)
        assert sched.total_tardiness == pytest.approx(st.tardiness)
        assert sched.return_arrival == pytest.approx(st.completion)

    def test_invalid_site_rejected(self, line_instance):
        with pytest.raises(SolutionError, match="invalid site"):
            route_schedule(line_instance, [99])
