"""Tests for set coverage, hypervolume and epsilon indicators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mo.coverage import mutual_coverage, set_coverage
from repro.mo.epsilon import additive_epsilon, multiplicative_epsilon
from repro.mo.hypervolume import hypervolume

front_strategy = st.lists(
    st.tuples(st.floats(0.1, 9.9), st.floats(0.1, 9.9)),
    min_size=0,
    max_size=15,
)


class TestSetCoverage:
    def test_full_coverage(self):
        a = [[1, 1]]
        b = [[2, 2], [3, 1]]
        assert set_coverage(a, b) == 1.0

    def test_no_coverage(self):
        a = [[5, 5]]
        b = [[1, 1]]
        assert set_coverage(a, b) == 0.0

    def test_partial(self):
        a = [[1, 3]]
        b = [[2, 4], [0, 1]]
        assert set_coverage(a, b) == 0.5

    def test_weak_dominance_counts_equal_points(self):
        assert set_coverage([[1, 1]], [[1, 1]]) == 1.0

    def test_asymmetric(self):
        a = [[1, 4], [4, 1]]
        b = [[2, 2]]
        assert set_coverage(a, b) == 0.0
        assert set_coverage(b, a) == 0.0

    def test_empty_conventions(self):
        # All four empty/non-empty combinations.  C(∅, ∅) = 0: an empty
        # archive covers nothing, so two runs that both produced no
        # solutions must not be reported as fully covering each other
        # (the old pb-empty-first ordering returned 1.0 here).
        assert set_coverage([[1, 1]], [[2, 2]]) == 1.0
        assert set_coverage([[1, 1]], []) == 1.0
        assert set_coverage([], [[1, 1]]) == 0.0
        assert set_coverage([], []) == 0.0

    def test_mutual_empty_conventions(self):
        assert mutual_coverage([], []) == (0.0, 0.0)
        assert mutual_coverage([[1, 1]], []) == (1.0, 0.0)
        assert mutual_coverage([], [[1, 1]]) == (0.0, 1.0)

    def test_mutual(self):
        a = [[1, 1]]
        b = [[2, 2]]
        assert mutual_coverage(a, b) == (1.0, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(a=front_strategy, b=front_strategy)
    def test_bounds_property(self, a, b):
        c = set_coverage(a, b)
        assert 0.0 <= c <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(a=front_strategy)
    def test_self_coverage_is_total(self, a):
        # Every non-empty front weakly dominates itself; the empty
        # front covers nothing by convention, itself included.
        assert set_coverage(a, a) == (1.0 if len(a) else 0.0)


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume([[1.0, 1.0]], [3.0, 3.0]) == pytest.approx(4.0)

    def test_two_points_2d(self):
        # (1,2) and (2,1) vs ref (3,3): union = 4 + 4 - overlap 1... by
        # sweep: sorted by x: (1,2): (3-1)*(3-2)=2; (2,1): (3-2)*(2-1)=1
        # -> 3.
        assert hypervolume([[1, 2], [2, 1]], [3, 3]) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([[1, 1]], [4, 4])
        assert hypervolume([[1, 1], [2, 2]], [4, 4]) == pytest.approx(base)

    def test_point_outside_reference_ignored(self):
        assert hypervolume([[5, 5]], [4, 4]) == 0.0
        assert hypervolume([[1, 5]], [4, 4]) == 0.0  # must beat ref everywhere

    def test_empty(self):
        assert hypervolume(np.zeros((0, 2)), [1, 1]) == 0.0

    def test_1d(self):
        assert hypervolume([[2.0], [1.0]], [5.0]) == pytest.approx(4.0)

    def test_3d_box(self):
        assert hypervolume([[1, 1, 1]], [2, 3, 4]) == pytest.approx(1 * 2 * 3)

    def test_3d_union(self):
        # Two boxes from (1,1,1) and (0,2,2) vs ref (3,3,3):
        # vol A = 2*2*2 = 8; vol B = 3*1*1 = 3; intersection: max coords
        # (1,2,2) -> (3-1)*(3-2)*(3-2) = 2 -> union = 9.
        hv = hypervolume([[1, 1, 1], [0, 2, 2]], [3, 3, 3])
        assert hv == pytest.approx(9.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            hypervolume([[1, 1]], [1, 1, 1])

    @settings(max_examples=30, deadline=None)
    @given(front=front_strategy)
    def test_monotone_under_addition(self, front):
        """Adding a point never decreases hypervolume."""
        ref = [10.0, 10.0]
        hv = 0.0
        acc = []
        for p in front:
            acc.append(p)
            new_hv = hypervolume(acc, ref)
            assert new_hv >= hv - 1e-9
            hv = new_hv

    @settings(max_examples=20, deadline=None)
    @given(front=front_strategy)
    def test_3d_padding_consistency(self, front):
        """Padding a 2-D front with a constant third objective scales
        the hypervolume by the third-axis margin."""
        if not front:
            return
        ref2 = [10.0, 10.0]
        hv2 = hypervolume(front, ref2)
        padded = [[a, b, 1.0] for a, b in front]
        hv3 = hypervolume(padded, [10.0, 10.0, 2.0])
        assert hv3 == pytest.approx(hv2 * 1.0, rel=1e-9)


class TestEpsilon:
    def test_identical_sets(self):
        a = [[1, 2], [2, 1]]
        assert additive_epsilon(a, a) == pytest.approx(0.0)
        assert multiplicative_epsilon(a, a) == pytest.approx(1.0)

    def test_uniform_shift(self):
        a = [[1, 1]]
        b = [[0.5, 0.5]]
        assert additive_epsilon(a, b) == pytest.approx(0.5)

    def test_negative_epsilon_when_strictly_better(self):
        assert additive_epsilon([[0, 0]], [[2, 2]]) == pytest.approx(-2.0)

    def test_multiplicative_ratio(self):
        assert multiplicative_epsilon([[2, 2]], [[1, 1]]) == pytest.approx(2.0)

    def test_empty_conventions(self):
        assert additive_epsilon([[1, 1]], []) == 0.0
        assert additive_epsilon([], [[1, 1]]) == float("inf")
        assert multiplicative_epsilon([[1, 1]], []) == 1.0

    def test_multiplicative_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            multiplicative_epsilon([[0, 1]], [[1, 1]])

    @settings(max_examples=30, deadline=None)
    @given(a=front_strategy, b=front_strategy)
    def test_coverage_epsilon_consistency(self, a, b):
        """eps(A,B) <= 0 implies A weakly covers all of B."""
        if not a or not b:
            return
        if additive_epsilon(a, b) <= 0:
            assert set_coverage(a, b) == 1.0
