"""Cross-iteration memoization of per-route statistics.

The tabu search's current solutions drift slowly: a move touches one or
two routes, every other route survives into the child unchanged, and
the *same* route tuples recur across neighbors of one iteration and
across consecutive iterations (a rejected neighbor's fresh route is
often re-proposed a few iterations later).  :class:`RouteStatsCache`
exploits that by memoizing :func:`repro.core.routes.route_stats` —
documented there as the single hottest function in the library — under
the route tuple itself, with a bounded LRU policy so memory stays flat
over 100k-evaluation runs.

One cache is shared across an entire search (and across all searchers
of a collaborative run on the same instance), which is what makes the
delta-evaluation engine in :meth:`repro.core.evaluation.Evaluator.
evaluate_move` O(changed routes) *amortized O(cache-miss routes)*.

Observability: the cache counts hits, misses, evictions and raw lookup
requests; :meth:`RouteStatsCache.snapshot` freezes them into a
:class:`CacheStats` record that search drivers thread into
``TSMOResult.cache_stats`` and the Figure-1 trace.  The simulated-time
cost model charges per cache-miss route scan (``CostModel.
miss_scan_cost``) using the same counters, so simulated speedups stay
honest about the memoization.

Knobs
-----
* ``capacity`` — maximum number of distinct route tuples retained
  (default 65536, ~a few MB of tuples + stats).  ``capacity=0``
  disables retention entirely: every lookup recomputes (and counts as
  a miss), which is the reference behavior for A/B testing.
* ``REPRO_STATS_CACHE_CAPACITY`` — environment override for the
  default capacity.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.routes import RouteStats, route_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vrptw.instance import Instance

__all__ = ["CacheStats", "RouteStatsCache", "default_capacity"]

_DEFAULT_CAPACITY = 65536

#: placeholder stored by :meth:`RouteStatsCache.lookup_deferred` for a
#: counted miss whose stats the caller computes later (batch kernel).
_PENDING = object()


def default_capacity() -> int:
    """The configured default capacity (``REPRO_STATS_CACHE_CAPACITY``)."""
    raw = os.environ.get("REPRO_STATS_CACHE_CAPACITY")
    if raw is None:
        return _DEFAULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_CAPACITY
    return max(0, value)


@dataclass(frozen=True, slots=True)
class CacheStats:
    """A point-in-time snapshot of :class:`RouteStatsCache` counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served (``hits + misses`` by construction)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate counters (size/capacity take the max — they are
        gauges, not counters; used to merge per-worker snapshots)."""
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            size=max(self.size, other.size),
            capacity=max(self.capacity, other.capacity),
        )


class RouteStatsCache:
    """Bounded LRU cache of ``route tuple -> RouteStats`` for one instance.

    Not thread-safe; the search is single-process (the simulated cluster
    multiplexes searchers cooperatively) and the multiprocessing backend
    gives each worker process its own cache.
    """

    __slots__ = ("instance", "capacity", "lookups", "hits", "misses", "evictions", "_data")

    def __init__(self, instance: "Instance", capacity: int | None = None) -> None:
        self.instance = instance
        self.capacity = default_capacity() if capacity is None else max(0, int(capacity))
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[tuple[int, ...], RouteStats] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, route: tuple[int, ...]) -> RouteStats:
        """Return the stats for ``route``, computing on miss."""
        self.lookups += 1
        data = self._data
        stats = data.get(route)
        if stats is not None:
            self.hits += 1
            data.move_to_end(route)
            return stats
        self.misses += 1
        stats = route_stats(self.instance, route)
        if self.capacity > 0:
            data[route] = stats
            if len(data) > self.capacity:
                data.popitem(last=False)
                self.evictions += 1
        return stats

    def lookup_deferred(self, route: tuple[int, ...]) -> RouteStats | None:
        """Like :meth:`lookup`, but the caller computes misses itself.

        Used by the batch kernel: counters and LRU motion are identical
        to :meth:`lookup` (a miss inserts a placeholder at the LRU tail,
        so eviction pressure matches too), but instead of scanning the
        route here, ``None`` is returned and the caller later provides
        the stats via :meth:`fulfill` — letting it deduplicate and
        vectorize the miss scans.  A pending route looked up again
        before fulfillment counts as a hit (same as the scalar path,
        where the first lookup would already have stored real stats);
        the caller resolves those from its own pending table.
        """
        self.lookups += 1
        data = self._data
        stats = data.get(route)
        if stats is not None:
            self.hits += 1
            data.move_to_end(route)
            return None if stats is _PENDING else stats
        self.misses += 1
        if self.capacity > 0:
            data[route] = _PENDING
            if len(data) > self.capacity:
                data.popitem(last=False)
                self.evictions += 1
        return None

    def fulfill(self, route: tuple[int, ...], stats: RouteStats) -> None:
        """Replace a :meth:`lookup_deferred` placeholder with real stats.

        Assignment to an existing key keeps its LRU position; a
        placeholder that was already evicted is *not* reinserted (its
        miss was counted, matching the scalar path's behavior of not
        retaining what the LRU pushed out).
        """
        data = self._data
        if data.get(route) is _PENDING:
            data[route] = stats

    def seed(self, route: tuple[int, ...], stats: RouteStats) -> None:
        """Insert already-computed stats (e.g. a parent's) without a scan."""
        if self.capacity > 0 and route not in self._data:
            self._data[route] = stats
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries; counters are preserved (they are lifetime totals)."""
        self._data.clear()

    def snapshot(self) -> CacheStats:
        """Freeze the current counters into a :class:`CacheStats`."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            capacity=self.capacity,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RouteStatsCache(size={len(self._data)}, capacity={self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
