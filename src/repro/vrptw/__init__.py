"""The CVRPTW problem substrate.

This subpackage defines the problem the paper optimizes (section II):
customers with demands and time windows, a homogeneous capacitated
fleet housed at a single depot, and Euclidean travel costs.  It also
provides a reader/writer for the standard Solomon/Homberger text format
and a generator of Gehring–Homberger-style extended Solomon instances,
which substitutes for the (offline) instance files used in the paper's
evaluation.
"""

from repro.vrptw.analysis import (
    compatibility_density,
    compatibility_graph,
    describe,
    fleet_lower_bounds,
    window_stats,
)
from repro.vrptw.customer import Customer, Depot
from repro.vrptw.distance import euclidean_matrix
from repro.vrptw.generator import GeneratorConfig, InstanceClass, generate_instance
from repro.vrptw.instance import Instance
from repro.vrptw.parser import dumps_solomon, loads_solomon, read_solomon, write_solomon

__all__ = [
    "Customer",
    "Depot",
    "GeneratorConfig",
    "Instance",
    "InstanceClass",
    "compatibility_density",
    "compatibility_graph",
    "describe",
    "dumps_solomon",
    "euclidean_matrix",
    "fleet_lower_bounds",
    "generate_instance",
    "loads_solomon",
    "read_solomon",
    "window_stats",
    "write_solomon",
]
