"""Solve-service throughput benchmark (``BENCH_serve.json``).

Not a paper table — this measures the multi-tenant service layer
itself: how many concurrent solve jobs one shared worker pool
sustains, end-to-end job latency under open-loop load, and the
conservation audit (zero lost, zero duplicated, zero short-of-budget
jobs).  The same workload is runnable standalone via
``python -m repro.serve --smoke``; this pytest wrapper regenerates the
repo-root ``BENCH_serve.json`` artifact from a test run.
"""

import asyncio

import pytest

from repro.parallel.pool import PoolParams
from repro.serve import (
    ServeParams,
    SolveScheduler,
    TrafficConfig,
    run_traffic,
    write_report,
)
from repro.vrptw.generator import generate_instance

from conftest import REPO_ROOT

SERVE_JSON = REPO_ROOT / "BENCH_serve.json"

FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

CONFIG = TrafficConfig(
    n_jobs=60,
    rate=2000.0,
    seed=1,
    budget=48,
    neighborhood=8,
    tenants=(("acme", 3.0), ("globex", 1.0)),
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


def test_serve_throughput(instance):
    """Drive the open-loop workload once and record the service numbers."""

    async def scenario():
        async with SolveScheduler(
            instance,
            n_workers=2,
            pool_params=FAST,
            params=ServeParams(max_active=64, max_queued=256),
            tenant_weights=dict(CONFIG.tenants),
        ) as scheduler:
            report = await run_traffic(scheduler, CONFIG)
            pool_report = scheduler.report().get("pool", {})
        return report, pool_report

    report, pool_report = asyncio.run(scenario())
    assert report.conserved(), report.to_dict()
    assert report.peak_active >= 50
    write_report(
        report,
        SERVE_JSON,
        config=CONFIG,
        extra={"n_workers": 2, "pool": pool_report},
    )
    print(
        f"\nserve: {report.completed} jobs in {report.makespan_s:.2f}s "
        f"= {report.jobs_per_sec:.1f} jobs/s, "
        f"p99 latency {report.latency_s['p99'] * 1e3:.0f}ms, "
        f"peak_active {report.peak_active} -> {SERVE_JSON.name}"
    )
