"""The calibrated cost model of the simulated cluster.

Durations in the simulation are expressed in **evaluation units**: one
unit is the nominal time to generate and evaluate one neighbor on an
unloaded reference processor.  Everything else is scaled to that.

The model's terms and why they exist:

* ``eval_cost`` — per-neighbor generation + evaluation; the work the
  paper parallelizes.
* ``miss_scan_cost`` — optional surcharge per route-stats cache miss,
  charged by the drivers from the
  :class:`~repro.core.stats_cache.RouteStatsCache` counters around each
  sampling burst.  Zero by default (the calibrated tables fold scan
  cost into ``eval_cost``); positive values let experiments price the
  delta-evaluation engine's memoization into simulated time.
* ``selection_cost(n)`` — the master-side cost of selecting from a
  pool of ``n`` evaluated neighbors and updating the memories (with a
  mild quadratic term for the pairwise non-dominated filtering).
* message costs — fixed ``msg_latency`` plus ``per_item`` transit per
  carried solution, a ``recv_cost`` the receiver pays to handle each
  message, and a ``contention`` factor that inflates latency and
  handling as more processors share the interconnect (the ccNUMA
  effect that makes the asynchronous variant fall off between 6 and 12
  processors and the collaborative variant's overhead grow with the
  number of searchers).
* **bulk vs. streamed receives** — the synchronous master performs a
  collective gather: it blocks at a barrier and then deserializes the
  whole remaining neighborhood (hundreds of solution payloads) on its
  critical path, costing ``recv_per_item_bulk`` per item.  The
  asynchronous master instead pre-posts receives for a stream of small
  batches; on a shared-memory ccNUMA machine the data is deposited
  while the master computes, leaving only the per-message handling and
  a small ``recv_per_item_stream`` on the critical path.  This
  computation/communication overlap is the textbook benefit of
  asynchronous protocols and, together with never waiting for
  stragglers, is what buys the asynchronous variant its large speedup
  at identical evaluation counts.
* the **stall model** (``stall_rate``/``stall_mean``) and
  ``speed_sigma`` — jitter and descheduling on a *shared* 128-CPU
  machine.  Stalls arrive as a Poisson process in compute time, so a
  long sequential generation pays the same expected inflation per unit
  of work as a short worker chunk — the model is fair to the
  sequential baseline.  What it is *not* fair to is a barrier: the
  synchronous master waits for the **maximum** over its workers'
  stall draws every iteration, while the mean-field sequential run
  only ever pays the average.  This straggler asymmetry is the paper's
  own explanation for the synchronous variant's poor speedup ("the
  processors wait a considerable amount of time") and for why the
  asynchronous variant — which simply refuses to wait (decision
  function) and lets stalled workers' neighbors trickle into later
  iterations — is so much faster at identical evaluation counts.

The default constants were calibrated (see
``benchmarks/bench_calibration.py`` and tests/test_parallel_shapes.py)
so the four qualitative shapes of the paper's Tables I–IV hold; no
claim is made about the Origin 3800's absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import SimulationError

__all__ = ["CostModel"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Durations of the simulated cluster, in evaluation units."""

    #: nominal cost of generating + evaluating one neighbor.
    eval_cost: float = 1.0
    #: additional cost per route-stats cache *miss* (a full schedule
    #: scan of one route).  The default of 0 keeps ``eval_cost`` as the
    #: calibrated all-in per-neighbor figure; set it positive to make
    #: simulated timings distinguish memoized evaluations from real
    #: scans — simulated speedups then stay honest about what the
    #: :class:`~repro.core.stats_cache.RouteStatsCache` absorbs.
    miss_scan_cost: float = 0.0
    #: linear selection/memory-update cost per pooled neighbor.
    proc_linear: float = 0.25
    #: quadratic pairwise-dominance cost coefficient.
    proc_quadratic: float = 0.00085
    #: fixed per-selection overhead (archive/crowding bookkeeping).
    iter_cost: float = 20.0
    #: cost of constructing the initial solution (I1), per customer.
    init_cost_per_customer: float = 1.0
    #: one-way message latency.
    msg_latency: float = 2.0
    #: transit cost per item (solution/neighbor) carried by a message.
    per_item: float = 0.05
    #: receiver-side handling cost per message.
    recv_cost: float = 1.5
    #: critical-path deserialization cost per item of a *bulk*
    #: (collective-gather) receive — paid by the synchronous master.
    recv_per_item_bulk: float = 0.6
    #: critical-path cost per item of a *streamed* (pre-posted) receive
    #: — the overlapped asynchronous path.
    recv_per_item_stream: float = 0.05
    #: latency/handling inflation per additional active processor
    #: (interconnect contention): ``factor = 1 + contention * (P - 1)``.
    #: Applies to transit and per-message handling, not to local bulk
    #: deserialization.
    contention: float = 0.10
    #: compute slowdown per additional processor the job occupies —
    #: memory-bandwidth/NUMA pressure of wider jobs on a shared
    #: machine.  This is the dominant reason the collaborative variant
    #: (all processors computing all the time) runs *slower* than the
    #: sequential baseline, increasingly so with more searchers.
    compute_contention: float = 0.01
    #: Poisson rate of stall events per unit of nominal compute.
    stall_rate: float = 0.002
    #: mean duration of one stall (exponential).
    stall_mean: float = 25.0
    #: lognormal sigma of per-processor relative speed.
    speed_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.eval_cost <= 0:
            raise SimulationError("eval_cost must be positive")
        for label in (
            "miss_scan_cost",
            "proc_linear",
            "proc_quadratic",
            "iter_cost",
            "init_cost_per_customer",
            "msg_latency",
            "per_item",
            "recv_cost",
            "recv_per_item_bulk",
            "recv_per_item_stream",
            "contention",
            "compute_contention",
            "stall_rate",
            "stall_mean",
            "speed_sigma",
        ):
            if getattr(self, label) < 0:
                raise SimulationError(f"{label} must be non-negative")

    # ------------------------------------------------------------------
    # Derived durations
    # ------------------------------------------------------------------
    def selection_cost(self, pool_size: int) -> float:
        """Master cost of one selection + memory update over ``pool_size``."""
        n = float(pool_size)
        return self.iter_cost + self.proc_linear * n + self.proc_quadratic * n * n

    def init_cost(self, n_customers: int) -> float:
        """Cost of the I1 construction for an instance size."""
        return self.init_cost_per_customer * float(n_customers)

    def contention_factor(self, n_processors: int) -> float:
        """Interconnect inflation for a cluster of ``n_processors``."""
        return 1.0 + self.contention * max(n_processors - 1, 0)

    def transfer_delay(self, n_items: int, n_processors: int) -> float:
        """One-way transit time of a message carrying ``n_items``."""
        return (self.msg_latency + self.per_item * n_items) * self.contention_factor(
            n_processors
        )

    def receive_cost(
        self, n_processors: int, n_items: int = 1, *, streamed: bool = False
    ) -> float:
        """Receiver-side critical-path cost of one message.

        ``streamed=True`` uses the overlapped (pre-posted) per-item
        rate; ``False`` models a bulk collective gather whose
        deserialization sits fully on the receiver's critical path.
        Interconnect contention inflates the per-message handling (and
        the streamed per-item work, which touches the interconnect);
        bulk deserialization is local memory work and is not inflated.
        """
        cf = self.contention_factor(n_processors)
        if streamed:
            return (self.recv_cost + self.recv_per_item_stream * n_items) * cf
        return self.recv_cost * cf + self.recv_per_item_bulk * n_items

    def compute_duration(
        self,
        nominal: float,
        speed: float,
        rng: np.random.Generator,
        n_processors: int = 1,
    ) -> float:
        """Actual duration of ``nominal`` units of compute on a processor.

        Applies the processor's speed factor, multiplicative jitter,
        and the Poisson stall process: ``Poisson(stall_rate * nominal)``
        stall events, each with an ``Exp(stall_mean)`` duration.  The
        expected inflation per unit of work is therefore identical for
        long and short computations — only the *variance* (and hence
        the cost of a barrier waiting on the maximum) differs.
        """
        if nominal <= 0:
            return 0.0
        duration = nominal / speed
        duration *= 1.0 + self.compute_contention * max(n_processors - 1, 0)
        duration *= float(rng.lognormal(mean=0.0, sigma=0.03))
        if self.stall_rate > 0 and self.stall_mean > 0:
            n_stalls = int(rng.poisson(self.stall_rate * nominal))
            if n_stalls > 0:
                duration += float(rng.exponential(self.stall_mean, size=n_stalls).sum())
        return duration

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Copy with some constants replaced (ablation benchmarks)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    #: neighborhood size the default constants were calibrated at (the
    #: paper's setting).
    REFERENCE_NEIGHBORHOOD = 200

    def for_neighborhood(self, neighborhood_size: int) -> "CostModel":
        """Rescale the model for a shrunken neighborhood size.

        The calibration holds at the paper's ``S = 200``; benchmark
        configurations shrink ``S`` to fit a laptop budget.  To keep
        the simulation *dimensionally self-similar* — identical
        speedup shapes in expectation at any scale — every cost that
        is "per iteration" or "per message" must shrink with the
        iteration length, and rate-like terms must grow inversely:

        * ``iter_cost``, ``msg_latency``, ``recv_cost``, ``stall_mean``
          scale with ``S / 200`` (they are fixed chunks of an
          iteration);
        * ``stall_rate`` and ``proc_quadratic`` scale with ``200 / S``
          (events per unit work, and the quadratic coefficient whose
          full-pool contribution per neighbor is ``quad * S``);
        * per-item costs (``eval_cost``, ``miss_scan_cost``,
          ``proc_linear``, ``per_item``, ``recv_per_item_*``) are
          already per neighbor (or per route scan) and stay put.
        """
        if neighborhood_size < 1:
            raise SimulationError("neighborhood_size must be >= 1")
        factor = neighborhood_size / self.REFERENCE_NEIGHBORHOOD
        if factor == 1.0:
            return self
        return replace(
            self,
            iter_cost=self.iter_cost * factor,
            msg_latency=self.msg_latency * factor,
            recv_cost=self.recv_cost * factor,
            stall_mean=self.stall_mean * factor,
            stall_rate=self.stall_rate / factor,
            proc_quadratic=self.proc_quadratic / factor,
        )
