"""Deterministic random-number management.

Every stochastic component in the library (instance generation, the I1
construction heuristic, neighborhood sampling, the simulated cluster's
noise model, parameter perturbation in the multisearch variant) draws
from a :class:`numpy.random.Generator`.  To make whole experiments
reproducible from a single integer seed, generators are never created
ad hoc — they are *spawned* from a root :class:`numpy.random.SeedSequence`
through the helpers in this module.

The spawning discipline mirrors how the paper's processes would each own
an independent stream on the SGI Origin 3800: child sequences are
statistically independent, and the tree of spawns is a pure function of
the root seed, so re-running an experiment with the same seed replays
every decision, including the simulated message orderings.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["RngFactory", "as_generator", "spawn_generators"]


def as_generator(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int``, a :class:`~numpy.random.SeedSequence`, an existing
    generator (returned unchanged, so callers can thread one RNG through
    a pipeline), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.SeedSequence | None, n: int
) -> list[np.random.Generator]:
    """Create ``n`` independent generators from one root seed.

    Used wherever the paper's algorithms need per-process streams, e.g.
    one stream per collaborative searcher.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class RngFactory:
    """A reproducible, on-demand source of independent generators.

    The factory owns a root :class:`~numpy.random.SeedSequence` and hands
    out child generators one at a time.  Components receive the factory
    and spawn what they need; the order of spawning is part of the
    experiment definition and therefore deterministic.

    Examples
    --------
    >>> fac = RngFactory(42)
    >>> a, b = fac.generator(), fac.generator()
    >>> fac2 = RngFactory(42)
    >>> a2 = fac2.generator()
    >>> float(a.random()) == float(a2.random())
    True
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = None) -> None:
        self._root = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._spawned = 0

    @property
    def root_entropy(self) -> int | Sequence[int] | None:
        """The entropy of the root seed sequence (for provenance logging)."""
        return self._root.entropy

    @property
    def spawn_count(self) -> int:
        """How many children have been handed out so far."""
        return self._spawned

    def seed_sequence(self) -> np.random.SeedSequence:
        """Spawn and return the next child seed sequence."""
        child = self._root.spawn(1)[0]
        self._spawned += 1
        return child

    def generator(self) -> np.random.Generator:
        """Spawn and return the next child generator."""
        return np.random.default_rng(self.seed_sequence())

    def generators(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` child generators at once."""
        if n < 0:
            raise ValueError(f"cannot spawn a negative number of generators: {n}")
        children = self._root.spawn(n)
        self._spawned += n
        return [np.random.default_rng(child) for child in children]

    def stream(self) -> Iterator[np.random.Generator]:
        """An endless iterator of fresh child generators."""
        while True:
            yield self.generator()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngFactory(entropy={self._root.entropy!r}, spawned={self._spawned})"
