"""Tests for the synchronous, asynchronous and collaborative drivers.

These check protocol-level properties (budgets, determinism, message
accounting, carryover, archive validity); the speedup *shape* bands are
in test_parallel_shapes.py.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mo.dominance import dominates
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.costmodel import CostModel
from repro.parallel.sync_ts import run_synchronous_tsmo, split_chunks
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 25, seed=31)


@pytest.fixture(scope="module")
def params():
    return TSMOParams(
        max_evaluations=600,
        neighborhood_size=30,
        tabu_tenure=10,
        archive_capacity=10,
        nondom_capacity=20,
        restart_after=6,
    )


@pytest.fixture(scope="module")
def cost():
    return CostModel().for_neighborhood(30)


class TestSplitChunks:
    def test_balanced(self):
        assert split_chunks(10, 3) == [4, 3, 3]
        assert split_chunks(9, 3) == [3, 3, 3]
        assert split_chunks(2, 3) == [1, 1, 0]

    def test_sum_invariant(self):
        for total in range(0, 50):
            for parts in range(1, 8):
                chunks = split_chunks(total, parts)
                assert sum(chunks) == total
                assert max(chunks) - min(chunks) <= 1

    def test_invalid(self):
        with pytest.raises(SimulationError):
            split_chunks(10, 0)


class TestSequentialSimulated:
    def test_same_search_as_plain_sequential(self, instance, params):
        """The simulated-time wrapper must not change the search: same
        seed, same archive as run_sequential_tsmo."""
        plain = run_sequential_tsmo(instance, params, seed=5)
        simulated = run_sequential_simulated(instance, params, seed=5)
        # The wrapper spawns its search stream from an RngFactory, so
        # seeds differ in derivation; instead check determinism of the
        # wrapper itself and metadata.
        again = run_sequential_simulated(instance, params, seed=5)
        assert np.array_equal(simulated.front(), again.front())
        assert simulated.simulated_time == again.simulated_time
        assert simulated.processors == 1
        assert plain.evaluations == simulated.evaluations

    def test_simulated_time_scales_with_budget(self, instance, params):
        short = run_sequential_simulated(instance, params, seed=1)
        long = run_sequential_simulated(instance, params.scaled(2.0), seed=1)
        assert short.simulated_time is not None and short.simulated_time > 0
        assert long.simulated_time > 1.5 * short.simulated_time


class TestSynchronous:
    def test_budget(self, instance, params, cost):
        r = run_synchronous_tsmo(instance, params, 3, seed=2, cost_model=cost)
        assert r.evaluations >= params.max_evaluations
        assert r.evaluations <= params.max_evaluations + params.neighborhood_size + 1

    def test_deterministic(self, instance, params, cost):
        a = run_synchronous_tsmo(instance, params, 3, seed=4, cost_model=cost)
        b = run_synchronous_tsmo(instance, params, 3, seed=4, cost_model=cost)
        assert np.array_equal(a.front(), b.front())
        assert a.simulated_time == b.simulated_time
        assert a.extra["messages_sent"] == b.extra["messages_sent"]

    def test_needs_two_processors(self, instance, params, cost):
        with pytest.raises(SimulationError):
            run_synchronous_tsmo(instance, params, 1, seed=1, cost_model=cost)

    def test_message_accounting(self, instance, params, cost):
        r = run_synchronous_tsmo(instance, params, 3, seed=2, cost_model=cost)
        iterations = r.iterations
        # Per iteration: 2 task sends + 2 result sends; plus 2 stops.
        assert r.extra["messages_sent"] == 4 * iterations + 2

    def test_archive_mutually_nondominated(self, instance, params, cost):
        r = run_synchronous_tsmo(instance, params, 6, seed=3, cost_model=cost)
        front = r.front()
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not dominates(front[i], front[j])

    def test_quality_comparable_to_sequential(self, instance, cost):
        """§III.C: behavior is unchanged — at equal budgets, sync and
        sequential land in the same quality ballpark."""
        params = TSMOParams(
            max_evaluations=1500, neighborhood_size=30, restart_after=6
        )
        seq = [
            run_sequential_simulated(instance, params, seed=s, cost_model=cost)
            for s in (1, 2, 3)
        ]
        syn = [
            run_synchronous_tsmo(instance, params, 3, seed=s, cost_model=cost)
            for s in (1, 2, 3)
        ]
        seq_best = np.mean([r.best_feasible()[0] for r in seq])
        syn_best = np.mean([r.best_feasible()[0] for r in syn])
        assert abs(seq_best - syn_best) / seq_best < 0.15

    def test_no_carryover_in_sync(self, instance, params, cost):
        trace = TrajectoryRecorder()
        run_synchronous_tsmo(instance, params, 3, seed=2, cost_model=cost, trace=trace)
        assert trace.carryover_count == 0


class TestAsynchronous:
    def test_budget_bounded_overshoot(self, instance, params, cost):
        r = run_asynchronous_tsmo(instance, params, 3, seed=2, cost_model=cost)
        assert r.evaluations >= params.max_evaluations
        assert r.evaluations <= params.max_evaluations + 2 * params.neighborhood_size

    def test_deterministic(self, instance, params, cost):
        a = run_asynchronous_tsmo(instance, params, 6, seed=4, cost_model=cost)
        b = run_asynchronous_tsmo(instance, params, 6, seed=4, cost_model=cost)
        assert np.array_equal(a.front(), b.front())
        assert a.simulated_time == b.simulated_time

    def test_partial_pools_occur(self, instance, params, cost):
        r = run_asynchronous_tsmo(instance, params, 6, seed=2, cost_model=cost)
        assert 0 < r.extra["mean_pool_size"] <= params.neighborhood_size * 2
        # At least some pools must be smaller than a full neighborhood —
        # otherwise the run degenerated to synchronous behavior.
        assert r.extra["mean_pool_size"] < params.neighborhood_size * 1.5

    def test_carryover_happens(self, instance, cost):
        """The asynchronous signature: neighbors of earlier currents
        selected in later iterations (Figure 1)."""
        params = TSMOParams(
            max_evaluations=1500, neighborhood_size=30, restart_after=6
        )
        total = 0
        for seed in (1, 2, 3):
            r = run_asynchronous_tsmo(instance, params, 6, seed=seed, cost_model=cost)
            total += r.extra["carryover_neighbors"]
        assert total > 0

    def test_async_params_validation(self):
        with pytest.raises(SimulationError):
            AsyncParams(batch_size=0)
        with pytest.raises(SimulationError):
            AsyncParams(max_wait=-1.0)
        with pytest.raises(SimulationError):
            AsyncParams(master_share=1.5)

    def test_explicit_max_wait(self, instance, params, cost):
        r = run_asynchronous_tsmo(
            instance,
            params,
            3,
            seed=1,
            cost_model=cost,
            async_params=AsyncParams(max_wait=5.0),
        )
        assert r.evaluations >= params.max_evaluations

    def test_master_share_zero(self, instance, params, cost):
        r = run_asynchronous_tsmo(
            instance,
            params,
            3,
            seed=1,
            cost_model=cost,
            async_params=AsyncParams(master_share=0.0),
        )
        assert r.evaluations >= params.max_evaluations


class TestCollaborative:
    def test_each_searcher_gets_full_budget(self, instance, params, cost):
        r = run_collaborative_tsmo(
            instance,
            params,
            3,
            seed=2,
            cost_model=cost,
            collab_params=CollabParams(initial_phase_patience=3),
        )
        per = r.extra["per_searcher_evaluations"]
        assert len(per) == 3
        for count in per:
            assert count >= params.max_evaluations
        assert r.evaluations == sum(per)

    def test_deterministic(self, instance, params, cost):
        kwargs = dict(cost_model=cost, collab_params=CollabParams(initial_phase_patience=3))
        a = run_collaborative_tsmo(instance, params, 3, seed=4, **kwargs)
        b = run_collaborative_tsmo(instance, params, 3, seed=4, **kwargs)
        assert np.array_equal(a.front(), b.front())
        assert a.simulated_time == b.simulated_time

    def test_exchanges_happen(self, instance, cost):
        params = TSMOParams(
            max_evaluations=1200, neighborhood_size=30, restart_after=6
        )
        r = run_collaborative_tsmo(
            instance,
            params,
            4,
            seed=3,
            cost_model=cost,
            collab_params=CollabParams(initial_phase_patience=2),
        )
        assert r.extra["exchanges"] > 0

    def test_send_receive_conservation(self, instance, cost):
        """Every sent elite is either received or still sits in an inbox
        when its receiver's budget ran out: sends = receives + undelivered."""
        params = TSMOParams(
            max_evaluations=1200, neighborhood_size=30, restart_after=6
        )
        r = run_collaborative_tsmo(
            instance,
            params,
            4,
            seed=3,
            cost_model=cost,
            collab_params=CollabParams(initial_phase_patience=2),
        )
        sends = r.extra["per_searcher_sends"]
        receives = r.extra["per_searcher_receives"]
        assert len(sends) == len(receives) == 4
        assert sum(sends) == r.extra["exchanges"]
        assert sum(sends) == sum(receives) + r.extra["undelivered_solutions"]
        assert sum(sends) > 0

    def test_perturbation_off(self, instance, params, cost):
        r = run_collaborative_tsmo(
            instance,
            params,
            3,
            seed=1,
            cost_model=cost,
            collab_params=CollabParams(perturb=False, initial_phase_patience=3),
        )
        assert r.evaluations >= 3 * params.max_evaluations

    def test_merged_front_respects_capacity(self, instance, params, cost):
        r = run_collaborative_tsmo(
            instance, params, 6, seed=2, cost_model=cost
        )
        assert len(r.archive) <= params.archive_capacity

    def test_runtime_is_max_over_searchers(self, instance, params, cost):
        r = run_collaborative_tsmo(instance, params, 3, seed=2, cost_model=cost)
        assert r.simulated_time == pytest.approx(max(r.extra["per_searcher_finish"]))

    def test_needs_two_searchers(self, instance, params, cost):
        with pytest.raises(SimulationError):
            run_collaborative_tsmo(instance, params, 1, seed=1, cost_model=cost)

    def test_invalid_patience(self):
        with pytest.raises(SimulationError):
            CollabParams(initial_phase_patience=-1)
