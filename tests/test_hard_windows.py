"""Tests for the hard-time-window mode (§II's strict formulation)."""

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, run_sequential_tsmo
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 25, seed=19)


def hard_params(**overrides):
    base = dict(
        max_evaluations=1200,
        neighborhood_size=30,
        restart_after=6,
        hard_time_windows=True,
    )
    base.update(overrides)
    return TSMOParams(**base)


class TestHardMode:
    def test_archive_all_feasible(self, instance):
        result = run_sequential_tsmo(instance, hard_params(), seed=3)
        assert len(result.archive) > 0
        for entry in result.archive:
            assert entry.objectives.feasible, entry.objectives

    def test_current_always_feasible(self, instance):
        engine = TSMOEngine(instance, hard_params(), 5)
        engine.initialize()
        for _ in range(15):
            engine.step()
            assert engine.current.objectives.feasible

    def test_nondom_memory_all_feasible(self, instance):
        engine = TSMOEngine(instance, hard_params(), 5)
        engine.initialize()
        for _ in range(15):
            engine.step()
        for entry in engine.memories.nondom.entries:
            assert entry.objectives.feasible

    def test_infeasible_seed_rejected(self, instance):
        # Construct a deliberately tardy seed: one giant route serving
        # everything (capacity permitting routes exist? use a C2-like
        # trick: reverse order of an I1 route makes it late on R1).
        seed = i1_construct(instance, rng=np.random.default_rng(1))
        reversed_routes = [tuple(reversed(r)) for r in seed.routes]
        tardy = Solution.from_routes(instance, reversed_routes)
        if tardy.objectives.feasible:
            pytest.skip("reversal happened to stay feasible")
        engine = TSMOEngine(instance, hard_params(), 5)
        with pytest.raises(SearchError, match="hard-time-window"):
            engine.initialize(tardy)

    def test_soft_mode_explores_infeasible(self, instance):
        """The §II freedom argument: soft runs do visit tardy currents."""
        from repro.tabu.trace import TrajectoryRecorder

        trace = TrajectoryRecorder()
        run_sequential_tsmo(
            instance, hard_params(hard_time_windows=False), seed=3, trace=trace
        )
        tardiness = trace.selections_array()[:, 4]
        assert tardiness.max() > 0  # the trajectory left feasibility

    def test_hard_never_selects_tardy(self, instance):
        from repro.tabu.trace import TrajectoryRecorder

        trace = TrajectoryRecorder()
        run_sequential_tsmo(instance, hard_params(), seed=3, trace=trace)
        tardiness = trace.selections_array()[:, 4]
        assert tardiness.max() <= 1e-9

    def test_both_modes_produce_feasible_fronts(self, instance):
        """Soft and hard modes are both functional at equal budget.

        No directional claim: the soft-vs-hard quality comparison is an
        empirical question the ablation benchmark answers (measured: at
        short budgets the soft trajectory spends most of its time tardy
        and the *hard* mode wins the feasible front — see
        benchmarks/output/ablation_windows.txt and EXPERIMENTS.md)."""
        budget = hard_params(max_evaluations=2500)
        soft_params = hard_params(max_evaluations=2500, hard_time_windows=False)
        for seed in (1, 2):
            soft = run_sequential_tsmo(instance, soft_params, seed=seed)
            hard = run_sequential_tsmo(instance, budget, seed=seed)
            assert soft.feasible_front().shape[0] > 0
            assert hard.feasible_front().shape[0] > 0
            assert hard.front().shape[0] == hard.feasible_front().shape[0]
