"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists only
so that ``pip install -e . --no-use-pep517`` works on environments
without the ``wheel`` package (e.g. offline machines), which need the
legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
