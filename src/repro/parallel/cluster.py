"""The virtual cluster: processors, mailboxes and message passing.

:class:`SimCluster` binds a :class:`~repro.parallel.des.Environment` to
a :class:`~repro.parallel.costmodel.CostModel`: it assigns every
simulated processor a persistent relative speed (lognormal around 1,
mirroring the mildly heterogeneous load of a shared 128-CPU machine), a
mailbox, and an RNG stream for its compute-noise draws, and it routes
messages with the model's transit delays.

Processor 0 is by convention the master (or searcher 0); the protocols
in :mod:`repro.parallel.sync_ts` / ``async_ts`` / ``collab_ts`` are
written against this class only, never against the cost model
directly, so ablations can swap either independently.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.parallel.costmodel import CostModel
from repro.parallel.des import Environment, Mailbox, Timeout
from repro.rng import spawn_generators

__all__ = ["SimCluster"]


class SimCluster:
    """A set of simulated processors connected by an interconnect."""

    def __init__(
        self,
        env: Environment,
        n_processors: int,
        cost_model: CostModel | None = None,
        seed: int | np.random.SeedSequence | None = 0,
    ) -> None:
        if n_processors < 1:
            raise SimulationError(f"cluster needs >= 1 processor, got {n_processors}")
        self.env = env
        self.n_processors = n_processors
        self.cost = cost_model or CostModel()
        # One stream per processor for compute noise, plus one for the
        # persistent speed assignment.
        streams = spawn_generators(seed, n_processors + 1)
        self._noise = streams[:n_processors]
        speed_rng = streams[n_processors]
        if self.cost.speed_sigma > 0:
            self.speeds = speed_rng.lognormal(
                mean=0.0, sigma=self.cost.speed_sigma, size=n_processors
            )
        else:
            self.speeds = np.ones(n_processors)
        self.mailboxes = [
            Mailbox(env, name=f"cpu-{i}") for i in range(n_processors)
        ]
        #: total messages sent (diagnostics / overhead reporting).
        self.messages_sent = 0
        #: total items carried by all messages.
        self.items_sent = 0

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(self, processor: int, nominal: float) -> Timeout:
        """A timeout request for ``nominal`` compute units on a processor.

        Usage inside a process: ``yield cluster.compute(rank, work)``.
        """
        self._check(processor)
        duration = self.cost.compute_duration(
            nominal,
            float(self.speeds[processor]),
            self._noise[processor],
            self.n_processors,
        )
        return self.env.timeout(duration)

    def receive_overhead(
        self, processor: int, n_items: int = 1, *, streamed: bool = False
    ) -> Timeout:
        """A timeout request for handling one received message.

        ``streamed`` selects the overlapped per-item rate (pre-posted
        asynchronous receives) over the bulk collective-gather rate;
        see :meth:`CostModel.receive_cost`.
        """
        self._check(processor)
        return self.env.timeout(
            self.cost.receive_cost(self.n_processors, n_items, streamed=streamed)
        )

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, n_items: int = 1) -> None:
        """Send ``payload`` from processor ``src`` to ``dst``.

        The message appears in ``dst``'s mailbox after the transit
        delay.  The *receiver* pays :meth:`receive_overhead` when it
        processes the message; the sender's marshalling cost is folded
        into the transit term.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            raise SimulationError(f"processor {src} tried to message itself")
        delay = self.cost.transfer_delay(n_items, self.n_processors)
        self.mailboxes[dst].put(payload, delay=delay)
        self.messages_sent += 1
        self.items_sent += n_items

    def inbox(self, processor: int) -> Mailbox:
        """The mailbox of a processor."""
        self._check(processor)
        return self.mailboxes[processor]

    def _check(self, processor: int) -> None:
        if not 0 <= processor < self.n_processors:
            raise SimulationError(
                f"unknown processor {processor} (cluster has {self.n_processors})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimCluster(processors={self.n_processors}, t={self.env.now:.1f})"
