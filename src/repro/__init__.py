"""repro — parallel multiobjective tabu search for the CVRPTW.

A from-scratch reproduction of *"Parallel Tabu Search and the
Multiobjective Vehicle Routing Problem with Time Windows"* (Andreas
Beham, IPPS 2007): the CVRPTW problem substrate, the three-objective
TSMO tabu search, its synchronous, asynchronous and collaborative
parallelizations on a deterministic simulated cluster, and the
benchmark harness that regenerates the paper's Tables I-IV and
Figure 1.

Quickstart::

    from repro import generate_instance, run_sequential_tsmo, TSMOParams

    instance = generate_instance("R1", 100, seed=42)
    result = run_sequential_tsmo(
        instance, TSMOParams(max_evaluations=5000, neighborhood_size=100), seed=1
    )
    for entry in result.archive:
        print(entry.objectives)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro._version import __version__
from repro.core import (
    Evaluator,
    I1Params,
    ObjectiveVector,
    Solution,
    evaluate,
    i1_construct,
)
from repro.errors import (
    AdmissionError,
    BenchmarkError,
    CheckpointError,
    CrashInjected,
    InstanceError,
    JobCancelled,
    JobDeadlineExceeded,
    LedgerError,
    OperatorError,
    ParseError,
    ReproError,
    SearchError,
    SearchInterrupted,
    ServeError,
    SimulationError,
    SolutionError,
)
from repro.mo import ParetoArchive, hypervolume, mutual_coverage, set_coverage
from repro.moea import NSGA2Params, run_nsga2
from repro.obs import (
    NULL_OBS,
    EventTracer,
    MetricsRegistry,
    Obs,
    PhaseProfiler,
)
from repro.parallel import (
    AdaptiveMemoryParams,
    AsyncParams,
    CollabParams,
    CostModel,
    HybridParams,
    SimCluster,
    run_adaptive_memory_tsmo,
    run_asynchronous_tsmo,
    run_collaborative_tsmo,
    run_hybrid_tsmo,
    run_multiprocessing_tsmo,
    run_sequential_simulated,
    run_synchronous_tsmo,
)
from repro.persistence import (
    CheckpointPlan,
    CheckpointPolicy,
    InterruptFlag,
    RunManifest,
    read_checkpoint,
    write_checkpoint,
)
from repro.serve import JobSpec, ServeParams, SolveScheduler
from repro.tabu import (
    TSMOEngine,
    TSMOParams,
    TSMOResult,
    TrajectoryRecorder,
    run_sequential_tsmo,
)
from repro.vrptw import (
    Instance,
    generate_instance,
    loads_solomon,
    read_solomon,
    write_solomon,
)

__all__ = [
    "AdaptiveMemoryParams",
    "AdmissionError",
    "AsyncParams",
    "BenchmarkError",
    "CheckpointError",
    "CheckpointPlan",
    "CheckpointPolicy",
    "CollabParams",
    "CostModel",
    "CrashInjected",
    "Evaluator",
    "EventTracer",
    "HybridParams",
    "I1Params",
    "Instance",
    "InstanceError",
    "InterruptFlag",
    "JobCancelled",
    "JobDeadlineExceeded",
    "JobSpec",
    "LedgerError",
    "MetricsRegistry",
    "NSGA2Params",
    "NULL_OBS",
    "ObjectiveVector",
    "Obs",
    "OperatorError",
    "ParetoArchive",
    "ParseError",
    "PhaseProfiler",
    "ReproError",
    "RunManifest",
    "SearchError",
    "SearchInterrupted",
    "ServeError",
    "ServeParams",
    "SimCluster",
    "SimulationError",
    "Solution",
    "SolutionError",
    "SolveScheduler",
    "TSMOEngine",
    "TSMOParams",
    "TSMOResult",
    "TrajectoryRecorder",
    "__version__",
    "evaluate",
    "generate_instance",
    "hypervolume",
    "i1_construct",
    "loads_solomon",
    "mutual_coverage",
    "read_checkpoint",
    "read_solomon",
    "run_adaptive_memory_tsmo",
    "run_asynchronous_tsmo",
    "run_collaborative_tsmo",
    "run_hybrid_tsmo",
    "run_multiprocessing_tsmo",
    "run_nsga2",
    "run_sequential_simulated",
    "run_sequential_tsmo",
    "run_synchronous_tsmo",
    "set_coverage",
    "write_checkpoint",
    "write_solomon",
]
