"""Tests for the Homberger-style instance generator and the catalog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BenchmarkError, InstanceError
from repro.vrptw.catalog import TABLE_GROUPS, instances_for_table, make_instances
from repro.vrptw.generator import GeneratorConfig, InstanceClass, generate_instance

ALL_CLASSES = list(InstanceClass)


class TestInstanceClass:
    def test_parse_string(self):
        assert InstanceClass.parse("r1") is InstanceClass.R1
        assert InstanceClass.parse("RC2") is InstanceClass.RC2

    def test_parse_passthrough(self):
        assert InstanceClass.parse(InstanceClass.C1) is InstanceClass.C1

    def test_parse_unknown(self):
        with pytest.raises(InstanceError, match="unknown instance class"):
            InstanceClass.parse("X9")

    def test_geometry_tags(self):
        assert InstanceClass.R1.geometry == "random"
        assert InstanceClass.C2.geometry == "clustered"
        assert InstanceClass.RC1.geometry == "mixed"

    def test_horizon_types(self):
        assert InstanceClass.C1.horizon_type == 1
        assert InstanceClass.R2.horizon_type == 2


class TestGenerator:
    @pytest.mark.parametrize("icls", ALL_CLASSES)
    def test_all_classes_valid(self, icls):
        inst = generate_instance(icls, 40, seed=1)
        assert inst.n_customers == 40
        assert inst.n_vehicles >= inst.min_vehicles_by_capacity

    def test_deterministic(self):
        a = generate_instance("R1", 30, seed=5)
        b = generate_instance("R1", 30, seed=5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.due_date, b.due_date)

    def test_different_seeds_differ(self):
        a = generate_instance("R1", 30, seed=5)
        b = generate_instance("R1", 30, seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_type2_has_wider_windows_and_longer_horizon(self):
        t1 = generate_instance("R1", 60, seed=3)
        t2 = generate_instance("R2", 60, seed=3)
        width1 = (t1.due_date[1:] - t1.ready_time[1:]).mean()
        width2 = (t2.due_date[1:] - t2.ready_time[1:]).mean()
        assert width2 > 2 * width1
        assert t2.horizon > 2 * t1.horizon
        assert t2.capacity > t1.capacity

    def test_clustered_geometry_is_clustered(self):
        # Mean nearest-neighbor distance should be clearly smaller for C
        # than for R at the same size/seed.
        def mean_nn(inst):
            t = inst.travel[1:, 1:].copy()
            np.fill_diagonal(t, np.inf)
            return t.min(axis=1).mean()

        c = generate_instance("C1", 80, seed=4)
        r = generate_instance("R1", 80, seed=4)
        assert mean_nn(c) < 0.5 * mean_nn(r)

    def test_windows_are_reachable(self):
        for icls in ALL_CLASSES:
            inst = generate_instance(icls, 50, seed=2)
            drive = inst.travel[0, 1:]
            # The window must open no earlier than the direct drive and
            # close early enough to return before the horizon.
            assert np.all(inst.ready_time[1:] >= drive - 1e-9)
            assert np.all(
                inst.due_date[1:] + inst.service_time[1:] + drive
                <= inst.horizon + 1e-9
            )

    def test_fleet_rule_matches_paper(self):
        # "25 for the 100 city problems up to 100 for the 400 city
        # problems" -> R = N / 4.
        inst = generate_instance("R1", 100, seed=1)
        assert inst.n_vehicles == 25
        inst = generate_instance("R1", 400, seed=1)
        assert inst.n_vehicles == 100

    def test_naming_scheme(self):
        assert generate_instance("C1", 400, seed=1, replicate=3).name == "C1_4_3"
        assert generate_instance("R2", 100, seed=1).name == "R2_1_1"

    def test_service_time_by_geometry(self):
        c = generate_instance("C1", 20, seed=1)
        r = generate_instance("R1", 20, seed=1)
        assert c.service_time[1] == 90.0
        assert r.service_time[1] == 10.0

    def test_tw_density(self):
        cfg = GeneratorConfig(tw_density=0.5)
        inst = generate_instance("R1", 200, seed=8, config=cfg)
        widths = inst.due_date[1:] - inst.ready_time[1:]
        # About half the customers should have (much) wider windows.
        wide = (widths > 2 * 2 * 20.0).sum()  # > twice the max small width
        assert 50 <= wide <= 150

    def test_invalid_density(self):
        with pytest.raises(InstanceError, match="tw_density"):
            generate_instance("R1", 10, seed=1, config=GeneratorConfig(tw_density=1.5))

    def test_invalid_size(self):
        with pytest.raises(InstanceError, match="n_customers"):
            generate_instance("R1", 0, seed=1)

    def test_config_overrides(self):
        cfg = GeneratorConfig().with_overrides(demand_max=5)
        inst = generate_instance("R1", 50, seed=1, config=cfg)
        assert inst.demand[1:].max() <= 5

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=2**31),
        icls=st.sampled_from(ALL_CLASSES),
    )
    def test_property_always_valid(self, n, seed, icls):
        """Any (class, size, seed) yields a valid, feasible-fleet instance."""
        inst = generate_instance(icls, n, seed=seed)
        assert inst.n_customers == n
        assert inst.demand[1:].max() <= inst.capacity
        assert np.all(inst.due_date >= inst.ready_time)
        assert inst.n_vehicles * inst.capacity >= inst.total_demand


class TestCatalog:
    def test_groups_cover_all_tables(self):
        assert set(TABLE_GROUPS) == {"table1", "table2", "table3", "table4"}

    def test_table_mix(self):
        specs = instances_for_table("table1", scale=0.1)
        classes = {s.instance_class for s in specs}
        assert classes == {InstanceClass.C1, InstanceClass.R1}
        assert all(s.n_customers == 40 for s in specs)

    def test_table4_is_600_city_c2r2(self):
        specs = instances_for_table("table4", scale=1.0)
        assert {s.instance_class for s in specs} == {
            InstanceClass.C2,
            InstanceClass.R2,
        }
        assert all(s.n_customers == 600 for s in specs)

    def test_replicates(self):
        specs = instances_for_table("table2", scale=0.1, replicates=3)
        assert len(specs) == 2 * 3
        assert len({s.seed for s in specs}) == 6

    def test_unknown_table(self):
        with pytest.raises(BenchmarkError, match="unknown table"):
            instances_for_table("table9")

    def test_bad_scale(self):
        with pytest.raises(BenchmarkError, match="scale"):
            instances_for_table("table1", scale=0)

    def test_specs_build(self):
        specs = instances_for_table("table1", scale=0.05)
        instances = make_instances(specs)
        assert [i.n_customers for i in instances] == [20, 20]
        # Stable: rebuilding gives identical coordinates.
        again = make_instances(specs)
        assert np.array_equal(instances[0].x, again[0].x)

    def test_minimum_size_floor(self):
        specs = instances_for_table("table1", scale=0.001)
        assert all(s.n_customers >= 8 for s in specs)
