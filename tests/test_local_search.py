"""Tests for the deterministic best-improvement local search."""

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.core.local_search import LocalSearchResult, ScalarWeights, local_search
from repro.core.solution import Solution
from repro.errors import SearchError
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance("C2", 30, seed=17)


@pytest.fixture(scope="module")
def seed_solution(instance):
    return i1_construct(instance, rng=np.random.default_rng(2))


class TestScalarWeights:
    def test_value(self):
        from repro.core.objectives import ObjectiveVector

        w = ScalarWeights(distance=1.0, vehicles=10.0, tardiness=2.0)
        assert w.value(ObjectiveVector(100.0, 3, 5.0)) == pytest.approx(
            100 + 30 + 10
        )

    def test_negative_rejected(self):
        with pytest.raises(SearchError):
            ScalarWeights(distance=-1.0)


class TestLocalSearch:
    def test_never_worse_than_start(self, instance, seed_solution):
        weights = ScalarWeights()
        result = local_search(
            seed_solution, weights=weights, sample_size=40, max_evaluations=2000, rng=1
        )
        assert isinstance(result, LocalSearchResult)
        assert result.scalar_value <= weights.value(seed_solution.objectives) + 1e-9

    def test_monotone_improvement(self, instance, seed_solution):
        """Each accepted move strictly improves, so the final value is
        strictly better whenever any round improved."""
        result = local_search(
            seed_solution, sample_size=40, max_evaluations=2000, rng=1
        )
        if result.rounds > 1:
            assert result.scalar_value < ScalarWeights().value(
                seed_solution.objectives
            )

    def test_budget_respected(self, instance, seed_solution):
        result = local_search(
            seed_solution, sample_size=30, max_evaluations=200, rng=1
        )
        assert result.evaluations <= 200

    def test_convergence_flag(self, instance, seed_solution):
        # A large budget on a small instance should reach a sampled
        # local optimum.
        result = local_search(
            seed_solution, sample_size=60, max_evaluations=30_000, rng=1
        )
        assert result.converged

    def test_deterministic(self, instance, seed_solution):
        a = local_search(seed_solution, sample_size=30, max_evaluations=1000, rng=9)
        b = local_search(seed_solution, sample_size=30, max_evaluations=1000, rng=9)
        assert a.solution == b.solution
        assert a.scalar_value == b.scalar_value

    def test_solution_stays_valid(self, instance, seed_solution):
        result = local_search(
            seed_solution, sample_size=40, max_evaluations=2000, rng=3
        )
        Solution._validate_routes(instance, result.solution.routes)
        assert all(
            load <= instance.capacity for load in result.solution.route_loads()
        )

    def test_tardiness_weight_drives_feasibility(self, instance, seed_solution):
        """With a huge tardiness weight the descent must end feasible
        (the seed is feasible, so it can at worst stay put)."""
        result = local_search(
            seed_solution,
            weights=ScalarWeights(tardiness=1e6),
            sample_size=40,
            max_evaluations=2000,
            rng=4,
        )
        assert result.objectives.feasible

    def test_invalid_sample_size(self, seed_solution):
        with pytest.raises(SearchError):
            local_search(seed_solution, sample_size=0)

    def test_tsmo_not_worse_than_descent(self, instance, seed_solution):
        """The memory machinery must pay for itself: at equal budget,
        TSMO's best feasible distance is within noise of (usually below)
        plain descent's."""
        from repro.tabu.params import TSMOParams
        from repro.tabu.search import run_sequential_tsmo

        budget = 3000
        descent = local_search(
            seed_solution, sample_size=50, max_evaluations=budget, rng=5
        )
        tsmo = run_sequential_tsmo(
            instance,
            TSMOParams(max_evaluations=budget, neighborhood_size=50, restart_after=8),
            seed=5,
            initial=seed_solution,
        )
        best = tsmo.best_feasible()
        assert best is not None
        if descent.objectives.feasible:
            assert best[0] <= descent.objectives.distance * 1.15
