#!/usr/bin/env python
"""Compare the three parallel TSMO variants on the simulated cluster.

Reproduces, on one instance, the qualitative content of the paper's
Tables I–IV: the synchronous master–worker variant saves some runtime,
the asynchronous one saves much more (peaking around 6 processors),
and the collaborative multisearch pays a runtime penalty but finds
better fronts with fewer vehicles.

Run:  python examples/parallel_comparison.py

Instrumented run (identical trajectories — instrumentation observes,
never steers):

    REPRO_OBS=1 python examples/parallel_comparison.py
        # ... plus a per-variant phase-timing table
    REPRO_TRACE_DIR=traces python examples/parallel_comparison.py
        # ... plus one JSONL event trace per variant, checkable with
        # python -m repro.obs.validate traces/
"""

from repro import (
    TSMOParams,
    generate_instance,
    run_asynchronous_tsmo,
    run_collaborative_tsmo,
    run_sequential_simulated,
    run_synchronous_tsmo,
)
from repro.obs import Obs, format_profile_table
from repro.parallel import CostModel
from repro.parallel.collab_ts import CollabParams
from repro.stats.speedup import format_speedup


def main() -> None:
    instance = generate_instance("R1", 60, seed=1)
    params = TSMOParams(
        max_evaluations=6_000, neighborhood_size=60, restart_after=12
    )
    cost = CostModel().for_neighborhood(params.neighborhood_size)
    seed = 7
    profiles: dict[str, dict] = {}

    def instrumented(label, run):
        """Run one variant under its own (env-gated) obs bundle."""
        with Obs.from_env(span=label, unit="simulated") as obs:
            result = run(obs)
        if obs.enabled:
            profiles[label] = obs.profiler.summary()
        return result

    sequential = instrumented(
        "sequential",
        lambda obs: run_sequential_simulated(instance, params, seed, cost, obs=obs),
    )
    ts = sequential.simulated_time
    print(f"{instance.name}: sequential baseline T = {ts:.0f} simulated units\n")
    print(
        f"{'variant':<16} {'procs':>5} {'runtime':>9} {'speedup':>9} "
        f"{'best feasible (dist, veh)':>27}"
    )

    def show(result) -> None:
        best = result.best_feasible()
        best_txt = f"({best[0]:.0f}, {best[1]:.0f})" if best else "(none)"
        print(
            f"{result.algorithm:<16} {result.processors:>5} "
            f"{result.simulated_time:>9.0f} "
            f"{format_speedup(ts / result.simulated_time):>9} {best_txt:>27}"
        )

    show(sequential)
    for p in (3, 6, 12):
        show(
            instrumented(
                f"synchronous@{p}",
                lambda obs: run_synchronous_tsmo(
                    instance, params, p, seed, cost, obs=obs
                ),
            )
        )
        show(
            instrumented(
                f"asynchronous@{p}",
                lambda obs: run_asynchronous_tsmo(
                    instance, params, p, seed, cost, obs=obs
                ),
            )
        )
        show(
            instrumented(
                f"collaborative@{p}",
                lambda obs: run_collaborative_tsmo(
                    instance,
                    params,
                    p,
                    seed,
                    cost,
                    CollabParams(initial_phase_patience=4),
                    obs=obs,
                ),
            )
        )
    if profiles:
        print("\nWhere each iteration went (simulated units):")
        print(format_profile_table(profiles))
    print(
        "\nShapes to notice (cf. the paper): sync saturates early, async "
        "peaks at 6\nand dips at 12 (message handling), collaborative is "
        "slower but finds the\nbest fronts — its extra runtime is "
        "communication, not wasted search."
    )


if __name__ == "__main__":
    main()
