"""The run matrix behind each table: algorithm × processors × instance × seed.

:func:`run_table` executes the full protocol of one of Tables I–IV at
the configured scale: for every generated instance of the table's
class mix and every run seed, it runs the sequential baseline plus the
three parallel variants at every processor count, all on the same
simulated-cluster cost model, and collects everything into a
:class:`~repro.bench.tables.TableData`.

Seeding: run ``k`` of instance ``i`` uses a seed derived from
``(config.seed, table, i, k)``, shared across algorithm
configurations, so algorithms are compared on identical
instance/initialization draws wherever the protocol allows.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.config import BenchConfig
from repro.bench.tables import TableData
from repro.errors import BenchmarkError
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.costmodel import CostModel
from repro.parallel.sync_ts import run_synchronous_tsmo
from repro.tabu.search import TSMOResult
from repro.vrptw.catalog import instances_for_table
from repro.vrptw.instance import Instance

__all__ = ["run_table", "run_configuration", "ALGORITHMS"]

ALGORITHMS = ("sequential", "synchronous", "asynchronous", "collaborative")


def _run_seed(config: BenchConfig, table: str, instance_idx: int, run_idx: int) -> int:
    """Deterministic per-run seed shared by all algorithm configs."""
    table_no = int(table.removeprefix("table"))
    return (
        config.seed * 1_000_003 + table_no * 10_007 + instance_idx * 101 + run_idx
    ) % (2**31 - 1)


def run_configuration(
    algorithm: str,
    instance: Instance,
    config: BenchConfig,
    n_processors: int,
    seed: int,
    cost_model: CostModel | None = None,
) -> TSMOResult:
    """Run one algorithm configuration on one instance."""
    params = config.tsmo_params()
    if algorithm == "sequential":
        return run_sequential_simulated(instance, params, seed, cost_model)
    if algorithm == "synchronous":
        return run_synchronous_tsmo(instance, params, n_processors, seed, cost_model)
    if algorithm == "asynchronous":
        return run_asynchronous_tsmo(
            instance, params, n_processors, seed, cost_model, AsyncParams()
        )
    if algorithm == "collaborative":
        return run_collaborative_tsmo(
            instance,
            params,
            n_processors,
            seed,
            cost_model,
            CollabParams(initial_phase_patience=config.collab_patience),
        )
    raise BenchmarkError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def run_table(
    table: str,
    config: BenchConfig | None = None,
    cost_model: CostModel | None = None,
    *,
    progress: Callable[[str], None] | None = None,
) -> TableData:
    """Execute the full run matrix of one of the paper's tables."""
    config = config or BenchConfig.from_env()
    if cost_model is None:
        # Keep the simulation dimensionally self-similar at reduced
        # neighborhood sizes (see CostModel.for_neighborhood).
        cost_model = CostModel().for_neighborhood(config.neighborhood_size)
    specs = instances_for_table(
        table, scale=config.city_fraction, replicates=config.replicates
    )
    data = TableData(table=table)
    for instance_idx, spec in enumerate(specs):
        instance = spec.build()
        for run_idx in range(config.runs):
            seed = _run_seed(config, table, instance_idx, run_idx)
            for algorithm in ALGORITHMS:
                proc_list = (1,) if algorithm == "sequential" else config.processors
                for p in proc_list:
                    if progress is not None:
                        progress(
                            f"{table}: {instance.name} run {run_idx + 1}/"
                            f"{config.runs} {algorithm}@{p}"
                        )
                    result = run_configuration(
                        algorithm, instance, config, p, seed, cost_model
                    )
                    data.add(result)
    return data


def table_front_reference(data: TableData) -> np.ndarray:
    """The combined non-dominated reference front of every run in a
    table (useful for hypervolume reporting in EXPERIMENTS.md)."""
    from repro.mo.dominance import non_dominated_mask

    fronts = [
        r.feasible_front()
        for key in data.configs()
        for r in data.runs_of(key)
        if r.feasible_front().size
    ]
    if not fronts:
        return np.zeros((0, 3))
    merged = np.vstack(fronts)
    return merged[non_dominated_mask(merged)]
