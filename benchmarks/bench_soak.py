"""Sustained-load soak benchmark (the ``"soak"`` section of
``BENCH_serve.json``).

Where ``bench_serve.py`` measures a fixed burst of jobs (throughput
and makespan), this holds a fixed Poisson arrival *rate* against the
scheduler for a fixed *duration* and reports steady-state SLOs: the
warmup window is trimmed so worker spawn and cold caches don't pollute
the latency quantiles, and the p50/p95/p99 numbers come from the
mergeable latency histograms (the exact per-job quantiles ride along
as a cross-check).  The soak also consumes live ``metrics_snapshot``
events off the scheduler's telemetry bus, so peak backlog/queue-depth
come from the streaming plane itself — one run exercises admission,
scheduling, span-stamped worker traffic, and the tail path end to end.

Duration is short by default so the tier-2 benchmark job stays fast;
set ``REPRO_SOAK_SECONDS`` (and optionally ``REPRO_SOAK_RATE``) for a
longer pass, e.g. the CI ``serve-soak`` job runs ~60 seconds.
"""

import asyncio
import json
import os

import pytest

from repro.parallel.pool import PoolParams
from repro.serve import ServeParams, SoakConfig, SolveScheduler, run_soak
from repro.vrptw.generator import generate_instance

from conftest import REPO_ROOT

SERVE_JSON = REPO_ROOT / "BENCH_serve.json"

FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

DURATION_S = float(os.environ.get("REPRO_SOAK_SECONDS", "8"))
RATE = float(os.environ.get("REPRO_SOAK_RATE", "10"))

CONFIG = SoakConfig(
    duration_s=DURATION_S,
    warmup_s=min(2.0, DURATION_S / 4),
    rate=RATE,
    seed=1,
    budget=48,
    neighborhood=8,
    tenants=(("acme", 3.0), ("globex", 1.0)),
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


def test_serve_soak(instance):
    """Hold the arrival rate for the full duration and record the
    warmup-trimmed steady-state SLO section under ``"soak"``."""

    async def scenario():
        async with SolveScheduler(
            instance,
            n_workers=2,
            pool_params=FAST,
            params=ServeParams(max_active=64, max_queued=256),
            tenant_weights=dict(CONFIG.tenants),
        ) as scheduler:
            return await run_soak(scheduler, CONFIG)

    report = asyncio.run(scenario())
    assert report.conserved(), report.to_dict()
    # Sustained load actually arrived and the steady-state window saw
    # completions (duration and rate are sized so this holds even on a
    # slow machine with the short default duration).
    assert report.submitted >= CONFIG.duration_s * CONFIG.rate * 0.5
    assert report.steady_latency_s["count"] > 0
    # The soak consumed the live telemetry stream, not a post-hoc dump.
    assert report.snapshots > 0
    # Fold the soak numbers into the artifact bench_serve.py wrote (or
    # start a fresh payload when this file runs standalone).
    try:
        payload = json.loads(SERVE_JSON.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        payload = {"bench": "serve"}
    payload["soak"] = {
        "config": {
            "duration_s": CONFIG.duration_s,
            "warmup_s": CONFIG.warmup_s,
            "rate": CONFIG.rate,
            "seed": CONFIG.seed,
            "budget": CONFIG.budget,
            "neighborhood": CONFIG.neighborhood,
            "driver": CONFIG.driver,
            "n_workers": 2,
        },
        "report": report.to_dict(),
    }
    SERVE_JSON.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    steady = report.steady_latency_s
    print(
        f"\nserve-soak: {report.completed}/{report.accepted} jobs over "
        f"{report.duration_s:.0f}s @ {report.rate:.1f}/s, steady p50="
        f"{steady['p50'] * 1e3:.0f}ms p95={steady['p95'] * 1e3:.0f}ms "
        f"p99={steady['p99'] * 1e3:.0f}ms (n={steady['count']}), "
        f"max_backlog={report.max_backlog}, snapshots={report.snapshots} "
        f"-> {SERVE_JSON.name}"
    )
