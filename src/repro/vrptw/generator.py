"""Gehring–Homberger-style instance generator.

The paper's evaluation uses the "extended Solomon" problem set of
Gehring and Homberger (400 and 600 customers), distributed as text
files from a website that is not reachable in this offline environment.
This module synthesizes instances with the same structural ingredients,
which is what the search algorithms actually respond to:

* **geometry** — class ``R`` scatters customers uniformly, class ``C``
  groups them into clusters around seed points, class ``RC`` mixes the
  two (paper intro: "customers scattered or clustered around the
  depot");
* **time-window regime** — type ``1`` instances have a short horizon,
  narrow windows and a small vehicle capacity (many short routes),
  type ``2`` instances have a long horizon, wide windows and a large
  capacity (few long routes).  Tables I/III use (C1, R1) — "small time
  windows" — and Tables II/IV use (C2, R2) — "large time windows";
* **fleet size** — the paper states the vehicle limit "ranges from 25
  for the 100 city problems up to 100 for the 400 city problems",
  i.e. ``R = N / 4``; we follow that rule.

Windows are always *reachable*: a window's start is never earlier than
the direct drive from the depot, and service plus the return leg always
fits in the horizon, matching the published sets where the I1 heuristic
can construct feasible seeds.

The generator is deterministic in ``(instance class, size, seed)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import InstanceError
from repro.rng import as_generator
from repro.vrptw.instance import Instance

__all__ = ["InstanceClass", "GeneratorConfig", "generate_instance"]


class InstanceClass(str, enum.Enum):
    """The six Solomon/Homberger instance families."""

    C1 = "C1"
    C2 = "C2"
    R1 = "R1"
    R2 = "R2"
    RC1 = "RC1"
    RC2 = "RC2"

    @property
    def geometry(self) -> str:
        """``"clustered"``, ``"random"`` or ``"mixed"`` customer placement."""
        if self.value.startswith("RC"):
            return "mixed"
        if self.value.startswith("C"):
            return "clustered"
        return "random"

    @property
    def horizon_type(self) -> int:
        """1 = short horizon / narrow windows, 2 = long horizon / wide windows."""
        return int(self.value[-1])

    @classmethod
    def parse(cls, text: str | "InstanceClass") -> "InstanceClass":
        """Accept both enum members and case-insensitive strings."""
        if isinstance(text, cls):
            return text
        try:
            return cls(str(text).upper())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise InstanceError(
                f"unknown instance class {text!r}; expected one of {valid}"
            ) from None


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Tunable knobs of the synthetic instance generator.

    The defaults reproduce the proportions of the Gehring–Homberger
    sets; tests lock the derived structural statistics (window widths,
    route-count lower bounds) rather than exact coordinates.
    """

    #: side length of the coordinate square for a 100-customer instance;
    #: larger instances scale the square so customer density stays constant.
    base_area_side: float = 90.0
    #: customer demand is drawn uniformly from ``1..demand_max``.
    demand_max: int = 50
    #: vehicle capacity for type-1 (short horizon) instances.
    capacity_type1: float = 200.0
    #: vehicle capacity for type-2 (long horizon) instances.
    capacity_type2: float = 1000.0
    #: service time for clustered geometries (Solomon uses 90).
    service_clustered: float = 90.0
    #: service time for random/mixed geometries (Solomon uses 10).
    service_random: float = 10.0
    #: half-width range of type-1 ("small") time windows.
    tw_small: tuple[float, float] = (5.0, 20.0)
    #: half-width range of type-2 ("large") time windows.
    tw_large: tuple[float, float] = (60.0, 240.0)
    #: customers a vehicle is expected to serve within the horizon.
    #: Together with service times and typical leg lengths this sizes
    #: the planning horizon the way the Solomon sets do: the horizon
    #: *just* fits a full route's workload, so customer windows are
    #: densely packed and overlap — which is what makes intra-route
    #: reordering (2-opt, or-opt) locally feasible under the paper's
    #: ready-time criterion.  (Sanity anchor: for 100 customers this
    #: yields ~330 for R1 and ~1250 for C1, vs Solomon's 230/1236.)
    route_size_target: float = 10.0
    #: typical leg length as a fraction of the square side.
    leg_fraction: float = 0.12
    #: slack multiplier on the route workload when sizing the horizon.
    horizon_slack: float = 1.15
    #: type-2 ("large windows / long horizon") horizon multiplier over
    #: the type-1 horizon (Solomon: R2/R1 = 4.3, C2/C1 = 2.7).
    horizon_type2_multiplier: float = 3.5
    #: average number of customers per cluster for C/RC geometries.
    cluster_size: int = 10
    #: standard deviation of customer offsets around a cluster seed,
    #: as a fraction of the square side.
    cluster_spread: float = 0.03
    #: fraction of customers that receive a tight window; the rest get
    #: the full horizon (Solomon publishes 25/50/75/100% densities).
    tw_density: float = 1.0
    #: customers per vehicle used to size the fleet (paper: N / 4).
    customers_per_vehicle: float = 4.0

    def with_overrides(self, **kwargs: object) -> "GeneratorConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def _area_side(n_customers: int, config: GeneratorConfig) -> float:
    """Square side scaled so customer density matches the 100-city base."""
    return config.base_area_side * math.sqrt(max(n_customers, 1) / 100.0)


def _place_customers(
    geometry: str,
    n: int,
    side: float,
    rng: np.random.Generator,
    config: GeneratorConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw customer coordinates for the requested geometry."""
    if geometry == "random":
        coords = rng.uniform(0.0, side, size=(n, 2))
        return coords[:, 0], coords[:, 1]

    if geometry == "mixed":
        n_clustered = n // 2
        cx, cy = _place_customers("clustered", n_clustered, side, rng, config)
        rx, ry = _place_customers("random", n - n_clustered, side, rng, config)
        return np.concatenate([cx, rx]), np.concatenate([cy, ry])

    # clustered: seed points uniform in the square, customers normal
    # around a randomly chosen seed, clipped to the square.
    n_clusters = max(1, round(n / config.cluster_size))
    seeds = rng.uniform(0.1 * side, 0.9 * side, size=(n_clusters, 2))
    assignment = rng.integers(0, n_clusters, size=n)
    spread = config.cluster_spread * side
    offsets = rng.normal(0.0, spread, size=(n, 2))
    coords = seeds[assignment] + offsets
    coords = np.clip(coords, 0.0, side)
    return coords[:, 0], coords[:, 1]


def generate_instance(
    instance_class: str | InstanceClass,
    n_customers: int,
    seed: int | np.random.Generator | None = None,
    config: GeneratorConfig | None = None,
    *,
    replicate: int = 1,
) -> Instance:
    """Generate a Homberger-style instance.

    Parameters
    ----------
    instance_class:
        One of ``C1, C2, R1, R2, RC1, RC2`` (string or enum).
    n_customers:
        Number of customers ``N`` (the published sets use 100..1000;
        any ``N >= 1`` works).
    seed:
        Seed or generator; the instance is a pure function of
        ``(class, N, seed, replicate, config)``.
    config:
        Generator knobs; defaults reproduce Homberger proportions.
    replicate:
        Replicate number within the class, used only for naming
        (mirrors ``R1_4_1 .. R1_4_10`` in the published sets).

    Returns
    -------
    Instance
        A fully validated instance with reachable time windows.
    """
    icls = InstanceClass.parse(instance_class)
    if n_customers < 1:
        raise InstanceError(f"n_customers must be >= 1, got {n_customers}")
    cfg = config or GeneratorConfig()
    rng = as_generator(seed)

    side = _area_side(n_customers, cfg)
    depot_x = depot_y = side / 2.0
    cx, cy = _place_customers(icls.geometry, n_customers, side, rng, cfg)

    demand = rng.integers(1, cfg.demand_max + 1, size=n_customers).astype(np.float64)
    if icls.geometry == "clustered":
        service = np.full(n_customers, cfg.service_clustered)
    else:
        service = np.full(n_customers, cfg.service_random)

    # Horizon sized from the route workload (see route_size_target).
    service_scalar = float(service.max()) if n_customers else 0.0
    workload = (
        cfg.route_size_target
        * (service_scalar + cfg.leg_fraction * side)
        * cfg.horizon_slack
        + side
    )
    if icls.horizon_type == 1:
        capacity = cfg.capacity_type1
        horizon = workload
        half_lo, half_hi = cfg.tw_small
    else:
        capacity = cfg.capacity_type2
        horizon = workload * cfg.horizon_type2_multiplier
        half_lo, half_hi = cfg.tw_large
    # Floor the horizon so even very small instances (where the
    # coordinate square shrinks below the service-time scale) remain
    # schedulable: out-and-back plus a few services must always fit.
    horizon = max(horizon, 4.0 * service_scalar + 2.0 * side)

    # Travel times from/to the depot bound where a window can sit so the
    # customer stays reachable on a direct out-and-back trip.
    dist_depot = np.hypot(cx - depot_x, cy - depot_y)
    earliest = dist_depot
    latest = horizon - dist_depot - service
    if np.any(latest <= earliest):
        raise InstanceError(
            "horizon too short for the chosen geometry; increase "
            "horizon_factor or shrink service times"
        )

    center = rng.uniform(earliest, latest)
    half = rng.uniform(half_lo, half_hi, size=n_customers)
    ready = np.maximum(earliest, center - half)
    due = np.minimum(latest, center + half)

    # A slice of customers may be left unconstrained (Solomon's density
    # parameter): their window spans the whole reachable range.
    if not 0.0 <= cfg.tw_density <= 1.0:
        raise InstanceError(f"tw_density must be in [0, 1], got {cfg.tw_density}")
    if cfg.tw_density < 1.0:
        unconstrained = rng.random(n_customers) >= cfg.tw_density
        ready = np.where(unconstrained, 0.0, ready)
        due = np.where(unconstrained, latest, due)

    n_vehicles = max(
        int(math.ceil(n_customers / cfg.customers_per_vehicle)),
        int(math.ceil(demand.sum() / capacity)),
    )

    hundreds = max(1, round(n_customers / 100))
    name = f"{icls.value}_{hundreds}_{replicate}"

    return Instance(
        name=name,
        x=np.concatenate([[depot_x], cx]),
        y=np.concatenate([[depot_y], cy]),
        demand=np.concatenate([[0.0], demand]),
        ready_time=np.concatenate([[0.0], ready]),
        due_date=np.concatenate([[horizon], due]),
        service_time=np.concatenate([[0.0], service]),
        capacity=capacity,
        n_vehicles=n_vehicles,
    )
