"""The batch neighborhood-evaluation kernel and its bit-identity oracle.

Four layers under test (DESIGN.md "Batch evaluation kernel"):

* per-operator descriptor emitters: for every batch-enabled operator a
  kernel-evaluated neighborhood must be *bit-identical* — same moves,
  same objective floats, same RNG stream position — to the scalar
  oracle path (``vector=False``), across chains of parents that
  exercise route deletion, new-route relocation and tight windows;
* :func:`batch_route_stats` must reproduce the scalar arrival-time
  recursion bit-for-bit, including empty/singleton/depot-adjacent
  routes;
* the five search drivers must walk *identical trajectories* with the
  ``REPRO_VECTOR_EVAL`` knob on and off — the knob may change who
  computes the numbers, never the numbers;
* the kernel's observability counters (``eval.vector_calls``,
  ``eval.batch_size``, ``eval.scalar_fallbacks``) and the deferred
  cache protocol behave as documented.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_eval import (
    batch_route_stats,
    batch_supported,
    sample_batch,
    vector_eval_enabled,
)
from repro.core.construction import i1_construct
from repro.core.evaluation import Evaluator
from repro.core.operators.exchange import Exchange
from repro.core.operators.or_opt import OrOpt
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.operators.relocate import Relocate
from repro.core.operators.segment_exchange import SegmentExchange
from repro.core.operators.two_opt import TwoOpt
from repro.core.operators.two_opt_star import TwoOptStar
from repro.core.routes import route_stats
from repro.core.solution import Solution
from repro.core.stats_cache import RouteStatsCache
from repro.obs import Obs
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.sync_ts import run_synchronous_tsmo
from repro.tabu.neighborhood import LazyNeighbor, sample_neighborhood
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

OPERATORS = [Relocate, Exchange, TwoOpt, TwoOptStar, OrOpt]


def assert_entries_identical(parent, vec, oracle):
    """Two BatchResults agree bit-for-bit (moves, floats, children)."""
    assert len(vec.entries) == len(oracle.entries)
    for (obj_v, move_v, maker), (obj_o, move_o, _) in zip(
        vec.entries, oracle.entries
    ):
        move_v = move_v if move_v is not None else maker()
        assert move_v == move_o
        assert obj_v.distance == obj_o.distance
        assert obj_v.vehicles == obj_o.vehicles
        assert obj_v.tardiness == obj_o.tardiness
        child = move_v.apply(parent)
        assert obj_v.distance == child.objectives.distance
        assert obj_v.tardiness == child.objectives.tardiness
        assert obj_v.vehicles == child.objectives.vehicles


# ----------------------------------------------------------------------
# 1. Per-operator oracle equality, over chains of parents
# ----------------------------------------------------------------------


@pytest.mark.parametrize("op_cls", OPERATORS, ids=lambda c: c.__name__)
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_kernel_matches_oracle_per_operator(op_cls, seed):
    """Single-operator registries: kernel == oracle, bit for bit.

    Each example walks a fresh tight-window instance through a short
    chain of accepted moves, so later samples see parents with deleted
    routes, freshly opened routes and cold caches — the assembly paths
    the single-shot test cannot reach.
    """
    rng = np.random.default_rng(seed)
    instance = generate_instance("R1", 16, seed=int(rng.integers(1, 10**6)))
    solution = i1_construct(instance, rng=rng)
    registry = OperatorRegistry([op_cls()])
    assert batch_supported(registry)
    master = np.random.default_rng(seed ^ 0x5EED)
    for _ in range(3):
        state = master.bit_generator.state
        vec_rng = np.random.default_rng()
        vec_rng.bit_generator.state = state
        ora_rng = np.random.default_rng()
        ora_rng.bit_generator.state = state
        vec = sample_batch(
            solution, 12, registry, vec_rng, Evaluator(instance), vector=True
        )
        oracle = sample_batch(
            solution, 12, registry, ora_rng, Evaluator(instance), vector=False
        )
        assert vec_rng.bit_generator.state == ora_rng.bit_generator.state
        assert_entries_identical(solution, vec, oracle)
        master.bit_generator.state = vec_rng.bit_generator.state
        if not vec.entries:
            break
        obj, move, maker = vec.entries[0]
        move = move if move is not None else maker()
        solution = move.apply(solution)


def test_kernel_matches_oracle_mixed_registry(small_instance, small_solution):
    """The paper's five-operator wheel: one big sampled neighborhood."""
    registry = default_registry()
    vec_rng = np.random.default_rng(31337)
    ora_rng = np.random.default_rng(31337)
    vec = sample_batch(
        small_solution, 60, registry, vec_rng, Evaluator(small_instance), vector=True
    )
    oracle = sample_batch(
        small_solution,
        60,
        default_registry(),
        ora_rng,
        Evaluator(small_instance),
        vector=False,
    )
    assert len(vec.entries) == 60
    assert_entries_identical(small_solution, vec, oracle)
    assert float(vec_rng.random()) == float(ora_rng.random())


def test_kernel_scalar_tail_when_no_kind_ready(tiny_instance):
    """A parent no emitter can serve routes every slot to the tail.

    On a single-route solution Exchange/TwoOptStar have an empty wheel
    (``batch_ready`` is false), so the kernel consumes no block RNG and
    the whole neighborhood comes from scalar ``draw_move`` — on *both*
    knob settings, keeping the stream aligned.
    """
    customers = tuple(range(1, tiny_instance.n_customers + 1))
    solution = Solution(tiny_instance, (customers,))
    for op_cls in (Exchange, TwoOptStar):
        registry = OperatorRegistry([op_cls()])
        vec_rng = np.random.default_rng(7)
        ora_rng = np.random.default_rng(7)
        vec = sample_batch(
            solution, 10, registry, vec_rng, Evaluator(tiny_instance), vector=True
        )
        oracle = sample_batch(
            solution, 10, registry, ora_rng, Evaluator(tiny_instance), vector=False
        )
        assert vec_rng.bit_generator.state == ora_rng.bit_generator.state
        assert_entries_identical(solution, vec, oracle)


# ----------------------------------------------------------------------
# 2. batch_route_stats == route_stats, bit for bit
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_batch_route_stats_bitwise_equal(seed):
    """Vectorized route scans == scalar scans on random route mixes."""
    rng = np.random.default_rng(seed)
    instance = generate_instance(
        "R1" if seed % 2 else "C2", 20, seed=int(rng.integers(1, 10**6))
    )
    customers = list(rng.permutation(np.arange(1, 21)))
    routes = []
    while customers:
        k = int(rng.integers(1, 6))
        routes.append(tuple(int(c) for c in customers[:k]))
        customers = customers[k:]
    # Edge shapes the sampler rarely emits together: empty, singleton,
    # and a full tour (deep recursion, guaranteed tardiness on R1).
    routes += [(), (1,), tuple(range(1, 21))]
    batched = batch_route_stats(instance, routes)
    assert len(batched) == len(routes)
    for route, st_b in zip(routes, batched):
        st_s = route_stats(instance, route)
        assert st_b.distance == st_s.distance
        assert st_b.tardiness == st_s.tardiness
        assert st_b.load == st_s.load


def test_batch_route_stats_empty_input(small_instance):
    assert batch_route_stats(small_instance, []) == []


# ----------------------------------------------------------------------
# 3. Knob invariance: whole search trajectories
# ----------------------------------------------------------------------

DRIVERS = [
    "sequential",
    "sequential-sim",
    "synchronous",
    "asynchronous",
    "collaborative",
]


def run_driver(driver, instance, params, seed):
    if driver == "sequential":
        return run_sequential_tsmo(instance, params, seed=seed)
    if driver == "sequential-sim":
        return run_sequential_simulated(instance, params, seed=seed)
    if driver == "synchronous":
        return run_synchronous_tsmo(instance, params, 3, seed)
    if driver == "asynchronous":
        return run_asynchronous_tsmo(
            instance, params, 3, seed, async_params=AsyncParams(batch_size=8)
        )
    if driver == "collaborative":
        return run_collaborative_tsmo(
            instance,
            params,
            3,
            seed,
            collab_params=CollabParams(initial_phase_patience=3),
        )
    raise AssertionError(driver)


def fingerprint(result):
    return (
        result.front().tolist(),
        result.evaluations,
        result.iterations,
        result.restarts,
        result.simulated_time,
        result.extra.get("messages_sent"),
    )


@pytest.mark.parametrize("driver", DRIVERS)
def test_trajectory_identical_knob_on_and_off(
    driver, small_instance, quick_params, monkeypatch
):
    """REPRO_VECTOR_EVAL only changes who computes, never the search."""
    monkeypatch.setenv("REPRO_VECTOR_EVAL", "1")
    on = run_driver(driver, small_instance, quick_params, seed=42)
    monkeypatch.setenv("REPRO_VECTOR_EVAL", "0")
    off = run_driver(driver, small_instance, quick_params, seed=42)
    assert fingerprint(on) == fingerprint(off)


def test_vector_eval_enabled_parsing(monkeypatch):
    for value in ("0", "false", "off", "no", "False", "OFF"):
        monkeypatch.setenv("REPRO_VECTOR_EVAL", value)
        assert not vector_eval_enabled()
    for value in ("1", "true", "on", "yes", ""):
        monkeypatch.setenv("REPRO_VECTOR_EVAL", value)
        assert vector_eval_enabled()
    monkeypatch.delenv("REPRO_VECTOR_EVAL")
    assert vector_eval_enabled()  # on by default


# ----------------------------------------------------------------------
# 4. Registries without emitters keep the legacy loop
# ----------------------------------------------------------------------


def all_six_registry() -> OperatorRegistry:
    return OperatorRegistry(
        [Relocate(), Exchange(), TwoOpt(), TwoOptStar(), OrOpt(), SegmentExchange()]
    )


def test_segment_exchange_registry_not_batch_supported():
    assert batch_supported(default_registry())
    assert not batch_supported(all_six_registry())


def test_legacy_fallback_is_knob_invariant(
    small_instance, small_solution, monkeypatch
):
    """Unsupported registries sample identically under either knob."""

    def run(knob):
        monkeypatch.setenv("REPRO_VECTOR_EVAL", knob)
        return sample_neighborhood(
            small_solution,
            25,
            all_six_registry(),
            np.random.default_rng(99),
            Evaluator(small_instance),
        )

    on, off = run("1"), run("0")
    assert len(on) == len(off) == 25
    for a, b in zip(on, off):
        assert a.move == b.move
        assert a.objectives.distance == b.objectives.distance


# ----------------------------------------------------------------------
# 5. Kernel counters through the observability layer
# ----------------------------------------------------------------------


def test_kernel_counters_on_instrumented_search(small_instance, quick_params):
    result = run_sequential_tsmo(small_instance, quick_params, seed=5, obs=Obs())
    counters = result.metrics["counters"]
    assert counters.get("eval.vector_calls", 0) > 0
    hist = result.metrics["histograms"].get("eval.batch_size")
    assert hist is not None
    assert sum(hist["counts"]) == counters["eval.vector_calls"]


def test_scalar_fallback_counter_on_legacy_loop(small_instance, small_solution):
    obs = Obs()
    evaluator = Evaluator(small_instance)
    evaluator.metrics = obs.metrics
    neighbors = sample_neighborhood(
        small_solution, 20, all_six_registry(), np.random.default_rng(3), evaluator
    )
    counters = obs.metrics.snapshot()["counters"]
    assert counters.get("eval.scalar_fallbacks", 0) == len(neighbors) == 20
    assert "eval.vector_calls" not in counters


# ----------------------------------------------------------------------
# 6. Lazy moves and the deferred cache protocol
# ----------------------------------------------------------------------


def test_lazy_neighbor_builds_move_on_demand(small_instance, small_solution):
    neighbors = sample_neighborhood(
        small_solution,
        30,
        default_registry(),
        np.random.default_rng(11),
        Evaluator(small_instance),
    )
    lazies = [nb for nb in neighbors if isinstance(nb, LazyNeighbor)]
    assert lazies, "kernel neighborhoods should defer most move builds"
    nb = lazies[0]
    assert nb._move is None
    first = nb.move
    assert nb._move is first and nb.move is first  # built once, cached
    child = nb.solution
    assert child.objectives.distance == nb.objectives.distance


def test_lookup_deferred_protocol(small_instance):
    cache = RouteStatsCache(small_instance, capacity=8)
    route = (1, 2, 3)
    # First touch: a counted miss that parks a placeholder.
    assert cache.lookup_deferred(route) is None
    assert cache.misses == 1 and cache.hits == 0
    # Second touch before fulfillment: a counted hit, still pending.
    assert cache.lookup_deferred(route) is None
    assert cache.hits == 1
    st = route_stats(small_instance, route)
    cache.fulfill(route, st)
    assert cache.lookup_deferred(route) is st
    assert cache.lookup(route) is st
    # fulfill never overwrites a real entry.
    cache.fulfill(route, route_stats(small_instance, (3, 2, 1)))
    assert cache.lookup(route) is st
    assert cache.hits + cache.misses == cache.lookups


def test_lookup_deferred_capacity_zero(small_instance):
    cache = RouteStatsCache(small_instance, capacity=0)
    assert cache.lookup_deferred((1, 2)) is None
    assert cache.lookup_deferred((1, 2)) is None
    assert len(cache) == 0
    assert cache.misses == cache.lookups == 2
