"""Shared fixtures for the test suite.

The fixtures pin small instances and parameter sets so individual test
modules stay fast; anything marked ``slow`` (the parallel shape tests)
still runs in the default suite but is kept to a handful of runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction import i1_construct
from repro.core.solution import Solution
from repro.tabu.params import TSMOParams
from repro.vrptw.generator import generate_instance
from repro.vrptw.instance import Instance


@pytest.fixture(scope="session")
def small_instance() -> Instance:
    """A 30-customer R1 instance shared (read-only) across tests."""
    return generate_instance("R1", 30, seed=123)


@pytest.fixture(scope="session")
def clustered_instance() -> Instance:
    """A 30-customer C2 instance (clustered, wide windows)."""
    return generate_instance("C2", 30, seed=456)


@pytest.fixture(scope="session")
def tiny_instance() -> Instance:
    """An 8-customer instance for exhaustive/propagation checks."""
    return generate_instance("R1", 8, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(99)


@pytest.fixture(scope="session")
def small_solution(small_instance: Instance) -> Solution:
    """A deterministic I1 construction on the small instance."""
    return i1_construct(small_instance, rng=np.random.default_rng(5))


@pytest.fixture()
def quick_params() -> TSMOParams:
    """A very small search budget for driver tests."""
    return TSMOParams(
        max_evaluations=400,
        neighborhood_size=25,
        tabu_tenure=10,
        archive_capacity=10,
        nondom_capacity=20,
        restart_after=6,
    )
