"""Multi-tenant solve service: many concurrent TSMO jobs, one pool.

The service turns the repository's single-run drivers into a
long-lived *solver daemon* for one problem instance:
:class:`SolveScheduler` owns a shared
:class:`~repro.parallel.pool.WorkerPool` and time-slices any number of
concurrent :class:`JobSpec` requests onto it at iteration granularity,
with bounded admission (overload is rejected, never dropped), weighted
deficit-round-robin fairness between tenants, per-job checkpointing
through the standard snapshot format, and job-scoped observability.
:mod:`repro.serve.traffic` drives it with a reproducible open-loop
workload; ``python -m repro.serve`` runs that as the
``BENCH_serve.json`` benchmark and smoke test.
"""

from repro.serve.job import DRIVERS, Job, JobSpec, JobState
from repro.serve.scheduler import DeficitRoundRobin, ServeParams, SolveScheduler
from repro.serve.traffic import TrafficConfig, TrafficReport, run_traffic, write_report

__all__ = [
    "DRIVERS",
    "DeficitRoundRobin",
    "Job",
    "JobSpec",
    "JobState",
    "ServeParams",
    "SolveScheduler",
    "TrafficConfig",
    "TrafficReport",
    "run_traffic",
    "write_report",
]
