"""Typed message payloads of the master/worker and multisearch protocols.

Two families live here:

* the *simulated-cluster* messages (:class:`TaskMessage`,
  :class:`ResultMessage`, :class:`SolutionMessage`) — these carry live
  Python objects (solutions, neighbors) because simulated processes
  share one address space;
* the *real-process pool* wire messages (:class:`PoolTask`,
  :class:`PoolBatch`, :class:`PoolHeartbeat`) — these must pickle
  across an OS process boundary, so they carry only plain data: route
  tuples, objective triples, tabu attributes and RNG seeds/states.

:class:`StopMessage` is shared by both worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.objectives import ObjectiveVector
from repro.core.solution import Solution
from repro.parallel.shm import SharedInstanceRef
from repro.parallel.wire import WireBatch, WireRoutes, WireTaskDelta
from repro.tabu.neighborhood import Neighbor

__all__ = [
    "TaskMessage",
    "ResultMessage",
    "SolutionMessage",
    "StopMessage",
    "PoolTask",
    "PoolBatch",
    "PoolHeartbeat",
]

#: (routes, (distance, vehicles, tardiness), tabu attribute) — the
#: picklable representation of one evaluated neighbor on the wire.
NeighborTriple = tuple[
    tuple[tuple[int, ...], ...], tuple[float, int, float], Hashable
]


@dataclass(frozen=True, slots=True)
class TaskMessage:
    """Master → worker: generate and evaluate part of a neighborhood."""

    solution: Solution
    count: int
    iteration: int


@dataclass(frozen=True, slots=True)
class ResultMessage:
    """Worker → master: a batch of evaluated neighbors.

    ``final`` marks the last batch of the worker's current task — on
    receiving it the master knows the worker is idle again (condition
    ``c1`` of the asynchronous decision function).
    """

    worker: int
    neighbors: tuple[Neighbor, ...]
    iteration: int
    final: bool


@dataclass(frozen=True, slots=True)
class SolutionMessage:
    """Searcher → searcher (collaborative): an archive-improving solution."""

    sender: int
    solution: Solution
    objectives: ObjectiveVector


@dataclass(frozen=True, slots=True)
class StopMessage:
    """Master → worker: shut down."""

    reason: str = "budget exhausted"


@dataclass(frozen=True, slots=True)
class PoolTask:
    """Master → pool worker: generate/evaluate one neighborhood chunk.

    The randomness spec is either ``seed`` (independent per-task
    stream, the multi-worker mode) or ``rng_state`` (a PCG64 state
    dict — the lockstep mode, where a single worker continues the
    master's own stream and ships the advanced state back).  Exactly
    one of the two is set.  Both are pure data, so re-dispatching the
    *same* task after a worker crash regenerates the *same* neighbors —
    the determinism-under-retry invariant the pool is built on.

    ``routes`` carries the parent solution in one of three forms: the
    plain nested tuple (codec off / master-local execution), a packed
    :class:`~repro.parallel.wire.WireRoutes`, or a
    :class:`~repro.parallel.wire.WireTaskDelta` against the routes of
    the last task the *target worker* completed (the steady-state
    form).  All three decode to the identical tuple, so the neighbor
    stream is the same regardless of encoding.

    ``trace`` is the optional span-propagation envelope, a
    ``(trace_id, parent_span)`` pair the submitter wants stamped onto
    the worker's trace events for this task (the serve layer passes
    ``(job_id, "job-<id>")``).  Pure data, ignored by execution — it
    exists so one job's events reconstruct as a single causally-ordered
    trace across the process boundary.

    ``instance`` selects which problem the task solves: ``None`` means
    the pool's default instance (the one workers received at spawn),
    while a :class:`~repro.parallel.shm.SharedInstanceRef` names a
    shared-memory segment the worker attaches on first use and keeps in
    a small LRU of mapped instances — the multi-tenant serve layer
    ships a ~300-byte ref per task instead of one pool per instance.
    """

    task_id: int
    attempt: int
    routes: tuple[tuple[int, ...], ...] | WireRoutes | WireTaskDelta
    count: int
    batch_size: int
    iteration: int
    seed: int | None = None
    rng_state: dict | None = None
    trace: tuple[str, str] | None = None
    instance: SharedInstanceRef | None = None


@dataclass(frozen=True, slots=True)
class PoolBatch:
    """Pool worker → master: a streamed batch of evaluated neighbors.

    ``final`` marks the last batch of a task; only final batches carry
    the worker cache-counter delta and (in lockstep mode) the advanced
    RNG state.  ``attempt`` lets the master drop batches of a
    superseded attempt after a retry.

    ``events`` is the worker's drained trace-event batch (plain dicts,
    empty unless tracing is enabled via the environment) — riding on
    the existing result message is how worker events reach the master's
    tracer without a second channel.

    ``neighbors`` is either the plain triple tuple (codec off) or a
    packed :class:`~repro.parallel.wire.WireBatch` of parent-relative
    edits; the pool decodes before anything downstream sees it.
    ``phase`` (final batches only, when the worker timed itself) is the
    task's accumulated ``(generate, evaluate)`` seconds — the feedback
    signal of the adaptive task sizer and the worker-side contribution
    to the obs phase profile.
    """

    worker: int
    task_id: int
    attempt: int
    neighbors: tuple[NeighborTriple, ...] | WireBatch
    final: bool
    rng_state: dict | None = None
    cache_delta: tuple[int, int] | None = None
    events: tuple = ()
    phase: tuple[float, float] | None = None


@dataclass(frozen=True, slots=True)
class PoolHeartbeat:
    """Pool worker → master: liveness beacon.

    Carries no timestamp on purpose: clocks of different processes are
    not comparable, so the master stamps the *receive* time.
    ``generation`` identifies the slot's process incarnation — beacons
    a dead predecessor left in the result queue must not vouch for the
    liveness of its freshly respawned replacement.
    """

    worker: int
    generation: int = 0
