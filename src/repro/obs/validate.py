"""Trace validation: check every JSONL event line against the schema.

``python -m repro.obs.validate TRACE...`` (files or directories of
``*.jsonl``) verifies that

* every line parses as a JSON object;
* every event carries the full envelope (``type``/``seq``/``run``/
  ``span``) and a known type;
* every type's required payload fields (:data:`~repro.obs.events.
  EVENT_SCHEMA`) are present;
* ``seq`` is strictly increasing within a file (monotonic numbering is
  what makes cross-span interleaving reconstructable).

A torn *final* line — the signature of a crash mid-append, which the
sink's durability discipline explicitly permits — is skipped with a
warning rather than failing the file, mirroring the run-manifest
reader.  A torn tail is specifically a final line *without* a trailing
newline: a newline-terminated line of garbage was a complete write and
is a real error.  Any other problem is an error; the process exits
non-zero if any file had one, which is what the CI observability and
serve-soak jobs key off.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.events import ENVELOPE_KEYS, EVENT_SCHEMA

__all__ = ["main", "validate_file", "validate_event"]


def validate_event(event: object) -> str | None:
    """Why this event is invalid, or ``None`` if it is fine."""
    if not isinstance(event, dict):
        return f"expected an object, got {type(event).__name__}"
    type_ = event.get("type")
    if type_ not in EVENT_SCHEMA:
        return f"unknown event type {type_!r}"
    if type_ != "meta":
        missing = [key for key in ENVELOPE_KEYS if key not in event]
        if missing:
            return f"{type_} event missing envelope key(s): {', '.join(missing)}"
    required = EVENT_SCHEMA[type_]
    missing = [key for key in required if key not in event]
    if missing:
        return f"{type_} event missing field(s): {', '.join(missing)}"
    return None


def validate_file(path: Path | str) -> tuple[int, list[str]]:
    """Validate one trace file; returns ``(events_ok, errors)``."""
    path = Path(path)
    errors: list[str] = []
    ok = 0
    last_seq: int | None = None
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return 0, [f"{path}: cannot read: {exc}"]
    lines = text.split("\n")
    newline_terminated = lines and lines[-1] == ""
    if newline_terminated:
        lines.pop()  # trailing newline, the normal case
    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) and not newline_terminated:
                # Torn tail from a crash mid-append: tolerated by
                # design.  Only an unterminated final line qualifies —
                # a complete (newline-terminated) line of garbage was
                # never torn and is reported as an error below.
                print(
                    f"warning: {path}:{lineno}: skipping torn final line",
                    file=sys.stderr,
                )
                continue
            errors.append(f"{path}:{lineno}: not valid JSON")
            continue
        problem = validate_event(event)
        if problem is not None:
            errors.append(f"{path}:{lineno}: {problem}")
            continue
        seq = event.get("seq")
        if seq is not None:
            if last_seq is not None and seq <= last_seq:
                errors.append(
                    f"{path}:{lineno}: seq {seq} not greater than previous "
                    f"{last_seq}"
                )
            last_seq = seq
        ok += 1
    return ok, errors


def _collect(targets: list[str]) -> list[Path]:
    paths: list[Path] = []
    for target in targets:
        p = Path(target)
        if p.is_dir():
            paths.extend(sorted(p.glob("*.jsonl")))
        else:
            paths.append(p)
    return paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate JSONL event traces against the event schema.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="trace files, or directories containing *.jsonl traces",
    )
    args = parser.parse_args(argv)
    paths = _collect(args.targets)
    if not paths:
        print("error: no trace files found", file=sys.stderr)
        return 2
    total_ok = 0
    total_errors = 0
    for path in paths:
        ok, errors = validate_file(path)
        total_ok += ok
        total_errors += len(errors)
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        status = "OK" if not errors else f"{len(errors)} error(s)"
        print(f"{path}: {ok} valid event(s), {status}")
    print(
        f"validated {len(paths)} file(s): {total_ok} event(s), "
        f"{total_errors} error(s)"
    )
    return 1 if total_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
