"""Tests for the tabu list, parameter set and memory bundle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution import Solution
from repro.errors import SearchError
from repro.tabu.memories import Memories
from repro.tabu.params import TSMOParams
from repro.tabu.tabulist import TabuList


class TestTabuList:
    def test_fifo_expiry(self):
        tl = TabuList(tenure=2)
        tl.push("a")
        tl.push("b")
        tl.push("c")
        assert "a" not in tl
        assert "b" in tl and "c" in tl
        assert len(tl) == 2

    def test_membership(self):
        tl = TabuList(tenure=3)
        assert "x" not in tl
        tl.push("x")
        assert "x" in tl

    def test_repeated_attribute_counted(self):
        tl = TabuList(tenure=3)
        tl.push("a")
        tl.push("a")
        tl.push("b")
        tl.push("c")  # expires first "a", second remains
        assert "a" in tl

    def test_tenure_one(self):
        tl = TabuList(tenure=1)
        tl.push("a")
        tl.push("b")
        assert "a" not in tl and "b" in tl

    def test_clear(self):
        tl = TabuList(tenure=5)
        tl.push("a")
        tl.clear()
        assert "a" not in tl and len(tl) == 0

    def test_iteration_order(self):
        tl = TabuList(tenure=5)
        for x in ("a", "b", "c"):
            tl.push(x)
        assert list(tl) == ["a", "b", "c"]

    def test_invalid_tenure(self):
        with pytest.raises(SearchError):
            TabuList(tenure=0)

    def test_tuple_attributes(self):
        tl = TabuList(tenure=4)
        attr = ("relocate", 7)
        tl.push(attr)
        assert ("relocate", 7) in tl

    @settings(max_examples=40, deadline=None)
    @given(
        pushes=st.lists(st.integers(0, 10), max_size=60),
        tenure=st.integers(min_value=1, max_value=8),
    )
    def test_window_semantics_property(self, pushes, tenure):
        """Membership always equals 'within the last `tenure` pushes'."""
        tl = TabuList(tenure=tenure)
        for i, value in enumerate(pushes):
            tl.push(value)
            window = pushes[max(0, i + 1 - tenure) : i + 1]
            for candidate in range(11):
                assert (candidate in tl) == (candidate in window)


class TestTSMOParams:
    def test_defaults_match_paper(self):
        p = TSMOParams()
        assert p.max_evaluations == 100_000
        assert p.neighborhood_size == 200
        assert p.tabu_tenure == 20
        assert p.archive_capacity == 20
        assert p.restart_after == 100

    def test_validation(self):
        with pytest.raises(SearchError):
            TSMOParams(neighborhood_size=0)
        with pytest.raises(SearchError):
            TSMOParams(tabu_tenure=-1)

    def test_perturbed_keeps_budget(self):
        rng = np.random.default_rng(0)
        p = TSMOParams()
        q = p.perturbed(rng)
        assert q.max_evaluations == p.max_evaluations

    def test_perturbed_changes_something(self):
        rng = np.random.default_rng(0)
        p = TSMOParams()
        perturbed = [p.perturbed(rng) for _ in range(10)]
        assert any(q != p for q in perturbed)

    def test_perturbation_distribution(self):
        """sigma = parameter / 4, mean = parameter (paper §III.E)."""
        rng = np.random.default_rng(1)
        p = TSMOParams(neighborhood_size=200)
        draws = np.array(
            [p.perturbed(rng).neighborhood_size for _ in range(400)], dtype=float
        )
        assert abs(draws.mean() - 200) < 10
        assert 35 < draws.std() < 65

    def test_perturbed_respects_minimums(self):
        rng = np.random.default_rng(2)
        p = TSMOParams(tabu_tenure=1, neighborhood_size=2, restart_after=5)
        for _ in range(50):
            q = p.perturbed(rng)
            assert q.tabu_tenure >= 1
            assert q.neighborhood_size >= 2
            assert q.restart_after >= 5

    def test_scaled(self):
        p = TSMOParams(max_evaluations=100_000)
        assert p.scaled(0.01).max_evaluations == 1000
        with pytest.raises(SearchError):
            p.scaled(0)


class TestMemories:
    def test_construction(self):
        m = Memories(TSMOParams(tabu_tenure=7, archive_capacity=5, nondom_capacity=9))
        assert m.tabulist.tenure == 7
        assert m.archive.capacity == 5
        assert m.nondom.capacity == 9

    def test_restart_candidate_from_union(self, small_instance, small_solution):
        m = Memories(TSMOParams())
        rng = np.random.default_rng(0)
        with pytest.raises(SearchError, match="empty"):
            m.restart_candidate(rng)
        m.archive.try_add(small_solution, small_solution.objectives)
        assert m.restart_candidate(rng) is small_solution
        other = Solution(small_instance, small_solution.routes)
        m.nondom.try_add(other, other.objectives)
        picks = {id(m.restart_candidate(rng)) for _ in range(40)}
        assert len(picks) >= 1  # draws from the union without crashing
