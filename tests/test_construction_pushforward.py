"""Property tests for I1's push-forward insertion feasibility.

``_insertion_feasible_and_shift`` decides hard-TW feasibility of an
insertion by propagating the begin-time shift instead of re-simulating
the whole route.  These tests verify it against the brute-force oracle
(insert, then recompute the full schedule) on randomized routes — the
classic place for off-by-one and waiting-absorption bugs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construction import _begin_times, _insertion_feasible_and_shift
from repro.core.routes import route_schedule
from repro.vrptw.generator import generate_instance


def brute_force_feasible(instance, route, pos, u):
    """Oracle: insert and recompute the full schedule."""
    candidate = list(route[:pos]) + [u] + list(route[pos:])
    sched = route_schedule(instance, candidate)
    if sched.total_tardiness > 1e-9:
        return False, None
    old_begins = {c: b for c, b in zip(route, _begin_times(instance, list(route)))}
    if pos < len(route):
        j = route[pos]
        new_begin_j = sched.service_start[candidate.index(j)]
        return True, new_begin_j - old_begins[j]
    return True, 0.0


@st.composite
def route_and_insertion(draw):
    seed = draw(st.integers(0, 500))
    instance = generate_instance(
        draw(st.sampled_from(["R1", "R2", "C1", "C2"])), 14, seed=seed
    )
    n = instance.n_customers
    size = draw(st.integers(min_value=1, max_value=8))
    customers = draw(
        st.lists(
            st.integers(1, n), min_size=size + 1, max_size=size + 1, unique=True
        )
    )
    route = customers[:-1]
    u = customers[-1]
    pos = draw(st.integers(0, len(route)))
    return instance, route, pos, u


class TestPushForwardAgainstOracle:
    @settings(max_examples=150, deadline=None)
    @given(case=route_and_insertion())
    def test_feasibility_matches_brute_force(self, case):
        instance, route, pos, u = case
        # Only meaningful when the base route is itself feasible (I1
        # only ever inserts into feasible partial routes).
        if route_schedule(instance, route).total_tardiness > 1e-9:
            return
        begins = _begin_times(instance, route)
        fast_ok, fast_shift = _insertion_feasible_and_shift(
            instance, route, begins, pos, u
        )
        oracle_ok, oracle_shift = brute_force_feasible(instance, route, pos, u)
        assert fast_ok == oracle_ok, (route, pos, u)
        if fast_ok and pos < len(route):
            assert fast_shift == pytest.approx(oracle_shift, abs=1e-6)

    def test_shift_zero_at_route_end(self):
        instance = generate_instance("R2", 10, seed=1)
        route = [1, 2]
        begins = _begin_times(instance, route)
        ok, shift = _insertion_feasible_and_shift(instance, route, begins, 2, 3)
        if ok:
            assert shift == 0.0

    def test_waiting_absorbs_push(self):
        """A downstream customer with a late ready time absorbs the
        shift: inserting before it must not propagate past it."""
        from repro.vrptw.instance import Instance

        inst = Instance(
            name="absorb",
            x=[0.0, 1.0, 2.0, 3.0],
            y=[0.0, 0.0, 0.0, 0.0],
            demand=[0.0, 1.0, 1.0, 1.0],
            ready_time=[0.0, 0.0, 100.0, 0.0],  # customer 2 waits long
            due_date=[1000.0, 50.0, 150.0, 120.0],
            service_time=[0.0, 1.0, 1.0, 1.0],
            capacity=10,
            n_vehicles=2,
        )
        route = [1, 2]
        begins = _begin_times(inst, route)
        # Inserting 3 between 1 and 2 delays arrival at 2 but its long
        # wait absorbs the delay entirely.
        ok, shift = _insertion_feasible_and_shift(inst, route, begins, 1, 3)
        assert ok
        assert shift == pytest.approx(0.0)
