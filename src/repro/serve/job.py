"""One solve job of the multi-tenant service: spec, handle, runner.

A *job* is one complete TSMO run — its own engine, RNG stream,
evaluation budget and archive — time-sliced onto the scheduler's
shared :class:`~repro.parallel.pool.WorkerPool` at iteration
granularity.  :class:`JobSpec` is the immutable request; :class:`Job`
is both the client-facing handle (``state``, ``await job.wait()``) and
the scheduler-facing runner that drives the engine one iteration at a
time through tagged pool tasks.

Two drivers:

* ``"lockstep"`` — one task per iteration carrying the engine's exact
  PCG64 bit-state; the worker continues the master's own stream and
  ships the advanced state back, so the job's trajectory is
  bit-identical to :func:`~repro.tabu.search.run_sequential_tsmo` with
  the same seed (the property the kill-and-resume test relies on).
* ``"split"`` — ``n_tasks`` chunks per iteration, each with an
  independent per-task seed drawn from a job-owned
  :class:`~repro.rng.RngFactory` stream; deterministic for a given
  spec seed regardless of worker failures, but not sequential-identical.

The runner follows the sequential driver's checkpoint protocol
exactly: the policy block (snapshot-if-due, then maybe-crash) runs at
every iteration boundary *before* the done-check, so a resumed job
replays the same number of iterations and snapshots land on the same
absolute evaluation thresholds.
"""

from __future__ import annotations

import asyncio
import time

from dataclasses import asdict, dataclass, field, fields

from repro.core.evaluation import Evaluator
from repro.core.stats_cache import CacheStats
from repro.errors import CheckpointError, JobCancelled, ServeError, WrongInstanceError
from repro.obs import NULL_OBS
from repro.parallel.mp_backend import _wire_neighbor
from repro.parallel.shm import SharedInstanceRef, instance_fingerprint
from repro.parallel.wire import instance_from_wire, instance_to_wire
from repro.rng import RngFactory, as_generator, get_generator_state, set_generator_state
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOEngine, TSMOResult
from repro.vrptw.instance import Instance

__all__ = ["DRIVERS", "Job", "JobSpec", "JobState"]

#: the job drivers the service knows how to run.
DRIVERS = ("lockstep", "split")


class JobState:
    """The lifecycle states of a solve job (plain strings, not an enum,
    so reports and traces serialize without ceremony)."""

    QUEUED = "queued"
    RUNNING = "running"
    #: suspended to its checkpoint by a higher-priority arrival; the
    #: engine stays warm in memory and the job re-enters the running
    #: set (bit-identically) once capacity frees up.
    PREEMPTED = "preempted"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One immutable solve request.

    ``job_id`` doubles as the pool task tag and (sanitized) checkpoint
    file name, so it must be unique per scheduler.  ``priority`` orders
    admission (higher first, FIFO within a level); ``tenant`` is the
    fairness identity — the deficit round-robin arbitrates *between*
    tenants, never between one tenant's own jobs.
    """

    job_id: str
    tenant: str = "default"
    priority: int = 0
    seed: int | None = None
    params: TSMOParams = field(default_factory=TSMOParams)
    #: ``"lockstep"`` (sequential-identical, checkpoint-resumable) or
    #: ``"split"`` (``n_tasks`` independent chunks per iteration).
    driver: str = "lockstep"
    n_tasks: int = 1
    #: evaluations between periodic snapshots (None: scheduler default).
    checkpoint_every: int | None = None
    #: continue from this job's snapshot file if one exists.
    resume: bool = False
    #: failed attempts the scheduler may retry (from the latest
    #: checkpoint, not from scratch) before the job fails terminally.
    max_retries: int = 0
    #: base of the exponential retry backoff (seconds before the k-th
    #: retry becomes admittable again: ``retry_backoff_s * 2**(k-1)``).
    retry_backoff_s: float = 0.05
    #: per-*attempt* wall-clock deadline (None: unlimited).  An attempt
    #: that overruns is cancelled and retried from its latest
    #: checkpoint while the retry budget lasts.
    deadline_s: float | None = None
    #: the instance this job solves (None: the scheduler's default).
    #: Excluded from repr/compare — the arrays are large and numpy
    #: equality does not reduce to bool; identity is the content
    #: fingerprint, not dataclass equality.
    instance: Instance | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ServeError("job_id must be a non-empty string")
        if self.driver not in DRIVERS:
            raise ServeError(
                f"unknown job driver {self.driver!r}; expected one of {DRIVERS}"
            )
        if self.n_tasks < 1:
            raise ServeError("n_tasks must be >= 1")
        if self.driver == "lockstep" and self.n_tasks != 1:
            raise ServeError(
                "lockstep jobs run exactly one task per iteration; "
                f"n_tasks={self.n_tasks} would break the bit-identity contract"
            )
        if self.max_retries < 0:
            raise ServeError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ServeError("retry_backoff_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError("deadline_s must be positive")

    # ------------------------------------------------------------------
    # Wire form (the job ledger stores this; recovery rebuilds from it)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """A plain-JSON dict carrying everything needed to rebuild the
        spec in another process (the ledger's ``accepted`` payload).

        Shallow on purpose: ``asdict`` would recurse into the frozen
        :class:`Instance` dataclass and emit raw numpy arrays; the
        instance ships through its own codec
        (:func:`~repro.parallel.wire.instance_to_wire`) instead, so
        recovery can rebuild a per-job instance the restarted scheduler
        never saw.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["params"] = asdict(self.params)
        data["instance"] = (
            instance_to_wire(self.instance) if self.instance is not None else None
        )
        return data

    @classmethod
    def from_wire(cls, wire: dict, **overrides) -> "JobSpec":
        """Rebuild a spec from :meth:`to_wire` output.

        ``overrides`` patch fields on the way in — recovery forces
        ``resume=True`` so a re-admitted job continues from its
        snapshot instead of restarting.  Ledgers written before specs
        carried instances simply lack the key, which decodes to the
        scheduler-default instance.
        """
        data = dict(wire)
        data["params"] = TSMOParams(**data["params"])
        payload = data.get("instance")
        if isinstance(payload, dict):
            data["instance"] = instance_from_wire(payload)
        data.update(overrides)
        return cls(**data)


class Job:
    """Handle and runner of one submitted job.

    Clients read ``state``/``iterations``/``evaluations`` and ``await
    job.wait()``; everything prefixed with ``_`` is the scheduler-side
    runner, only ever touched from the scheduler's event loop (the pump
    is the single writer, so no locking is needed).
    """

    def __init__(self, spec: JobSpec, future: asyncio.Future, *, now: float) -> None:
        self.spec = spec
        self.state = JobState.QUEUED
        self.submitted_at = now
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: TSMOResult | None = None
        self.error: BaseException | None = None
        #: set by :meth:`SolveScheduler.cancel`; the pump applies it.
        self.cancel_requested = False
        #: failed attempts retried so far (attempt number - 1).
        self.attempts = 0
        #: monotonic time before which a retried job is not re-admitted
        #: (the exponential backoff gate).
        self.retry_at = 0.0
        #: start of the *current* attempt (the deadline clock; a
        #: preempted job's clock restarts on resume so suspended time
        #: never burns the deadline).
        self.attempt_started_at: float | None = None
        #: re-admitted from the ledger by a restarted scheduler.
        self.recovered = False
        #: why the resume snapshot was rejected (corrupt fallback).
        self.checkpoint_corrupt: str | None = None
        self._future = future
        self._obs = NULL_OBS
        #: admission key (set at submit; preemption/retry re-queue with
        #: it so FIFO order within a priority level is preserved).
        self._admit_seq = 0
        #: content identity of the instance this job solves (set by the
        #: scheduler at submit/recovery; recorded in the ledger and in
        #: every serve-job checkpoint).  Survives retries — the identity
        #: of the work never changes between attempts.
        self._instance_fp: str | None = None
        #: shared-memory ref tasks carry when the job's instance is not
        #: the pool default (owned by the scheduler's instance store).
        self._instance_ref: SharedInstanceRef | None = None
        # Runner state, populated by _start().
        self._engine: TSMOEngine | None = None
        self._policy = None
        self._seed_rng = None
        self._lockstep = spec.driver == "lockstep"
        self._chunk_sizes: list[int] = []
        self._task_order: list[int] = []
        self._buffers: dict[int, list] = {}
        self._pending_finals: set[int] = set()
        self._rng_back: dict | None = None
        self._finished = False
        self._worker_hits = 0
        self._worker_misses = 0
        self._snaps_seen = 0

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def iterations(self) -> int:
        return self._engine.iteration if self._engine is not None else 0

    @property
    def evaluations(self) -> int:
        return self._engine.evaluator.count if self._engine is not None else 0

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._future.done()

    async def wait(self) -> TSMOResult:
        """Block until the job finishes; returns its result.

        Raises :class:`~repro.errors.JobCancelled` for cancelled jobs
        and re-raises the failure of failed ones.
        """
        return await self._future

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Job({self.job_id!r}, tenant={self.tenant!r}, "
            f"state={self.state!r}, evaluations={self.evaluations})"
        )

    # ------------------------------------------------------------------
    # Scheduler-side runner (single-threaded: only the pump calls these)
    # ------------------------------------------------------------------
    def _start(self, instance, policy, obs) -> None:
        """Build the engine (fresh or from a resume snapshot)."""
        spec = self.spec
        self._obs = obs
        self._policy = policy
        self._snaps_seen = policy.snapshots_written if policy is not None else 0
        if self._instance_fp is None:
            self._instance_fp = instance_fingerprint(instance)
        # Per-attempt note: a stale corruption report from a previous
        # attempt must not be re-journaled by this one.
        self.checkpoint_corrupt = None
        evaluator = Evaluator(instance, spec.params.max_evaluations)
        # The engine stays uninstrumented: service-level observability
        # lives on job-scoped events/metrics, and an instrumented engine
        # would break bit-identity against the NULL_OBS sequential run.
        engine = TSMOEngine(
            instance, spec.params, as_generator(spec.seed), evaluator=evaluator
        )
        self._engine = engine
        if self._lockstep:
            self._chunk_sizes = [spec.params.neighborhood_size]
        else:
            base, extra = divmod(spec.params.neighborhood_size, spec.n_tasks)
            sizes = [base + (1 if i < extra else 0) for i in range(spec.n_tasks)]
            self._chunk_sizes = [size for size in sizes if size > 0]
            self._seed_rng = RngFactory(spec.seed).generator()
        try:
            resumed = (
                policy.load_resume_state(kind="serve-job")
                if policy is not None
                else None
            )
        except CheckpointError as exc:
            # A corrupt resume snapshot (torn tail, bad sha256, stale
            # format) must not escape the scheduler pump: fall back to
            # a fresh restart, loudly — the bad file is dropped so the
            # next periodic snapshot replaces it, and the scheduler
            # emits a job_checkpoint_corrupt event + ledger record.
            self.checkpoint_corrupt = str(exc)
            policy.path.unlink(missing_ok=True)
            resumed = None
        if resumed is not None:
            recorded = resumed.get("instance_fp")
            if recorded is not None and recorded != self._instance_fp:
                # The snapshot belongs to a different problem.  Resuming
                # would splice this instance's evaluations onto another
                # instance's trajectory — fail loudly, never silently.
                raise WrongInstanceError(
                    f"job {self.job_id!r} checkpoint was written for instance "
                    f"fingerprint {recorded[:12]}…, but the instance available "
                    f"at resume has fingerprint {self._instance_fp[:12]}…"
                )
            engine.restore(resumed["engine"])
            if self._seed_rng is not None and resumed.get("seed_rng") is not None:
                set_generator_state(self._seed_rng, resumed["seed_rng"])
            policy.note_resumed(engine.evaluator.count)
        else:
            engine.initialize()
        self.state = JobState.RUNNING
        self.started_at = time.monotonic()
        self.attempt_started_at = self.started_at
        self._boundary()

    @property
    def _ready(self) -> bool:
        """Dispatchable: running, quiescent, budget left."""
        return (
            self.state == JobState.RUNNING
            and not self._finished
            and not self._pending_finals
            and not self.cancel_requested
        )

    def _iteration_cost(self) -> int:
        """Fairness charge of one iteration: neighbors evaluated."""
        return sum(self._chunk_sizes)

    def _dispatch(self, pool) -> int:
        """Submit one iteration's tasks onto the shared pool."""
        engine = self._engine
        iteration = engine.iteration + 1
        self._task_order = []
        self._buffers = {}
        self._rng_back = None
        # Span propagation: worker_task events of this job's tasks join
        # the job's trace, parented under its lifecycle span.
        trace = (self.job_id, f"job-{self.job_id}")
        if self._lockstep:
            task_id = pool.submit(
                engine.current.routes,
                self._chunk_sizes[0],
                rng_state=engine.rng.bit_generator.state,
                iteration=iteration,
                tag=self.job_id,
                trace=trace,
                instance_ref=self._instance_ref,
            )
            self._task_order.append(task_id)
            self._buffers[task_id] = []
        else:
            for size in self._chunk_sizes:
                task_id = pool.submit(
                    engine.current.routes,
                    size,
                    seed=int(self._seed_rng.integers(2**63)),
                    iteration=iteration,
                    tag=self.job_id,
                    trace=trace,
                    instance_ref=self._instance_ref,
                )
                self._task_order.append(task_id)
                self._buffers[task_id] = []
        self._pending_finals = set(self._task_order)
        return len(self._task_order)

    def _on_event(self, event) -> None:
        """Fold one tagged :class:`BatchEvent` into the current iteration."""
        buffer = self._buffers.get(event.task_id)
        if buffer is None:
            return  # a batch of an already-completed iteration (stale)
        buffer.extend(event.neighbors)
        if not event.final:
            return
        self._pending_finals.discard(event.task_id)
        if event.cache_delta is not None:
            self._worker_hits += event.cache_delta[0]
            self._worker_misses += event.cache_delta[1]
        if self._lockstep and event.rng_state is not None:
            self._rng_back = event.rng_state
        if not self._pending_finals and self._task_order:
            self._complete_iteration()

    def _complete_iteration(self) -> None:
        """All finals in: rebuild neighbors in task order and select."""
        engine = self._engine
        iteration = engine.iteration + 1
        neighbors = []
        for task_id in self._task_order:  # task order, not arrival order
            for triple in self._buffers[task_id]:
                neighbors.append(
                    _wire_neighbor(
                        engine.instance, triple, iteration, engine.evaluator
                    )
                )
        if self._lockstep and self._rng_back is not None:
            engine.rng.bit_generator.state = self._rng_back
        engine.select_and_update(neighbors)
        self._task_order = []
        self._buffers = {}
        obs = self._obs
        if obs.enabled and obs.tracer.enabled:
            obs.tracer.emit(
                "job_progress",
                span=f"job-{self.job_id}",
                job=self.job_id,
                iteration=engine.iteration,
                evaluations=engine.evaluator.count,
                trace=self.job_id,
            )
        self._boundary()

    def _boundary(self) -> None:
        """The sequential loop-top protocol at an iteration boundary:
        snapshot if due, maybe fire an injected crash, then done-check."""
        if self._policy is not None:
            self._policy.tick(
                self._engine.evaluator.count, self._build_state, kind="serve-job"
            )
            if self._policy.snapshots_written > self._snaps_seen:
                self._snaps_seen = self._policy.snapshots_written
                obs = self._obs
                if obs.enabled and obs.tracer.enabled:
                    obs.tracer.emit(
                        "checkpoint",
                        span=f"job-{self.job_id}",
                        kind="serve-job",
                        iteration=self._engine.iteration,
                        trace=self.job_id,
                    )
        if self._engine.done:
            self._finished = True

    def _build_state(self) -> dict:
        return {
            "engine": self._engine.snapshot(),
            "seed_rng": (
                get_generator_state(self._seed_rng)
                if self._seed_rng is not None
                else None
            ),
            # Identity check at resume: a snapshot must never be
            # restored against a different instance (WrongInstanceError).
            "instance_fp": self._instance_fp,
        }

    # ------------------------------------------------------------------
    # Fault-tolerance transitions (retry / preemption)
    # ------------------------------------------------------------------
    def _reset_for_retry(self, now: float) -> None:
        """Back to the wait queue after a failed attempt.

        Drops the attempt's runner state wholesale — the next admission
        rebuilds the engine, resuming from the latest periodic snapshot
        when one exists (otherwise restarting fresh).  The exponential
        backoff gate keeps a crash-looping job from monopolizing
        admission.
        """
        self.attempts += 1
        self.retry_at = now + self.spec.retry_backoff_s * (2.0 ** (self.attempts - 1))
        self.state = JobState.QUEUED
        self.attempt_started_at = None
        self._engine = None
        self._policy = None
        self._seed_rng = None
        self._chunk_sizes = []
        self._task_order = []
        self._buffers = {}
        self._pending_finals = set()
        self._rng_back = None
        self._finished = False

    def _suspend(self) -> None:
        """Preemption: park the job, keeping the engine warm.

        In-flight pool tasks were already cancelled (their batches
        drain silently), so the partial iteration is simply discarded:
        the engine only ever mutates at iteration completion, and the
        resumed dispatch re-ships the identical RNG bit-state, so the
        re-run iteration is bit-identical to the one that was cut —
        preemption is invisible to the trajectory.  A durability
        snapshot is flushed so a crash while suspended loses nothing
        beyond this boundary.
        """
        self._task_order = []
        self._buffers = {}
        self._pending_finals = set()
        self._rng_back = None
        if self._policy is not None:
            self._policy.flush(
                self._engine.evaluator.count, self._build_state, kind="serve-job"
            )
        self.state = JobState.PREEMPTED

    def _resume_preempted(self) -> None:
        """Back into the running set; the deadline clock restarts so
        time spent suspended never counts against the attempt."""
        self.state = JobState.RUNNING
        self.attempt_started_at = time.monotonic()

    def _finalize(self, n_workers: int) -> TSMOResult:
        """Package the finished engine into a result; drop the snapshot."""
        engine = self._engine
        wall = time.monotonic() - self.started_at
        result = engine.result(
            f"serve-{self.spec.driver}",
            wall_time=wall,
            simulated_time=None,
            processors=n_workers + 1,
        )
        result.cache_stats = CacheStats(
            hits=self._worker_hits, misses=self._worker_misses
        )
        result.extra["job_id"] = self.job_id
        result.extra["tenant"] = self.tenant
        if self._policy is not None:
            self._policy.discard()
        self.result = result
        self.state = JobState.DONE
        self.finished_at = time.monotonic()
        self._future.set_result(result)
        return result

    def _fail(self, exc: BaseException) -> None:
        self.state = JobState.FAILED
        self.error = exc
        self.finished_at = time.monotonic()
        if not self._future.done():
            self._future.set_exception(exc)
            # Mark retrieved so an un-awaited handle never warns.
            self._future.exception()

    def _cancelled(self) -> None:
        self.state = JobState.CANCELLED
        exc = JobCancelled(
            f"job {self.job_id!r} cancelled after {self.iterations} iterations "
            f"({self.evaluations} evaluations served)"
        )
        self.error = exc
        self.finished_at = time.monotonic()
        self._pending_finals = set()
        self._task_order = []
        self._buffers = {}
        if not self._future.done():
            self._future.set_exception(exc)
            self._future.exception()
