"""Unary-indicator report over the Table-I run matrix (extension).

The paper compares fronts only with the binary set-coverage metric.
This bench re-runs a reduced Table-I matrix and scores every variant's
feasible fronts against the combined reference front with the
extension indicators — hypervolume (distance x vehicles plane), IGD,
additive epsilon and spread — giving EXPERIMENTS.md a second, metric-
independent confirmation of the quality ordering (collaborative best).
"""

import numpy as np
from conftest import emit

from repro.bench.runner import run_table, table_front_reference
from repro.mo.epsilon import additive_epsilon
from repro.mo.hypervolume import hypervolume
from repro.mo.metrics import inverted_generational_distance, spread


def compute(bench_config):
    config = bench_config.with_overrides(runs=max(2, bench_config.runs - 1))
    data = run_table("table1", config)
    reference = table_front_reference(data)
    ref_2d = reference[:, :2]
    ref_point = ref_2d.max(axis=0) * 1.1 + 1.0
    rows = []
    for key in data.configs():
        fronts = [r.feasible_front() for r in data.runs_of(key)]
        fronts = [f for f in fronts if f.size]
        hv = np.mean([hypervolume(f[:, :2], ref_point) for f in fronts])
        igd = np.mean([inverted_generational_distance(f, reference) for f in fronts])
        eps = np.mean([additive_epsilon(f, reference) for f in fronts])
        spr = np.mean([spread(f[:, :2], ref_2d) for f in fronts])
        rows.append((key, hv, igd, eps, spr))
    return rows, reference.shape[0]


def test_indicator_report(benchmark, bench_config, output_dir):
    rows, ref_size = benchmark.pedantic(
        compute, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"Unary indicators vs the combined reference front ({ref_size} points), "
        "Table-I matrix",
        f"{'config':<18} {'hypervolume':>12} {'IGD':>9} {'eps+':>9} {'spread':>8}",
    ]
    for (algorithm, procs), hv, igd, eps, spr in rows:
        label = f"{algorithm}@{procs}"
        lines.append(
            f"{label:<18} {hv:>12.1f} {igd:>9.2f} {eps:>9.2f} {spr:>8.3f}"
        )
    emit(output_dir, "indicators", "\n".join(lines))
    by = {f"{a}@{p}": (hv, igd) for (a, p), hv, igd, _, _ in rows}
    # Metric-independent confirmation: collaborative@12 must beat the
    # sequential baseline on hypervolume AND IGD.
    assert by["collaborative@12"][0] >= by["sequential@1"][0]
    assert by["collaborative@12"][1] <= by["sequential@1"][1]
