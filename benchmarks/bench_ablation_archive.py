"""Ablation: archive capacity and tabu tenure (DESIGN.md).

The paper fixes archive capacity = tabu tenure = 20 without a
sensitivity analysis.  This bench sweeps both and reports best
feasible distance/vehicles and the 2-D hypervolume of the
(distance, vehicles) front — quantifying how much the crowding-bounded
archive and the tabu window actually matter at this scale.
"""

import numpy as np
from conftest import emit

from repro.mo.hypervolume import hypervolume
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.vrptw.generator import generate_instance

SEEDS = (1, 2, 3)
ARCHIVE_CAPACITIES = (2, 5, 20, 60)
TENURES = (1, 5, 20, 60)


def _quality(runs):
    fronts = [r.feasible_front() for r in runs]
    ref = None
    merged = np.vstack([f for f in fronts if f.size] or [np.zeros((0, 3))])
    if merged.size == 0:
        return float("nan"), float("nan"), 0.0
    ref = merged[:, :2].max(axis=0) * 1.1 + 1.0
    hv = np.mean([hypervolume(f[:, :2], ref) if f.size else 0.0 for f in fronts])
    dist = np.mean([f[:, 0].min() for f in fronts if f.size])
    veh = np.mean([f[:, 1].min() for f in fronts if f.size])
    return dist, veh, hv


def sweep(bench_config):
    n = max(20, round(60 * bench_config.city_fraction / 0.15))
    instance = generate_instance("R1", n, seed=29)

    def params(archive, tenure):
        return TSMOParams(
            max_evaluations=bench_config.max_evaluations,
            neighborhood_size=bench_config.neighborhood_size,
            restart_after=bench_config.restart_after,
            archive_capacity=archive,
            tabu_tenure=tenure,
        )

    archive_rows = []
    for cap in ARCHIVE_CAPACITIES:
        runs = [run_sequential_tsmo(instance, params(cap, 20), seed=s) for s in SEEDS]
        archive_rows.append((cap, *_quality(runs)))
    tenure_rows = []
    for tenure in TENURES:
        runs = [run_sequential_tsmo(instance, params(20, tenure), seed=s) for s in SEEDS]
        tenure_rows.append((tenure, *_quality(runs)))
    return instance.name, archive_rows, tenure_rows


def test_archive_and_tenure_ablation(benchmark, bench_config, output_dir):
    name, archive_rows, tenure_rows = benchmark.pedantic(
        sweep, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"Archive-capacity / tabu-tenure ablation on {name} "
        f"(mean of {len(SEEDS)} sequential runs; paper setting: 20/20)",
        f"{'archive cap':>11} {'distance':>10} {'vehicles':>9} {'hypervolume':>12}",
    ]
    for cap, dist, veh, hv in archive_rows:
        lines.append(f"{cap:>11d} {dist:>10.1f} {veh:>9.2f} {hv:>12.1f}")
    lines.append(f"{'tenure':>11} {'distance':>10} {'vehicles':>9} {'hypervolume':>12}")
    for tenure, dist, veh, hv in tenure_rows:
        lines.append(f"{tenure:>11d} {dist:>10.1f} {veh:>9.2f} {hv:>12.1f}")
    emit(output_dir, "ablation_archive_tenure", "\n".join(lines))
    assert len(archive_rows) == len(ARCHIVE_CAPACITIES)
    assert len(tenure_rows) == len(TENURES)
