"""Solve-service throughput benchmark (``BENCH_serve.json``).

Not a paper table — this measures the multi-tenant service layer
itself: how many concurrent solve jobs one shared worker pool
sustains, end-to-end job latency under open-loop load, and the
conservation audit (zero lost, zero duplicated, zero short-of-budget
jobs).  The same workload is runnable standalone via
``python -m repro.serve --smoke``; this pytest wrapper regenerates the
repo-root ``BENCH_serve.json`` artifact from a test run.

The chaos section of the artifact comes from the seeded chaos soak:
the same job population driven through worker kills, a scheduler
kill-and-restart with ledger recovery, torn checkpoints and injected
crashes — and still conserved, with every completed front bit-identical
to the uninterrupted sequential oracle.
"""

import asyncio
import json

import pytest

from repro.parallel.pool import PoolParams
from repro.serve import (
    ServeFaultPlan,
    ServeParams,
    SolveScheduler,
    TrafficConfig,
    run_chaos_soak,
    run_traffic,
    write_report,
)
from repro.vrptw.generator import generate_instance

from conftest import REPO_ROOT

SERVE_JSON = REPO_ROOT / "BENCH_serve.json"

FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

CONFIG = TrafficConfig(
    n_jobs=60,
    rate=2000.0,
    seed=1,
    budget=48,
    neighborhood=8,
    tenants=(("acme", 3.0), ("globex", 1.0)),
)


@pytest.fixture(scope="module")
def instance():
    return generate_instance("R1", 20, seed=55)


def test_serve_throughput(instance):
    """Drive the open-loop workload once and record the service numbers."""

    async def scenario():
        async with SolveScheduler(
            instance,
            n_workers=2,
            pool_params=FAST,
            params=ServeParams(max_active=64, max_queued=256),
            tenant_weights=dict(CONFIG.tenants),
        ) as scheduler:
            report = await run_traffic(scheduler, CONFIG)
            pool_report = scheduler.report().get("pool", {})
        return report, pool_report

    report, pool_report = asyncio.run(scenario())
    assert report.conserved(), report.to_dict()
    assert report.peak_active >= 50
    write_report(
        report,
        SERVE_JSON,
        config=CONFIG,
        extra={"n_workers": 2, "pool": pool_report},
    )
    print(
        f"\nserve: {report.completed} jobs in {report.makespan_s:.2f}s "
        f"= {report.jobs_per_sec:.1f} jobs/s, "
        f"p99 latency {report.latency_s['p99'] * 1e3:.0f}ms, "
        f"peak_active {report.peak_active} -> {SERVE_JSON.name}"
    )


def test_serve_chaos_soak(instance, tmp_path):
    """The acceptance soak: 60 jobs through the seeded fault schedule,
    still conserved and bit-identical; recorded under ``"chaos"``."""
    n_jobs = 60
    plan = ServeFaultPlan.seeded(1, n_jobs)

    report = asyncio.run(
        run_chaos_soak(
            instance,
            checkpoint_dir=tmp_path,
            plan=plan,
            n_jobs=n_jobs,
            n_workers=2,
            seed=1,
            budget=96,
            neighborhood=16,
            pool_params=FAST,
        )
    )
    assert report.conserved(), report.to_dict()
    assert report.traffic.completed == n_jobs
    assert len(plan.worker_kills) >= 2
    assert report.scheduler_kills >= 1
    assert report.recovered_jobs >= 1
    assert report.tears_applied >= 1
    assert report.job_retries >= 1
    assert report.preemptions >= 1
    assert report.bit_identical is True and report.verified_jobs == n_jobs
    # Fold the chaos numbers into the artifact the throughput test wrote.
    payload = json.loads(SERVE_JSON.read_text())
    payload["chaos"] = {"plan": plan.to_dict(), "report": report.to_dict()}
    SERVE_JSON.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    print(
        f"\nserve-chaos: {report.traffic.completed}/{n_jobs} jobs across "
        f"{report.incarnations} incarnations, retries={report.job_retries}, "
        f"preemptions={report.preemptions}, recovered={report.recovered_jobs}, "
        f"tears={report.tears_applied} -> {SERVE_JSON.name}"
    )
