"""The five neighborhood operators of the paper (§II.B).

Each operator proposes random *moves* that transform one solution into
a neighbor, subject to a *local feasibility criterion* that rejects
manipulations which obviously violate time windows at the insertion
point or would overload a vehicle.  The criterion is intentionally weak
("weak enough that solutions with time window violations occur and
strong enough that the algorithm could find back"): it checks only the
newly created adjacencies using ready times, not full schedules.

Operators:

* :class:`~repro.core.operators.relocate.Relocate` — move one customer
  to another route ((1,0) λ-interchange);
* :class:`~repro.core.operators.exchange.Exchange` — swap two customers
  of different routes ((1,1) λ-interchange);
* :class:`~repro.core.operators.two_opt.TwoOpt` — reverse a tour
  segment;
* :class:`~repro.core.operators.two_opt_star.TwoOptStar` — cross the
  tails of two tours;
* :class:`~repro.core.operators.or_opt.OrOpt` — move two consecutive
  customers elsewhere in the same tour.
"""

from repro.core.operators.base import Move, Operator
from repro.core.operators.exchange import Exchange, ExchangeMove
from repro.core.operators.or_opt import OrOpt, OrOptMove
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.operators.relocate import Relocate, RelocateMove
from repro.core.operators.two_opt import TwoOpt, TwoOptMove
from repro.core.operators.two_opt_star import TwoOptStar, TwoOptStarMove

__all__ = [
    "Exchange",
    "ExchangeMove",
    "Move",
    "Operator",
    "OperatorRegistry",
    "OrOpt",
    "OrOptMove",
    "Relocate",
    "RelocateMove",
    "TwoOpt",
    "TwoOptMove",
    "TwoOptStar",
    "TwoOptStarMove",
    "default_registry",
]
