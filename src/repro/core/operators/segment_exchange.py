"""Segment exchange — the (2,1) λ-interchange (optional extension).

The paper's Relocate and Exchange are the (1,0) and (1,1) instances of
Osman's λ-interchange family (§II.B cites exactly those two).  This
module adds the next member, the (2,1) exchange: a pair of consecutive
customers on one route swaps with a single customer on another.  It is
**not** part of the paper's operator set and is excluded from
:func:`~repro.core.operators.registry.default_registry`; the operator
ablation benchmark can add it via a custom registry to measure what a
richer neighborhood would have bought.

The local feasibility criterion applies to all four created
adjacencies (segment enters route B, singleton enters route A), and
both receiving routes must stay within capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator, RouteEdits
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["SegmentExchange", "SegmentExchangeMove"]


@dataclass(frozen=True, slots=True)
class SegmentExchangeMove(Move):
    """Swap ``segment`` (2 consecutive customers of ``route_a`` at
    ``pos_a``) with ``customer`` (``route_b`` at ``pos_b``)."""

    route_a: int
    pos_a: int
    segment: tuple[int, int]
    route_b: int
    pos_b: int
    customer: int

    name = "segx"

    def route_edits(self, solution: Solution) -> RouteEdits:
        ra = solution.routes[self.route_a]
        rb = solution.routes[self.route_b]
        if (
            ra[self.pos_a : self.pos_a + 2] != self.segment
            or rb[self.pos_b] != self.customer
        ):
            raise OperatorError("stale segment-exchange move")
        new_a = ra[: self.pos_a] + (self.customer,) + ra[self.pos_a + 2 :]
        new_b = rb[: self.pos_b] + self.segment + rb[self.pos_b + 1 :]
        return {self.route_a: new_a, self.route_b: new_b}, ()

    @property
    def attribute(self) -> Hashable:
        return ("segx", frozenset((*self.segment, self.customer)))


class SegmentExchange(Operator):
    """Random (2,1) λ-interchange proposals."""

    name = "segx"

    #: per-solution memo of donor route indices (the sampler proposes
    #: dozens of moves against the same current solution).
    _memo_solution: Solution | None = None
    _memo_donors: list[int] = []

    def propose(
        self, solution: Solution, rng: np.random.Generator
    ) -> SegmentExchangeMove | None:
        instance = solution.instance
        if solution.n_routes < 2:
            return None
        routes = solution.routes
        if self._memo_solution is not solution:
            self._memo_solution = solution
            self._memo_donors = [i for i, r in enumerate(routes) if len(r) >= 2]
        donors = self._memo_donors
        if not donors:
            return None
        capacity = instance.capacity
        demand = instance._demand_l
        depart = instance._depart_l
        due = instance._due_l
        travel = instance._travel_rows
        locate = solution.location_table().__getitem__
        loads = solution.route_loads()
        integers = rng.integers
        n_donors = len(donors)
        customer_hi = instance.n_customers + 1
        for _ in range(self.max_attempts):
            route_a = donors[integers(n_donors)]
            ra = routes[route_a]
            pos_a = integers(0, len(ra) - 1)
            segment = ra[pos_a : pos_a + 2]
            customer = integers(1, customer_hi)
            route_b, pos_b = locate(customer)
            if route_b == route_a:
                continue
            rb = routes[route_b]
            seg_demand = demand[segment[0]] + demand[segment[1]]
            delta = seg_demand - demand[customer]
            if loads[route_b] + delta > capacity:
                continue
            if loads[route_a] - delta > capacity:
                continue
            # Adjacencies: customer replaces the segment in A, the
            # segment replaces the customer in B (insertion_admissible
            # and segment_insertion_admissible inlined — feasibility.py).
            ia = ra[pos_a - 1] if pos_a > 0 else 0
            ja = ra[pos_a + 2] if pos_a + 2 < len(ra) else 0
            ib = rb[pos_b - 1] if pos_b > 0 else 0
            jb = rb[pos_b + 1] if pos_b + 1 < len(rb) else 0
            s0 = segment[0]
            s1 = segment[1]
            if (
                depart[ia] + travel[ia][customer] <= due[customer]
                and depart[customer] + travel[customer][ja] <= due[ja]
                and depart[ib] + travel[ib][s0] <= due[s0]
                and depart[s1] + travel[s1][jb] <= due[jb]
            ):
                return SegmentExchangeMove(
                    route_a=route_a,
                    pos_a=pos_a,
                    segment=(segment[0], segment[1]),
                    route_b=route_b,
                    pos_b=pos_b,
                    customer=customer,
                )
        return None
