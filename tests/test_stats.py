"""Tests for the statistics layer: aggregation, speedup, t-tests."""

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.stats.speedup import format_speedup, speedup, speedup_percent
from repro.stats.summary import MeanStd, aggregate, summarize_results
from repro.stats.ttest import pairwise_ttest
from repro.core.objectives import ObjectiveVector
from repro.mo.archive import ArchiveEntry
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOResult


def fake_result(
    distance=100.0,
    vehicles=5,
    tardiness=0.0,
    runtime=10.0,
    algorithm="sequential",
    processors=1,
    instance="I",
):
    entry = ArchiveEntry("sol", ObjectiveVector(distance, vehicles, tardiness))
    return TSMOResult(
        instance_name=instance,
        algorithm=algorithm,
        params=TSMOParams(max_evaluations=10),
        archive=[entry],
        iterations=1,
        evaluations=10,
        restarts=0,
        wall_time=1.0,
        simulated_time=runtime,
        processors=processors,
    )


class TestMeanStd:
    def test_aggregate(self):
        ms = aggregate([1.0, 2.0, 3.0])
        assert ms.mean == pytest.approx(2.0)
        assert ms.std == pytest.approx(1.0)
        assert ms.n == 3

    def test_singleton(self):
        ms = aggregate([5.0])
        assert ms.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            aggregate([])

    def test_nan_rejected_naming_index(self):
        # Regression: a NaN sample used to propagate silently into a
        # nan±nan table cell; now the offending index is named.
        with pytest.raises(BenchmarkError, match="index 2"):
            aggregate([1.0, 2.0, float("nan"), 4.0])

    def test_inf_rejected(self):
        with pytest.raises(BenchmarkError, match="non-finite"):
            aggregate([1.0, float("inf")])
        with pytest.raises(BenchmarkError, match="2 of 3"):
            aggregate([float("-inf"), 1.0, float("nan")])

    def test_formatting(self):
        ms = MeanStd(mean=226897.72, std=4999.31, n=30)
        assert f"{ms:.2f}" == "226897.72±4999.31"
        assert str(ms) == "226897.72±4999.31"


class TestSummarize:
    def test_basic(self):
        results = [fake_result(distance=d) for d in (90.0, 100.0, 110.0)]
        s = summarize_results(results)
        assert s.distance.mean == pytest.approx(100.0)
        assert s.vehicles.mean == pytest.approx(5.0)
        assert s.runtime.mean == pytest.approx(10.0)
        assert s.infeasible_runs == 0

    def test_best_feasible_per_objective(self):
        # An archive with a distance/vehicle tradeoff: the row records
        # min distance AND min vehicles independently.
        result = fake_result()
        result.archive = [
            ArchiveEntry("a", ObjectiveVector(100.0, 7, 0.0)),
            ArchiveEntry("b", ObjectiveVector(140.0, 5, 0.0)),
            ArchiveEntry("c", ObjectiveVector(90.0, 9, 3.0)),  # infeasible
        ]
        s = summarize_results([result])
        assert s.distance.mean == pytest.approx(100.0)
        assert s.vehicles.mean == pytest.approx(5.0)

    def test_infeasible_runs_excluded(self):
        ok = fake_result(distance=100.0)
        bad = fake_result(tardiness=9.0)
        s = summarize_results([ok, bad])
        assert s.infeasible_runs == 1
        assert s.distance.n == 1

    def test_all_infeasible_rejected(self):
        with pytest.raises(BenchmarkError, match="no feasible"):
            summarize_results([fake_result(tardiness=5.0)])

    def test_mixed_configs_rejected(self):
        with pytest.raises(BenchmarkError, match="mixed"):
            summarize_results([fake_result(), fake_result(algorithm="synchronous")])

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            summarize_results([])

    def test_mixed_time_basis_rejected(self):
        # Regression: a run set mixing simulated-clock and wall-clock
        # runtimes used to aggregate both into one meaningless runtime
        # column; now it fails loudly naming the split.
        simulated = fake_result()
        wall_only = fake_result()
        wall_only.simulated_time = None
        with pytest.raises(BenchmarkError, match="mixed time basis"):
            summarize_results([simulated, wall_only])

    def test_runtime_basis_recorded(self):
        assert summarize_results([fake_result()]).runtime_basis == "simulated"
        wall = fake_result()
        wall.simulated_time = None
        s = summarize_results([wall])
        assert s.runtime_basis == "wall"
        assert s.runtime.mean == pytest.approx(wall.wall_time)


class TestSpeedup:
    def test_ratio_of_means(self):
        assert speedup([100, 200], [50, 100]) == pytest.approx(2.0)

    def test_paper_percent_format(self):
        # async@3 in Table I: ratio 2.0134 -> "101.34%".
        assert format_speedup(2.0134) == "101.34%"
        assert format_speedup(0.8476) == "-15.24%"

    def test_percent(self):
        assert speedup_percent(1.0) == 0.0
        assert speedup_percent(1.5) == pytest.approx(50.0)

    def test_invalid(self):
        with pytest.raises(BenchmarkError):
            speedup([0.0], [1.0])

    def test_empty_samples_rejected(self):
        # np.mean([]) is NaN and NaN slips past a `<= 0` guard (NaN
        # comparisons are False); the empty case must raise instead of
        # letting `nan%` reach the rendered tables.
        with pytest.raises(BenchmarkError, match="sample"):
            speedup([], [])
        with pytest.raises(BenchmarkError, match="sample"):
            speedup([], [1.0])
        with pytest.raises(BenchmarkError, match="sample"):
            speedup([1.0], [])


class TestTTest:
    def test_identical_samples_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(100, 5, size=30)
        t = pairwise_ttest(a, a + rng.normal(0, 0.01, 30))
        assert not t.significant()

    def test_separated_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(100, 5, size=30)
        b = rng.normal(80, 5, size=30)
        t = pairwise_ttest(a, b, "coll", "seq")
        assert t.significant()
        assert t.p_value < 0.001
        assert "coll vs seq" in str(t)

    def test_needs_two_per_side(self):
        with pytest.raises(BenchmarkError):
            pairwise_ttest([1.0], [2.0, 3.0])

    def test_equal_constant_samples_not_significant(self):
        # Both sides constant and equal (e.g. every run used 11
        # vehicles): scipy's Welch statistic is 0/0 = nan; the explicit
        # resolution is p=1 — maximally indistinguishable.
        t = pairwise_ttest([11.0, 11.0, 11.0], [11.0, 11.0, 11.0])
        assert not np.isnan(t.p_value)
        assert t.p_value == 1.0
        assert t.statistic == 0.0
        assert not t.significant()

    def test_unequal_constant_samples_significant(self):
        # Both sides constant but different: zero within-sample noise
        # separates them perfectly — p=0, always significant.
        t = pairwise_ttest([11.0, 11.0, 11.0], [10.0, 10.0, 10.0])
        assert not np.isnan(t.p_value)
        assert t.p_value == 0.0
        assert t.statistic == np.inf
        assert t.significant()
        flipped = pairwise_ttest([10.0, 10.0], [11.0, 11.0])
        assert flipped.statistic == -np.inf
        assert flipped.significant()

    def test_symmetry_of_p(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10, 1, 20)
        b = rng.normal(11, 1, 20)
        assert pairwise_ttest(a, b).p_value == pytest.approx(
            pairwise_ttest(b, a).p_value
        )
