"""The local feasibility criterion (paper §II.B).

The paper adds a cheap screen to every operator: "it was not allowed to
insert a customer k between two other customers i and j, if either
``a_i + c_i + t_{i,k} > b_k`` or ``a_k + c_k + t_{k,j} > b_j`` were
satisfied or the demand of that route exceeds m."

Note the check uses *ready times* ``a`` rather than actual arrival
times — it is a local, schedule-free necessary-ish condition.  It is
deliberately weak (solutions with time-window violations still occur,
keeping the soft-TW search space open) yet strong enough to keep the
trajectory near the feasible region.

For operators that create new adjacencies without a literal insertion
(2-opt, 2-opt*), the same formula is applied per created edge:
an edge ``u -> v`` is locally admissible iff
``a_u + c_u + t_{u,v} <= b_v``.  The depot participates with
``a_0 = c_0 = 0`` and ``b_0 = horizon``.

Capacity is always enforced on every route an operator rebuilds, which
is why (paper §II) "because of the design of the operators, this
violation could not occur".
"""

from __future__ import annotations

from typing import Sequence

from repro.vrptw.instance import Instance

__all__ = ["edge_admissible", "insertion_admissible", "segment_insertion_admissible"]


def edge_admissible(instance: Instance, u: int, v: int) -> bool:
    """Local admissibility of the directed edge ``u -> v``.

    ``a_u + c_u + t_{u,v} <= b_v`` with the depot as site 0.
    """
    ready = instance._ready_l
    service = instance._service_l
    due = instance._due_l
    return ready[u] + service[u] + instance._travel_rows[u][v] <= due[v]


def insertion_admissible(instance: Instance, i: int, k: int, j: int) -> bool:
    """Local admissibility of inserting customer ``k`` between ``i`` and ``j``.

    This is the paper's criterion verbatim (both created edges must be
    admissible); capacity is checked separately by the operator because
    it depends on the whole receiving route.
    """
    return edge_admissible(instance, i, k) and edge_admissible(instance, k, j)


def segment_insertion_admissible(
    instance: Instance, i: int, segment: Sequence[int], j: int
) -> bool:
    """Local admissibility of inserting a customer segment between ``i`` and ``j``.

    Generalizes the criterion to or-opt's two-customer segment: the
    entering edge ``i -> segment[0]`` and the leaving edge
    ``segment[-1] -> j`` must both be admissible (the segment's internal
    edges already existed in the parent solution).
    """
    if not segment:
        return True
    return edge_admissible(instance, i, segment[0]) and edge_admissible(
        instance, segment[-1], j
    )
