"""Parallel TSMO variants and the simulated-cluster substrate.

The paper ran on an SGI Origin 3800 with 128 processors; this
environment has one core and a GIL, so (per DESIGN.md) the parallel
*protocols* execute for real inside a deterministic discrete-event
simulation while durations come from a calibrated cost model:

* :mod:`repro.parallel.des` — the event kernel (processes as
  generators, mailboxes, timeouts);
* :mod:`repro.parallel.cluster` — virtual processors with speed
  jitter, stochastic stalls and a message cost model;
* :mod:`repro.parallel.sync_ts` — the synchronous master–worker TSMO
  (§III.C);
* :mod:`repro.parallel.async_ts` — the asynchronous master–worker TSMO
  with the four-condition decision function (§III.D, Algorithm 2);
* :mod:`repro.parallel.collab_ts` — the collaborative multisearch TSMO
  with the rotating communication list (§III.E);
* :mod:`repro.parallel.pool` — the persistent fault-tolerant worker
  pool for real OS processes (heartbeats, deadlines, bounded retry
  with deterministic re-seeding, respawn, graceful degradation);
* :mod:`repro.parallel.mp_backend` — the synchronous and asynchronous
  master/worker protocols on actual OS processes, built on the pool
  (not used by the benchmark tables: one core here);
* :mod:`repro.parallel.adaptive_memory` — Taillard-style adaptive
  memory TS (the domain-decomposition strand of related work, §I),
  included as an extension.
"""

from repro.parallel.adaptive_memory import (
    AdaptiveMemoryParams,
    run_adaptive_memory_tsmo,
)
from repro.parallel.async_ts import AsyncParams, run_asynchronous_tsmo
from repro.parallel.base import run_sequential_simulated
from repro.parallel.cluster import SimCluster
from repro.parallel.collab_ts import CollabParams, run_collaborative_tsmo
from repro.parallel.costmodel import CostModel
from repro.parallel.des import Environment, Mailbox
from repro.parallel.hybrid_ts import HybridParams, run_hybrid_tsmo
from repro.parallel.mp_backend import (
    MpAsyncParams,
    run_multiprocessing_async_tsmo,
    run_multiprocessing_tsmo,
)
from repro.parallel.pool import FaultPlan, PoolParams, WorkerPool
from repro.parallel.shm import (
    SharedInstance,
    SharedInstanceRef,
    SharedInstanceStore,
    instance_fingerprint,
    share_instance,
)
from repro.parallel.sync_ts import run_synchronous_tsmo

__all__ = [
    "AdaptiveMemoryParams",
    "AsyncParams",
    "CollabParams",
    "CostModel",
    "Environment",
    "FaultPlan",
    "HybridParams",
    "Mailbox",
    "MpAsyncParams",
    "PoolParams",
    "SharedInstance",
    "SharedInstanceRef",
    "SharedInstanceStore",
    "SimCluster",
    "WorkerPool",
    "instance_fingerprint",
    "run_adaptive_memory_tsmo",
    "run_asynchronous_tsmo",
    "run_collaborative_tsmo",
    "run_hybrid_tsmo",
    "run_multiprocessing_async_tsmo",
    "run_multiprocessing_tsmo",
    "run_sequential_simulated",
    "run_synchronous_tsmo",
    "share_instance",
]
