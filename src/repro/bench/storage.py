"""JSON persistence for table experiments.

Paper-scale runs (``REPRO_BENCH_SCALE=paper``) take a long time; this
module lets the harness run once and re-render/re-analyze forever:
:func:`save_table_data` writes every run's objective front and
runtime/accounting metadata to a human-readable JSON file, and
:func:`load_table_data` reconstructs a :class:`~repro.bench.tables.
TableData` whose derived columns (quality, coverage, speedup, t-tests)
are identical to the live one.  Solutions themselves are *not* stored
(use :meth:`repro.tabu.search.TSMOResult.save` for that); the table
machinery only ever reads objective vectors.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.tables import TableData
from repro.core.objectives import ObjectiveVector
from repro.errors import BenchmarkError
from repro.mo.archive import ArchiveEntry
from repro.tabu.params import TSMOParams
from repro.tabu.search import TSMOResult

__all__ = ["save_table_data", "load_table_data"]

#: bumped when the on-disk layout changes.
FORMAT_VERSION = 1


def _result_record(result: TSMOResult) -> dict:
    return {
        "instance": result.instance_name,
        "algorithm": result.algorithm,
        "processors": result.processors,
        "iterations": result.iterations,
        "evaluations": result.evaluations,
        "restarts": result.restarts,
        "wall_time": result.wall_time,
        "simulated_time": result.simulated_time,
        "front": [
            [e.objectives.distance, e.objectives.vehicles, e.objectives.tardiness]
            for e in result.archive
        ],
        "params": {
            "max_evaluations": result.params.max_evaluations,
            "neighborhood_size": result.params.neighborhood_size,
            "tabu_tenure": result.params.tabu_tenure,
            "archive_capacity": result.params.archive_capacity,
            "nondom_capacity": result.params.nondom_capacity,
            "restart_after": result.params.restart_after,
            "hard_time_windows": result.params.hard_time_windows,
            "aspiration": result.params.aspiration,
        },
    }


def _record_result(record: dict) -> TSMOResult:
    params = TSMOParams(**record["params"])
    archive = [
        ArchiveEntry(None, ObjectiveVector(float(d), int(v), float(t)))
        for d, v, t in record["front"]
    ]
    return TSMOResult(
        instance_name=record["instance"],
        algorithm=record["algorithm"],
        params=params,
        archive=archive,
        iterations=record["iterations"],
        evaluations=record["evaluations"],
        restarts=record["restarts"],
        wall_time=record["wall_time"],
        simulated_time=record["simulated_time"],
        processors=record["processors"],
    )


def save_table_data(data: TableData, path: str | Path) -> Path:
    """Write a table experiment to JSON; returns the path."""
    records = [
        _result_record(result)
        for key in data.results
        for runs in data.results[key].values()
        for result in runs
    ]
    payload = {
        "format_version": FORMAT_VERSION,
        "table": data.table,
        "n_runs": len(records),
        "runs": records,
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return out


def load_table_data(path: str | Path) -> TableData:
    """Reload a table experiment written by :func:`save_table_data`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"cannot read table data from {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise BenchmarkError(
            f"{path} has format version {version}, expected {FORMAT_VERSION}"
        )
    data = TableData(table=payload["table"])
    for record in payload["runs"]:
        data.add(_record_result(record))
    return data
