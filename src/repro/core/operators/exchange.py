"""Exchange — the (1,1) λ-interchange of Osman (paper §II.B).

Swaps two customers that sit on *different* routes.  Both insertion
points are screened with the local feasibility criterion and both
receiving routes must stay within capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator, RouteEdits
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["Exchange", "ExchangeMove"]


@dataclass(frozen=True, slots=True)
class ExchangeMove(Move):
    """Swap ``customer_a`` (route ``route_a``) with ``customer_b`` (route ``route_b``)."""

    customer_a: int
    route_a: int
    pos_a: int
    customer_b: int
    route_b: int
    pos_b: int

    name = "exchange"

    def route_edits(self, solution: Solution) -> RouteEdits:
        ra = solution.routes[self.route_a]
        rb = solution.routes[self.route_b]
        if ra[self.pos_a] != self.customer_a or rb[self.pos_b] != self.customer_b:
            raise OperatorError("stale exchange move: customers moved since proposal")
        new_a = ra[: self.pos_a] + (self.customer_b,) + ra[self.pos_a + 1 :]
        new_b = rb[: self.pos_b] + (self.customer_a,) + rb[self.pos_b + 1 :]
        return {self.route_a: new_a, self.route_b: new_b}, ()

    @property
    def attribute(self) -> Hashable:
        return ("exchange", frozenset((self.customer_a, self.customer_b)))


class Exchange(Operator):
    """Random exchange proposals under the local feasibility criterion."""

    name = "exchange"

    def propose(
        self, solution: Solution, rng: np.random.Generator
    ) -> ExchangeMove | None:
        instance = solution.instance
        if solution.n_routes < 2:
            return None
        capacity = instance.capacity
        demand = instance._demand_l
        depart = instance._depart_l
        due = instance._due_l
        travel = instance._travel_rows
        routes = solution.routes
        locate = solution.location_table().__getitem__
        loads = solution.route_loads()
        integers = rng.integers
        customer_hi = instance.n_customers + 1
        for _ in range(self.max_attempts):
            a = integers(1, customer_hi)
            b = integers(1, customer_hi)
            route_a, pos_a = locate(a)
            route_b, pos_b = locate(b)
            if route_a == route_b:
                continue
            ra = routes[route_a]
            rb = routes[route_b]
            delta = demand[a] - demand[b]
            if loads[route_b] + delta > capacity:
                continue
            if loads[route_a] - delta > capacity:
                continue
            # b must fit between a's neighbors, a between b's neighbors
            # (insertion_admissible() inlined — see feasibility.py).
            ia = ra[pos_a - 1] if pos_a > 0 else 0
            ja = ra[pos_a + 1] if pos_a + 1 < len(ra) else 0
            ib = rb[pos_b - 1] if pos_b > 0 else 0
            jb = rb[pos_b + 1] if pos_b + 1 < len(rb) else 0
            if (
                depart[ia] + travel[ia][b] <= due[b]
                and depart[b] + travel[b][ja] <= due[ja]
                and depart[ib] + travel[ib][a] <= due[a]
                and depart[a] + travel[a][jb] <= due[jb]
            ):
                return ExchangeMove(
                    customer_a=a,
                    route_a=route_a,
                    pos_a=pos_a,
                    customer_b=b,
                    route_b=route_b,
                    pos_b=pos_b,
                )
        return None
