"""Relocate — the (1,0) λ-interchange of Osman (paper §II.B).

Moves one customer from its route to a position in *another* route (or
into a previously unused vehicle, which is how the search can re-open a
route while repairing heavy tardiness).  Emptying a source route is how
the vehicle count ``f2`` goes down, so this operator carries most of
the fleet-minimization pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.operators.base import Move, Operator
from repro.core.operators.feasibility import insertion_admissible
from repro.core.solution import Solution
from repro.errors import OperatorError

__all__ = ["Relocate", "RelocateMove"]

#: Destination index meaning "open a new route with an unused vehicle".
NEW_ROUTE = -1


@dataclass(frozen=True, slots=True)
class RelocateMove(Move):
    """Move ``customer`` from ``src_route`` to ``dst_route`` at ``dst_pos``.

    ``dst_route == NEW_ROUTE`` opens a fresh single-customer route.
    """

    customer: int
    src_route: int
    src_pos: int
    dst_route: int
    dst_pos: int

    name = "relocate"

    def apply(self, solution: Solution) -> Solution:
        src = solution.routes[self.src_route]
        if src[self.src_pos] != self.customer:
            raise OperatorError(
                f"stale move: customer {self.customer} not at "
                f"route {self.src_route} position {self.src_pos}"
            )
        new_src = src[: self.src_pos] + src[self.src_pos + 1 :]
        if self.dst_route == NEW_ROUTE:
            return solution.derive(
                {self.src_route: new_src}, added=[(self.customer,)]
            )
        dst = solution.routes[self.dst_route]
        new_dst = dst[: self.dst_pos] + (self.customer,) + dst[self.dst_pos :]
        return solution.derive({self.src_route: new_src, self.dst_route: new_dst})

    @property
    def attribute(self) -> Hashable:
        return ("relocate", self.customer)


class Relocate(Operator):
    """Random relocate proposals under the local feasibility criterion."""

    name = "relocate"

    def __init__(self, *, allow_new_route: bool = True) -> None:
        #: when True (default) the destination wheel includes opening a
        #: new route, provided unused vehicles remain.
        self.allow_new_route = allow_new_route

    def propose(
        self, solution: Solution, rng: np.random.Generator
    ) -> RelocateMove | None:
        instance = solution.instance
        n_routes = solution.n_routes
        if n_routes == 0:
            return None
        new_route_ok = self.allow_new_route and solution.vehicle_slack > 0
        if n_routes == 1 and not new_route_ok:
            return None
        capacity = instance.capacity
        demand = instance._demand_l
        for _ in range(self.max_attempts):
            customer = int(rng.integers(1, instance.n_customers + 1))
            src_route, src_pos = solution.locate(customer)
            # Destination wheel: every other route, plus possibly "new".
            n_options = n_routes - 1 + (1 if new_route_ok else 0)
            if n_options == 0:
                return None
            pick = int(rng.integers(n_options))
            if pick >= n_routes - 1:
                # A single-customer source route relocated into a new
                # route is a no-op (same structure, different vehicle).
                if len(solution.routes[src_route]) == 1:
                    continue
                if insertion_admissible(instance, 0, customer, 0):
                    return RelocateMove(
                        customer=customer,
                        src_route=src_route,
                        src_pos=src_pos,
                        dst_route=NEW_ROUTE,
                        dst_pos=0,
                    )
                continue
            dst_route = pick if pick < src_route else pick + 1
            dst = solution.routes[dst_route]
            if solution.route_stats(dst_route).load + demand[customer] > capacity:
                continue
            dst_pos = int(rng.integers(len(dst) + 1))
            i = dst[dst_pos - 1] if dst_pos > 0 else 0
            j = dst[dst_pos] if dst_pos < len(dst) else 0
            if insertion_admissible(instance, i, customer, j):
                return RelocateMove(
                    customer=customer,
                    src_route=src_route,
                    src_pos=src_pos,
                    dst_route=dst_route,
                    dst_pos=dst_pos,
                )
        return None
