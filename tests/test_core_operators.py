"""Tests for the five neighborhood operators and the registry.

Every operator must preserve the representation invariants (customer
partition, fleet bound, capacity feasibility) and honor the local
feasibility criterion on the adjacencies it creates.  A hypothesis
walk cross-checks incremental evaluation against the paper-literal
permutation oracle after long random move sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construction import i1_construct
from repro.core.evaluation import evaluate_permutation
from repro.core.operators import (
    Exchange,
    OperatorRegistry,
    OrOpt,
    Relocate,
    TwoOpt,
    TwoOptStar,
    default_registry,
)
from repro.core.operators.feasibility import (
    edge_admissible,
    insertion_admissible,
    segment_insertion_admissible,
)
from repro.core.solution import Solution
from repro.errors import OperatorError
from repro.vrptw.generator import generate_instance

ALL_OPERATORS = [Relocate(), Exchange(), TwoOpt(), TwoOptStar(), OrOpt()]


def assert_valid(solution: Solution) -> None:
    """Representation + capacity invariants."""
    inst = solution.instance
    Solution._validate_routes(inst, solution.routes)
    assert all(load <= inst.capacity + 1e-9 for load in solution.route_loads())


def propose_until(operator, solution, rng, tries=3000):
    """Bounded proposal loop: skip the test if the operator cannot act
    on this solution (never spin forever)."""
    for _ in range(tries):
        move = operator.propose(solution, rng)
        if move is not None:
            return move
    pytest.skip(f"{operator.name} proposes nothing on this fixture")


@pytest.fixture(scope="module")
def base():
    # Wide-window clustered instance: every operator is viable here
    # (tight type-1 windows structurally suppress intra-route
    # reordering under the ready-time criterion — see
    # TestOperatorDormancy below).
    inst = generate_instance("C2", 30, seed=123)
    return inst, i1_construct(inst, rng=np.random.default_rng(5))


class TestLocalFeasibility:
    def test_edge_formula(self, small_instance):
        # a_u + c_u + t(u, v) <= b_v, literally.
        inst = small_instance
        u, v = 1, 2
        lhs = inst.ready_time[u] + inst.service_time[u] + inst.travel[u, v]
        assert edge_admissible(inst, u, v) == (lhs <= inst.due_date[v])

    def test_depot_edges_always_reasonable(self, small_instance):
        # depot -> k uses a_0 = c_0 = 0: admissible iff t(0,k) <= b_k,
        # which the generator guarantees.
        inst = small_instance
        for k in range(1, inst.n_customers + 1):
            assert edge_admissible(inst, 0, k)

    def test_insertion_is_both_edges(self, small_instance):
        inst = small_instance
        i, k, j = 3, 4, 5
        assert insertion_admissible(inst, i, k, j) == (
            edge_admissible(inst, i, k) and edge_admissible(inst, k, j)
        )

    def test_segment_uses_boundary_edges(self, small_instance):
        inst = small_instance
        assert segment_insertion_admissible(inst, 0, [], 1)
        assert segment_insertion_admissible(inst, 1, [2, 3], 4) == (
            edge_admissible(inst, 1, 2) and edge_admissible(inst, 3, 4)
        )


class TestOperatorContracts:
    @pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
    def test_moves_preserve_invariants(self, base, operator):
        inst, sol = base
        rng = np.random.default_rng(7)
        applied = 0
        for _ in range(300):
            move = operator.propose(sol, rng)
            if move is None:
                continue
            child = move.apply(sol)
            assert_valid(child)
            applied += 1
        assert applied > 30, f"{operator.name} almost never proposes moves"

    @pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
    def test_moves_change_the_solution(self, base, operator):
        inst, sol = base
        rng = np.random.default_rng(11)
        for _ in range(100):
            move = operator.propose(sol, rng)
            if move is None:
                continue
            child = move.apply(sol)
            assert child.routes != sol.routes, f"{operator.name} produced a no-op"

    @pytest.mark.parametrize("operator", ALL_OPERATORS, ids=lambda o: o.name)
    def test_attributes_hashable_and_stable(self, base, operator):
        _, sol = base
        rng = np.random.default_rng(13)
        move = propose_until(operator, sol, rng)
        assert hash(move.attribute) == hash(move.attribute)
        assert move.attribute == move.attribute
        assert move.is_tabu({move.attribute})
        assert not move.is_tabu(frozenset())

    def test_relocate_changes_customer_route(self, base):
        _, sol = base
        rng = np.random.default_rng(17)
        move = propose_until(Relocate(), sol, rng)
        child = move.apply(sol)
        if move.dst_route >= 0:
            r, _ = child.locate(move.customer)
            assert move.customer in child.routes[r]
        assert move.attribute == ("relocate", move.customer)

    def test_exchange_swaps_between_routes(self, base):
        _, sol = base
        rng = np.random.default_rng(19)
        move = propose_until(Exchange(), sol, rng)
        ra_before, _ = sol.locate(move.customer_a)
        rb_before, _ = sol.locate(move.customer_b)
        child = move.apply(sol)
        # a now sits where b was (same positions), b where a was.
        assert child.routes[ra_before][move.pos_a] == move.customer_b
        assert child.routes[rb_before][move.pos_b] == move.customer_a

    def test_two_opt_reverses_segment(self, base):
        _, sol = base
        rng = np.random.default_rng(23)
        move = propose_until(TwoOpt(), sol, rng)
        route = sol.routes[move.route_index]
        child = move.apply(sol)
        new_route = child.routes[move.route_index]
        assert new_route[move.start : move.end + 1] == tuple(
            reversed(route[move.start : move.end + 1])
        )
        assert new_route[: move.start] == route[: move.start]
        assert new_route[move.end + 1 :] == route[move.end + 1 :]

    def test_two_opt_star_crosses_tails(self, base):
        _, sol = base
        rng = np.random.default_rng(29)
        move = propose_until(TwoOptStar(), sol, rng)
        ra = sol.routes[move.route_a]
        rb = sol.routes[move.route_b]
        expected_a = ra[: move.cut_a] + rb[move.cut_b :]
        child = move.apply(sol)
        if expected_a:
            assert expected_a in child.routes

    def test_or_opt_moves_pair_in_route(self, base):
        _, sol = base
        rng = np.random.default_rng(31)
        move = propose_until(OrOpt(), sol, rng)
        child = move.apply(sol)
        # Same route membership: the route set sizes are unchanged.
        assert child.n_routes == sol.n_routes
        new_route = child.routes[move.route_index]
        assert len(new_route) == len(sol.routes[move.route_index])
        # The pair stays adjacent and in order.
        a, b = move.segment
        idx = new_route.index(a)
        assert new_route[idx + 1] == b

    def test_stale_move_detected(self, base):
        _, sol = base
        rng = np.random.default_rng(37)
        move = propose_until(Relocate(), sol, rng)
        for _ in range(3000):
            if move.dst_route >= 0:
                break
            move = propose_until(Relocate(), sol, rng)
        child = move.apply(sol)
        with pytest.raises(OperatorError, match="stale"):
            move.apply(child)  # positions no longer match

    def test_single_route_operators_degrade_gracefully(self):
        # One route, no slack: inter-route operators must return None.
        inst = generate_instance("R2", 5, seed=1)
        one_route = Solution.from_routes(inst, [[1, 2, 3, 4, 5]])
        rng = np.random.default_rng(1)
        assert Exchange().propose(one_route, rng) is None
        assert TwoOptStar().propose(one_route, rng) is None
        # Relocate can only open a new route (slack exists here).
        move = Relocate(allow_new_route=False).propose(one_route, rng)
        assert move is None


class TestOperatorDormancy:
    """Tight type-1 windows structurally suppress intra-route
    reordering: within a time-sorted route, moving a pair later makes
    the entering edge violate ``a_i + c_i + t > b_seg``, moving it
    earlier violates the leaving edge.  The paper's answer is the
    operator-wheel retry ("a new random number is drawn and possibly a
    different operator is selected"), which must always deliver *some*
    move."""

    def test_oropt_dormant_on_tight_windows(self):
        inst = generate_instance("R1", 30, seed=123)
        sol = i1_construct(inst, rng=np.random.default_rng(5))
        rng = np.random.default_rng(7)
        proposals = sum(
            OrOpt().propose(sol, rng) is not None for _ in range(300)
        )
        assert proposals < 30  # rarely (typically never) fires

    def test_oropt_active_on_wide_windows(self):
        inst = generate_instance("R2", 30, seed=123)
        sol = i1_construct(inst, rng=np.random.default_rng(5))
        rng = np.random.default_rng(7)
        proposals = sum(
            OrOpt().propose(sol, rng) is not None for _ in range(300)
        )
        assert proposals > 200

    def test_registry_always_delivers_despite_dormancy(self):
        inst = generate_instance("R1", 30, seed=123)
        sol = i1_construct(inst, rng=np.random.default_rng(5))
        rng = np.random.default_rng(9)
        registry = default_registry()
        for _ in range(200):
            assert registry.draw_move(sol, rng) is not None


class TestRegistry:
    def test_default_has_five_operators(self):
        reg = default_registry()
        assert [op.name for op in reg.operators] == [
            "relocate",
            "exchange",
            "2opt",
            "2opt*",
            "oropt",
        ]
        assert np.allclose(reg.weights, 0.2)

    def test_draw_move_retries_until_success(self, base):
        _, sol = base
        reg = default_registry()
        rng = np.random.default_rng(41)
        moves = [reg.draw_move(sol, rng) for _ in range(50)]
        assert all(m is not None for m in moves)

    def test_uniform_operator_distribution(self, base):
        _, sol = base
        reg = default_registry()
        rng = np.random.default_rng(43)
        counts = {}
        for _ in range(2000)            :
            op = reg.draw_operator(rng)
            counts[op.name] = counts.get(op.name, 0) + 1
        for name, count in counts.items():
            assert 300 < count < 500, f"{name} drawn {count}/2000 times"

    def test_weighted_wheel(self):
        reg = OperatorRegistry([Relocate(), TwoOpt()], weights=[3.0, 1.0])
        rng = np.random.default_rng(47)
        names = [reg.draw_operator(rng).name for _ in range(1000)]
        relocates = names.count("relocate")
        assert 650 < relocates < 850

    def test_bad_weights(self):
        with pytest.raises(OperatorError, match="weights"):
            OperatorRegistry([Relocate()], weights=[1.0, 2.0])
        with pytest.raises(OperatorError, match="weights"):
            OperatorRegistry([Relocate()], weights=[-1.0])

    def test_empty_registry_rejected(self):
        with pytest.raises(OperatorError, match="at least one"):
            OperatorRegistry([])

    def test_locked_solution_returns_none(self):
        # A single customer: no operator can do anything.
        inst = generate_instance("R2", 1, seed=1)
        sol = Solution.from_routes(inst, [[1]])
        reg = default_registry()
        assert reg.draw_move(sol, np.random.default_rng(1)) is None


class TestRandomWalkProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(min_value=1, max_value=60),
    )
    def test_walk_preserves_everything(self, seed, steps):
        """After any random move sequence: partition valid, capacity
        held, incremental objectives equal the permutation oracle."""
        inst = generate_instance("RC1", 16, seed=99)
        sol = i1_construct(inst, rng=np.random.default_rng(0))
        reg = default_registry()
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            move = reg.draw_move(sol, rng)
            if move is None:
                break
            sol = move.apply(sol)
        assert_valid(sol)
        literal = evaluate_permutation(inst, sol.permutation)
        assert np.allclose(sol.objectives.as_array(), literal.as_array())
