"""Persistent, fault-tolerant worker pool for the real-process TSMO.

The paper's master–worker variants assume workers that *exist for the
whole run* and a master that survives worker trouble — its asynchronous
decision function (§III.D) is precisely a straggler-tolerance policy.
This module provides that substrate on real OS processes, replacing the
throwaway ``multiprocessing.Pool`` the first backend used:

* **long-lived spawn-context workers** fed over per-worker task queues
  and answering over per-worker result queues, so the instance (with
  its O(N²) travel matrix) ships once per worker life and route-stats
  caches persist across tasks.  Result queues are deliberately *not*
  shared: a ``multiprocessing.Queue`` with several writer processes
  guards its pipe with an interprocess lock, and a worker dying while
  its feeder thread holds that lock would wedge every *other* worker's
  ``put`` forever — a single crash poisoning the whole pool.  With one
  writer per queue, a crash can only corrupt the dead worker's own
  queue, which is abandoned on respawn anyway;
* **streaming result batches** (``batch_size`` neighbors per message),
  so the asynchronous master can run conditions c1–c4 on partial
  neighborhoods exactly as Algorithm 2 prescribes;
* **liveness supervision** — worker heartbeats on an interval, a
  per-task deadline and a heartbeat timeout; a silent or dead worker is
  detected within one polling cycle, never waited on forever;
* **bounded retry with exponential backoff** — the task a failed
  worker held is re-dispatched (up to ``max_retries`` times, then
  executed on the master); because every task carries its own seed or
  RNG state, a retry regenerates *the same neighbors*, so a crash never
  forks the search trajectory;
* **exactly-once delivery across retries** — the pool remembers how
  many neighbors of each task already reached the driver and skips that
  prefix of a retried task's output, so mid-task crashes neither drop
  nor duplicate neighbors;
* **replacement workers** — a failed worker slot is respawned up to
  ``respawn_cap`` times; when every slot is dead and the respawn budget
  is spent, the pool *degrades* to master-local execution and the run
  still completes (never a hang);
* **deterministic fault injection** — a :class:`FaultPlan` (or the
  ``REPRO_POOL_FAULTS`` environment variable) kills or delays chosen
  workers on chosen tasks, so every failure path above is testable in
  CI without flaky timing tricks.

Everything the pool observes is aggregated into :meth:`WorkerPool.report`
— per-worker task/batch/crash/respawn counters, retry and straggler
totals, dispatch backlog high-water mark and task latency quantiles —
which the drivers attach to ``TSMOResult.extra["pool"]``.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.core.batch_eval import batch_supported, sample_batch, vector_eval_enabled
from repro.core.evaluation import Evaluator
from repro.core.operators.registry import OperatorRegistry, default_registry
from repro.core.solution import Solution
from repro.errors import WorkerPoolError
from repro.obs import ENV_OBS, ENV_TRACE_DIR, NULL_OBS, EventTracer, utc_timestamp
from repro.parallel.messages import PoolBatch, PoolHeartbeat, PoolTask, StopMessage
from repro.parallel.shm import SharedInstance, SharedInstanceRef, share_instance
from repro.parallel.wire import WireBatch, WireRoutes, WireTaskDelta, diff_routes
from repro.rng import FastRng
from repro.vrptw.instance import Instance

__all__ = [
    "AdaptiveSizer",
    "BatchEvent",
    "FaultPlan",
    "PoolParams",
    "TaskOutcome",
    "WorkerPool",
]

#: exit code a worker uses for an injected crash (diagnosable in logs).
_FAULT_EXIT = 17


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    Faults are keyed by ``(worker slot, per-slot task ordinal)`` — the
    ordinal counts every task ever dispatched to that slot, surviving
    respawns (a replacement worker resumes the count), so each entry
    fires exactly once per run.

    ``kills`` entries are ``(slot, ordinal, after_batches)``: the
    worker exits hard (``os._exit``) either before executing the task
    (``after_batches is None``) or after having streamed that many
    result batches of it — the latter exercises the exactly-once
    resume-by-offset path.  ``delays`` entries are ``(slot, ordinal,
    seconds)``: the worker sleeps before executing, which trips the
    per-task deadline when ``seconds`` exceeds it (a synthetic
    straggler).

    The environment form ``REPRO_POOL_FAULTS`` is a comma list of
    ``kill:SLOT@ORDINAL``, ``kill:SLOT@ORDINAL+BATCHES`` and
    ``delay:SLOT@ORDINAL:SECONDS`` items, e.g.
    ``"kill:1@3,delay:0@2:0.5"``.
    """

    kills: tuple[tuple[int, int, int | None], ...] = ()
    delays: tuple[tuple[int, int, float], ...] = ()

    @staticmethod
    def from_env(spec: str | None = None) -> "FaultPlan | None":
        """Parse ``REPRO_POOL_FAULTS`` (or an explicit spec string)."""
        if spec is None:
            spec = os.environ.get("REPRO_POOL_FAULTS", "")
        spec = spec.strip()
        if not spec:
            return None
        kills: list[tuple[int, int, int | None]] = []
        delays: list[tuple[int, int, float]] = []
        for item in spec.split(","):
            item = item.strip()
            kind, _, rest = item.partition(":")
            try:
                if kind == "kill":
                    slot_s, _, ordinal_s = rest.partition("@")
                    ordinal_s, _, after_s = ordinal_s.partition("+")
                    kills.append(
                        (int(slot_s), int(ordinal_s), int(after_s) if after_s else None)
                    )
                elif kind == "delay":
                    where, _, seconds_s = rest.partition(":")
                    slot_s, _, ordinal_s = where.partition("@")
                    delays.append((int(slot_s), int(ordinal_s), float(seconds_s)))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except ValueError as exc:
                raise WorkerPoolError(
                    f"malformed REPRO_POOL_FAULTS item {item!r}: {exc}"
                ) from exc
        return FaultPlan(kills=tuple(kills), delays=tuple(delays))

    def action(
        self, slot: int, ordinal: int
    ) -> tuple[str, float | int | None] | None:
        """The fault to apply for this (slot, ordinal), if any."""
        for s, o, after in self.kills:
            if s == slot and o == ordinal:
                return ("kill", after)
        for s, o, seconds in self.delays:
            if s == slot and o == ordinal:
                return ("delay", seconds)
        return None

    def __bool__(self) -> bool:
        return bool(self.kills or self.delays)


# ----------------------------------------------------------------------
# Pool configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PoolParams:
    """Supervision knobs of the worker pool.

    The defaults are sized for production-style runs; tests shrink the
    intervals so failure paths resolve in milliseconds.
    """

    #: seconds between worker liveness beacons.
    heartbeat_interval: float = 0.25
    #: a busy worker silent for this long is declared hung.
    heartbeat_timeout: float = 30.0
    #: hard per-task wall-clock deadline (``None`` disables; the
    #: heartbeat timeout still catches fully wedged workers).
    task_deadline: float | None = 120.0
    #: re-dispatch attempts per task before the master runs it locally.
    max_retries: int = 2
    #: total replacement workers the pool may spawn over its lifetime.
    respawn_cap: int = 2
    #: base of the exponential re-dispatch backoff (seconds); attempt k
    #: waits ``backoff_base * 2**(k-1)``, capped at ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: default blocking granularity of :meth:`WorkerPool.poll`.
    poll_interval: float = 0.05
    #: extra seconds granted on top of ``task_deadline`` while a worker
    #: incarnation has not yet been heard from: a fresh spawn pays
    #: interpreter + numpy import time before it can even start the
    #: task, and under machine load that boot alone can exceed a tight
    #: deadline.  Once the worker is heard, its deadline clock starts
    #: at that moment instead of at dispatch.
    boot_grace: float = 10.0
    #: ship tasks/batches through the compact wire codecs
    #: (:mod:`repro.parallel.wire`) instead of pickling nested tuples.
    #: Decode is bit-identical, so this is safe to leave on.
    codec: bool = True
    #: broadcast the instance through one shared-memory segment
    #: (:mod:`repro.parallel.shm`) instead of pickling it into every
    #: worker spawn.
    shared_instance: bool = True
    #: retune task count / batch size between iterations from observed
    #: worker phase timings (:class:`AdaptiveSizer`).  Off by default:
    #: it changes task boundaries, so seeded multi-task runs are no
    #: longer reproducible across machines.
    adaptive_sizing: bool = False
    #: floor for adaptively chosen task counts.
    min_task_count: int = 4

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise WorkerPoolError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise WorkerPoolError("heartbeat_timeout must exceed the interval")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise WorkerPoolError("task_deadline must be positive (or None)")
        if self.max_retries < 0:
            raise WorkerPoolError("max_retries must be >= 0")
        if self.respawn_cap < 0:
            raise WorkerPoolError("respawn_cap must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise WorkerPoolError("need 0 <= backoff_base <= backoff_cap")
        if self.poll_interval <= 0:
            raise WorkerPoolError("poll_interval must be positive")
        if self.boot_grace < 0:
            raise WorkerPoolError("boot_grace must be non-negative")
        if self.min_task_count < 1:
            raise WorkerPoolError("min_task_count must be >= 1")


# ----------------------------------------------------------------------
# Task execution (shared by worker processes and the master fallback)
# ----------------------------------------------------------------------
def _task_rng(task: PoolTask) -> np.random.Generator:
    if task.rng_state is not None:
        bit_generator = np.random.PCG64()
        bit_generator.state = task.rng_state
        return np.random.Generator(bit_generator)
    return np.random.default_rng(task.seed)


def execute_task(
    instance: Instance,
    evaluator: Evaluator,
    registry: OperatorRegistry,
    task: PoolTask,
    worker: int,
    *,
    codec: bool = False,
    timed: bool = False,
):
    """Yield the :class:`PoolBatch` stream of one task.

    Pure in the sense that matters: the batches are a function of
    ``(instance, task)`` only — the evaluator/registry are reusable
    caches that never change the sampled moves or the objective floats.
    That is the determinism-under-retry invariant: re-running the same
    task after a crash reproduces the same neighbor sequence.

    ``task.routes`` must already be the plain nested tuple here (the
    worker main decodes wire forms first).  With ``codec=True``,
    batches carry :class:`~repro.parallel.wire.WireBatch` edit payloads
    and ``move.apply`` is skipped entirely — the master reconstructs
    child routes from the parent it already holds, and the move's
    ``route_edits`` are exactly what ``apply`` would have used, so the
    decoded triples are identical.  Neither the codec nor ``timed``
    touches the RNG stream or the evaluator, so all modes are
    bit-identical per seed.
    """
    cache = evaluator.stats_cache
    hits0, misses0 = cache.hits, cache.misses
    solution = Solution(instance, task.routes)
    rng = _task_rng(task)
    out = []
    gen_s = eval_s = 0.0
    clock = time.perf_counter

    def flush(final: bool) -> PoolBatch:
        neighbors = WireBatch.encode(out) if codec else tuple(out)
        return PoolBatch(
            worker=worker,
            task_id=task.task_id,
            attempt=task.attempt,
            neighbors=neighbors,
            final=final,
            rng_state=(
                rng.bit_generator.state
                if final and task.rng_state is not None
                else None
            ),
            cache_delta=(
                (cache.hits - hits0, cache.misses - misses0) if final else None
            ),
            phase=(gen_s, eval_s) if final and timed else None,
        )

    if batch_supported(registry):
        # Batched path: one kernel call samples and scores the whole
        # task; the entries then stream out in ``batch_size`` chunks
        # through the same flush protocol.  Moves are materialized
        # eagerly — every entry ships its edits/routes to the master.
        result = sample_batch(
            solution,
            task.count,
            registry,
            rng,
            evaluator,
            vector=vector_eval_enabled(),
            eager_moves=True,
            timed=timed,
        )
        gen_s = result.gen_seconds
        eval_s = result.eval_seconds
        for obj, move, _ in result.entries:
            objective = (obj.distance, obj.vehicles, obj.tardiness)
            if codec:
                replacements, added = move.route_edits(solution)
                out.append((replacements, added, objective, move.attribute))
            else:
                child = move.apply(solution)  # routes must ship to the master
                out.append((child.routes, objective, move.attribute))
            if len(out) >= task.batch_size:
                yield flush(final=False)
                out = []
        yield flush(final=True)
        return

    fast = FastRng(rng)
    try:
        for _ in range(task.count):
            if timed:
                t0 = clock()
                move = registry.draw_move(solution, fast)
                gen_s += clock() - t0
            else:
                move = registry.draw_move(solution, fast)
            if move is None:
                break
            if timed:
                t0 = clock()
                obj = evaluator.evaluate_move(solution, move)
                eval_s += clock() - t0
            else:
                obj = evaluator.evaluate_move(solution, move)
            objective = (obj.distance, obj.vehicles, obj.tardiness)
            if codec:
                replacements, added = move.route_edits(solution)
                out.append((replacements, added, objective, move.attribute))
            else:
                child = move.apply(solution)  # routes must ship to the master
                out.append((child.routes, objective, move.attribute))
            if len(out) >= task.batch_size:
                yield flush(final=False)
                out = []
    finally:
        fast.detach()
    yield flush(final=True)


#: mapped per-task instance segments one worker keeps warm (beyond the
#: default instance, which is pinned for the process lifetime).
_WORKER_INSTANCE_LRU = 8


def _pool_worker_main(
    slot: int,
    generation: int,
    instance: Instance | SharedInstanceRef,
    task_q,
    result_q,
    heartbeat_interval: float,
    fault_plan: FaultPlan | None,
    ordinal_base: int,
    timed: bool = False,
) -> None:
    """Entry point of one worker process (spawn context)."""
    shm = None
    if isinstance(instance, SharedInstanceRef):
        # Zero-copy broadcast: attach to the master's segment instead of
        # unpickling the instance (and recomputing nothing — the arrays
        # were validated once, master-side).  The mapping must outlive
        # every use of the instance, so it is held for the process
        # lifetime; the master owns unlink.
        instance, shm = instance.attach()
    evaluator = Evaluator(instance)
    registry = default_registry()
    # Per-task instances (the multi-tenant serve path): segments attach
    # lazily on the first task that names them and stay mapped — with
    # their per-instance evaluator caches — in a small LRU.  Evicting
    # only closes this worker's mapping; the master owns unlink, and a
    # re-referenced evicted segment simply re-attaches.
    attached: dict[str, tuple[Instance, object, Evaluator]] = {}

    def resolve_instance(ref: SharedInstanceRef | None):
        if ref is None:
            return instance, evaluator
        entry = attached.get(ref.segment)
        if entry is None:
            inst, seg = ref.attach()
            entry = (inst, seg, Evaluator(inst))
            if len(attached) >= _WORKER_INSTANCE_LRU:
                oldest = next(iter(attached))
                _, old_seg, _ = attached.pop(oldest)
                old_seg.close()
            attached[ref.segment] = entry
        else:
            # Re-insertion keeps dict order = recency order.
            attached.pop(ref.segment)
            attached[ref.segment] = entry
        return entry[0], entry[2]
    # Spawn children inherit the master's environment, so the same
    # REPRO_TRACE_DIR / REPRO_OBS switch that enabled the master's
    # bundle enables worker-side event collection — no new plumbing
    # through the task messages.  Workers never open their own sink;
    # drained events ride back on final PoolBatch messages and the
    # master ingests them under this per-worker span.
    tracer = None
    if os.environ.get(ENV_TRACE_DIR) or os.environ.get(ENV_OBS, "").strip() not in (
        "",
        "0",
    ):
        tracer = EventTracer(span=f"worker-{slot}")
    stop_beating = threading.Event()
    master_pid = os.getppid()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            # Workers are direct children of the master: a changed
            # parent pid means the master was killed outright (SIGKILL
            # never runs its cleanup), and an orphan blocked forever on
            # task_q.get() would leak.  Die instead — there is no one
            # left to serve.
            if os.getppid() != master_pid:  # pragma: no cover - needs a dead master
                os._exit(0)
            try:
                result_q.put(PoolHeartbeat(slot, generation))
            except Exception:  # pragma: no cover - master gone
                return

    threading.Thread(target=beat, daemon=True).start()

    ordinal = ordinal_base
    # Routes of the last task this process completed, the base of
    # steady-state WireTaskDelta dispatches.  The master only sends a
    # delta when *it* saw this worker's final batch for the base task,
    # so a populated cache is guaranteed whenever one arrives.
    last_done: tuple[int, tuple] | None = None
    while True:
        try:
            msg = task_q.get()
        except (EOFError, OSError):  # pragma: no cover - master gone
            os._exit(0)
        if isinstance(msg, StopMessage):
            break
        task: PoolTask = msg
        codec = not isinstance(task.routes, tuple)
        if isinstance(task.routes, WireTaskDelta):
            delta = task.routes
            if last_done is None or last_done[0] != delta.base_task_id:
                # Master bookkeeping bug — die loudly; the pool retries
                # the task (with a full payload) on the replacement.
                raise WorkerPoolError(
                    f"delta task {task.task_id} against unknown base "
                    f"{delta.base_task_id}"
                )
            task = replace(task, routes=delta.apply(last_done[1]))
        elif isinstance(task.routes, WireRoutes):
            task = replace(task, routes=task.routes.decode())
        action = fault_plan.action(slot, ordinal) if fault_plan else None
        ordinal += 1
        kill_after: int | None = None
        if action is not None:
            kind, arg = action
            if kind == "kill":
                if arg is None:
                    os._exit(_FAULT_EXIT)
                kill_after = int(arg)
            elif kind == "delay":
                time.sleep(float(arg))
        task_instance, task_evaluator = resolve_instance(task.instance)
        batches_sent = 0
        for batch in execute_task(
            task_instance,
            task_evaluator,
            registry,
            task,
            slot,
            codec=codec,
            timed=timed,
        ):
            if batch.final and tracer is not None:
                # Stamp the submitter's span-propagation envelope so
                # this event joins its job's trace on the master side.
                trace_fields = {}
                if task.trace is not None:
                    trace_fields = {
                        "trace": task.trace[0],
                        "parent": task.trace[1],
                    }
                tracer.emit(
                    "worker_task",
                    worker=slot,
                    task_id=task.task_id,
                    neighbors=task.count,
                    **trace_fields,
                )
                batch = replace(batch, events=tuple(tracer.drain()))
            result_q.put(batch)
            batches_sent += 1
            if kill_after is not None and batches_sent >= kill_after:
                os._exit(_FAULT_EXIT)
        last_done = (task.task_id, task.routes)
    stop_beating.set()
    for _, seg, _ in attached.values():
        seg.close()
    if shm is not None:
        shm.close()


# ----------------------------------------------------------------------
# Adaptive task sizing
# ----------------------------------------------------------------------
class AdaptiveSizer:
    """Feedback controller for task count / batch size.

    The tension: fewer, larger tasks amortize per-task overhead
    (dispatch, queue hop, decode) but lengthen the straggler tail the
    synchronous master waits out — and starve the asynchronous c1–c4
    loop of partial results.  The sizer keeps EMAs of the worker-side
    per-neighbor work :math:`\\bar w` (from the ``(generate, evaluate)``
    phase timings riding final batches) and the per-task overhead
    :math:`o` (task latency minus work), and proposes the count that
    balances the two terms: total overhead across ``total/c`` tasks is
    ``(total/c) * o`` while the tail a task adds is ``c * w``, equal at
    :math:`c^* = \\sqrt{total \\cdot o / \\bar w}`.

    The batch size targets steady arrival: a batch should complete in
    about half the master's observed inter-poll wait, so partial
    results land every cycle instead of in one final burst.

    All state is master-side floats fed from observed timings — nothing
    here touches RNG streams, task seeds or neighbor order, so an
    adaptive run stays *correct*; it is only not *reproducible* across
    machines, which is why :attr:`PoolParams.adaptive_sizing` defaults
    off.
    """

    __slots__ = ("alpha", "min_count", "work_ema", "overhead_ema", "wait_ema", "observed")

    def __init__(self, min_count: int = 4, alpha: float = 0.25) -> None:
        self.alpha = alpha
        self.min_count = min_count
        self.work_ema: float | None = None  # seconds per neighbor
        self.overhead_ema: float | None = None  # seconds per task
        self.wait_ema: float | None = None  # master poll wait, seconds
        self.observed = 0

    def _ema(self, old: float | None, value: float) -> float:
        if old is None:
            return value
        return old + self.alpha * (value - old)

    def observe_task(
        self, count: int, latency: float, phase: tuple[float, float] | None
    ) -> None:
        """Fold one completed task's timings into the EMAs."""
        if count < 1 or latency < 0:
            return
        work = latency if phase is None else max(phase[0] + phase[1], 0.0)
        work = min(work, latency)
        self.work_ema = self._ema(self.work_ema, work / count)
        self.overhead_ema = self._ema(self.overhead_ema, max(latency - work, 0.0))
        self.observed += 1

    def observe_wait(self, seconds: float) -> None:
        """Fold one master-side blocking wait into the EMA."""
        if seconds >= 0:
            self.wait_ema = self._ema(self.wait_ema, seconds)

    @property
    def ready(self) -> bool:
        """Enough observations to trust the EMAs over the static split."""
        return self.observed >= 3 and self.work_ema is not None

    def suggest_count(self, total: int, n_slots: int) -> int:
        """Neighbors per task for a ``total``-neighbor fan-out."""
        base = max(1, -(-total // max(n_slots, 1)))  # ceil, the static split
        if not self.ready or not self.work_ema or self.overhead_ema is None:
            return base
        c_opt = (total * self.overhead_ema / self.work_ema) ** 0.5
        return max(self.min_count, min(int(round(c_opt)) or 1, base, total))

    def suggest_batch(self, count: int, default: int | None) -> int:
        """Neighbors per streamed batch within a ``count``-neighbor task."""
        if default is None:
            default = count
        default = min(default, count)
        if not self.ready or not self.work_ema or self.wait_ema is None:
            return default
        target = self.wait_ema / (2.0 * self.work_ema)
        return max(1, min(int(target) or 1, default))

    def summary(self) -> dict:
        """The controller state for :meth:`WorkerPool.report`."""
        return {
            "observed_tasks": self.observed,
            "work_per_neighbor_s": self.work_ema,
            "task_overhead_s": self.overhead_ema,
            "master_wait_s": self.wait_ema,
        }


# ----------------------------------------------------------------------
# Master-side bookkeeping
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BatchEvent:
    """One delivered batch: what the drivers consume from :meth:`poll`.

    ``neighbors`` holds only *fresh* triples — the prefix a retried
    task already delivered has been skipped by the pool.  ``final``
    marks task completion (the c1 signal of the asynchronous decision
    function); ``rng_state``/``cache_delta`` ride on final events only.
    """

    task_id: int
    iteration: int
    neighbors: tuple
    final: bool
    worker: int
    rng_state: dict | None = None
    cache_delta: tuple[int, int] | None = None
    #: opaque caller label riding from :meth:`WorkerPool.submit` — the
    #: solve service tags every task with its job id so one event
    #: stream multiplexes many independent jobs.
    tag: object | None = None


@dataclass(slots=True)
class TaskOutcome:
    """Everything a completed task produced, in generation order."""

    neighbors: tuple
    rng_state: dict | None
    cache_delta: tuple[int, int]


class _Slot:
    """One worker position: a process, its feed queue, its counters."""

    __slots__ = (
        "index",
        "process",
        "task_q",
        "result_q",
        "alive",
        "busy",
        "dispatched_at",
        "generation",
        "heard",
        "heard_at",
        "last_seen",
        "dispatched_count",
        "tasks_done",
        "batches",
        "crashes",
        "stragglers",
        "respawns",
        "done_task_id",
        "done_routes",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.task_q = None
        self.result_q = None
        self.alive = False
        self.busy: PoolTask | None = None
        self.dispatched_at = 0.0
        self.generation = 0
        self.heard = False
        self.heard_at = 0.0
        self.last_seen = 0.0
        self.dispatched_count = 0
        self.tasks_done = 0
        self.batches = 0
        self.crashes = 0
        self.stragglers = 0
        self.respawns = 0
        #: id + plain routes of the last task *this incarnation*
        #: completed — the base the master may delta-encode against.
        self.done_task_id: int | None = None
        self.done_routes: tuple | None = None


class _TaskState:
    """Master-side lifecycle of one submitted task."""

    __slots__ = (
        "task",
        "attempt",
        "delivered",
        "attempt_seen",
        "submitted_at",
        "ready_at",
        "tag",
        "cancelled",
    )

    def __init__(self, task: PoolTask, now: float, tag: object | None = None) -> None:
        self.task = task
        self.attempt = 0
        #: neighbors already handed to the driver (across attempts).
        self.delivered = 0
        #: neighbors seen so far within the current attempt.
        self.attempt_seen = 0
        self.submitted_at = now
        self.ready_at = now
        #: opaque caller label (job id in the solve service).
        self.tag = tag
        #: a cancelled in-flight task drains silently: its remaining
        #: batches are discarded instead of delivered, and a worker
        #: failure no longer retries it.
        self.cancelled = False


class WorkerPool:
    """A supervised, persistent pool of neighborhood-evaluation workers.

    Use as a context manager::

        with WorkerPool(instance, n_workers=4) as pool:
            tid = pool.submit(routes, count=50, seed=123, iteration=1)
            outcome = pool.gather([tid])[tid]

    or drive it event-by-event with :meth:`poll` (the asynchronous
    master).  All blocking calls are bounded — worker failure is
    handled by retry/respawn/degradation, never by waiting forever.
    """

    def __init__(
        self,
        instance: Instance,
        n_workers: int,
        *,
        params: PoolParams | None = None,
        fault_plan: FaultPlan | None = None,
        batch_size: int | None = None,
        obs=NULL_OBS,
    ) -> None:
        if n_workers < 1:
            raise WorkerPoolError("need at least one worker process")
        self.instance = instance
        self.obs = obs
        self.n_workers = n_workers
        self.params = params or PoolParams()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        #: default streaming granularity for :meth:`submit`.
        self.default_batch_size = batch_size
        self.degraded = False

        self._ctx = mp.get_context("spawn")
        self._slots = [_Slot(i) for i in range(n_workers)]
        self._next_task_id = 0
        self._pending: deque[int] = deque()  # task_ids awaiting dispatch
        self._tasks: dict[int, _TaskState] = {}
        self._respawns_used = 0
        self._closed = False

        # Global counters for the report.
        self._retries = 0
        self._crashes = 0
        self._stragglers = 0
        self._master_fallback_tasks = 0
        self._stale_batches = 0
        self._heartbeats = 0
        self._tasks_completed = 0
        self._cancelled_tasks = 0
        self._cancelled_completions = 0
        self._max_backlog = 0
        self._latencies: list[float] = []
        self._delta_tasks = 0
        self._full_tasks = 0
        self._wire_batches = 0
        self._wire_batch_bytes = 0
        self._instance_ref_tasks = 0

        # Master-local execution state (degradation / retry exhaustion):
        # one (instance, evaluator) context per instance ever run
        # locally, keyed by segment name (None: the pool's default).
        self._local_contexts: dict[str | None, tuple[Instance, Evaluator]] = {}
        self._local_shms: list = []
        self._local_registry: OperatorRegistry | None = None

        self.sizer = (
            AdaptiveSizer(min_count=self.params.min_task_count)
            if self.params.adaptive_sizing
            else None
        )
        #: workers time their generate/evaluate phases when the sizer
        #: needs the signal or the obs profiler will ingest it.
        self._timed = self.sizer is not None or bool(getattr(obs, "enabled", False))

        # Shared-memory instance broadcast: create the segment before
        # the first spawn so every worker (including respawns) attaches
        # instead of unpickling ~MBs of arrays.  If segment creation
        # fails (e.g. /dev/shm exhausted), fall back to pickling.
        self._shared: SharedInstance | None = None
        if self.params.shared_instance:
            try:
                self._shared = share_instance(instance)
            except OSError:  # pragma: no cover - shm exhausted
                self._shared = None

        try:
            for slot in self._slots:
                self._spawn(slot)
        except Exception:  # pragma: no cover - spawn failure
            self._destroy_shared()
            raise

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn(self, slot: _Slot) -> None:
        slot.task_q = self._ctx.Queue()
        slot.result_q = self._ctx.Queue()
        slot.generation += 1
        payload = self._shared.ref if self._shared is not None else self.instance
        slot.process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                slot.index,
                slot.generation,
                payload,
                slot.task_q,
                slot.result_q,
                self.params.heartbeat_interval,
                self.fault_plan,
                slot.dispatched_count,
                self._timed,
            ),
            daemon=True,
        )
        slot.process.start()
        slot.alive = True
        slot.busy = None
        slot.heard = False
        slot.heard_at = 0.0
        slot.last_seen = time.monotonic()
        # A fresh incarnation holds no routes cache — full payload first.
        slot.done_task_id = None
        slot.done_routes = None

    def close(self) -> None:
        """Stop every worker; bounded waits only, stragglers get killed.

        The shared-memory segment is destroyed *unconditionally*, on
        every exit path — including when workers had to be terminated
        or killed — so no run leaks a segment into ``/dev/shm``.

        After this returns the pool is inert but *inspectable*:
        :meth:`report` keeps returning the final counters (the solve
        service reads its post-drain accounting from exactly there),
        while :meth:`submit`, :meth:`poll` and :meth:`gather` raise a
        clear :class:`~repro.errors.WorkerPoolError` instead of
        queueing work onto dead processes — previously a submit+gather
        after shutdown would feed closed queues and spin forever.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for slot in self._slots:
                if slot.alive and slot.process is not None:
                    try:
                        slot.task_q.put(StopMessage(reason="pool closed"))
                    except Exception:  # pragma: no cover - queue already broken
                        pass
            for slot in self._slots:
                proc = slot.process
                if proc is None:
                    continue
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover - stubborn process
                        proc.kill()
                        proc.join(timeout=1.0)
                for q in (slot.task_q, slot.result_q):
                    if q is not None:
                        q.close()
                        q.cancel_join_thread()
                # The slot must read as dead from here on: a later poll
                # (already an error, but belt and braces) must never
                # dispatch onto the closed queues or "respawn" a worker
                # of a pool that no longer exists.
                slot.alive = False
                slot.busy = None
                slot.task_q = None
                slot.result_q = None
        finally:
            # Master-side mappings of per-task instance segments: close
            # before the owners unlink (harmless either way — POSIX
            # keeps an unlinked segment alive while mapped, but a clean
            # close keeps the resource tracker's books exact).
            for seg in self._local_shms:
                try:
                    seg.close()
                except Exception:  # pragma: no cover - already closed
                    pass
            self._local_shms = []
            self._local_contexts = {}
            self._destroy_shared()
        self._maybe_dump_report()

    #: the lifecycle verb the solve service uses; identical to
    #: :meth:`close` (kept as the primary name for context managers).
    shutdown = close

    def _destroy_shared(self) -> None:
        if self._shared is not None:
            self._shared.destroy()

    def _maybe_dump_report(self) -> None:
        """Persist the counter report when CI asks for it.

        With ``REPRO_POOL_REPORT_DIR`` set, every pool writes its final
        report there as JSON — the artifact CI uploads when a pool test
        fails, so hangs and crash loops are diagnosable post-mortem.
        """
        directory = os.environ.get("REPRO_POOL_REPORT_DIR")
        if not directory:
            return
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"pool-{os.getpid()}-{id(self):x}.json"
            )
            payload = dict(self.report(), written_at=utc_timestamp())
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, default=str)
        except OSError:  # pragma: no cover - report is best-effort
            pass

    # -- submission ----------------------------------------------------
    def submit(
        self,
        routes: tuple[tuple[int, ...], ...],
        count: int,
        *,
        seed: int | None = None,
        rng_state: dict | None = None,
        iteration: int = 0,
        batch_size: int | None = None,
        tag: object | None = None,
        trace: tuple[str, str] | None = None,
        instance_ref=None,
    ) -> int:
        """Queue one neighborhood chunk; returns its task id.

        ``tag`` is an opaque caller label echoed on every
        :class:`BatchEvent` of the task — the multiplexing key of the
        solve service (one tag per job) and the handle
        :meth:`cancel_tag` operates on.

        ``trace`` is an optional ``(trace_id, parent_span)`` pair
        stamped onto the worker's ``worker_task`` trace events for this
        task, so a submitter's logical operation (a serve job) spans
        the process boundary as one causally-ordered trace.  Pure
        observability — execution ignores it.

        ``instance_ref`` runs the task against a *different* instance
        than the pool's default: a
        :class:`~repro.parallel.shm.SharedInstanceRef` to a segment the
        caller keeps alive for the task's whole life (the serve layer's
        :class:`~repro.parallel.shm.SharedInstanceStore` holds it until
        the owning job is terminal).  ``routes`` must index into *that*
        instance's sites.
        """
        if self._closed:
            raise WorkerPoolError(
                "cannot submit to a shut-down pool: its workers are "
                "stopped and their queues closed"
            )
        if count < 1:
            raise WorkerPoolError("task count must be >= 1")
        if (seed is None) == (rng_state is None):
            raise WorkerPoolError("tasks need exactly one of seed= or rng_state=")
        if batch_size is None:
            if self.sizer is not None:
                batch_size = self.sizer.suggest_batch(count, self.default_batch_size)
            else:
                batch_size = self.default_batch_size or count
        task_id = self._next_task_id
        self._next_task_id += 1
        if instance_ref is not None:
            self._instance_ref_tasks += 1
        task = PoolTask(
            task_id=task_id,
            attempt=0,
            routes=routes,
            count=count,
            batch_size=batch_size,
            iteration=iteration,
            seed=seed,
            rng_state=rng_state,
            trace=trace,
            instance=instance_ref,
        )
        self._tasks[task_id] = _TaskState(task, time.monotonic(), tag=tag)
        self._pending.append(task_id)
        self._max_backlog = max(self._max_backlog, len(self._pending))
        return task_id

    def cancel_tag(self, tag: object) -> list[int]:
        """Cancel every live task carrying ``tag``; returns their ids.

        Graceful per-job drain, not a kill: tasks still waiting for
        dispatch are removed outright, while tasks already running on a
        worker are left to finish — killing the process would take the
        *other* jobs' cached state with it — but every one of their
        remaining batches is discarded instead of delivered, and a
        worker failure no longer retries them.  After this returns, no
        :class:`BatchEvent` with this tag will ever be emitted again.

        Counting is conserved across the completion race: every task
        resolves into exactly one of ``tasks_completed`` or
        ``cancelled_tasks``.  A task whose final batch lands while its
        cancellation is in flight (or already landed, undrained, before
        this call) counts once in ``cancelled_tasks`` — never in
        ``tasks_completed``, never twice — and its ran-anyway finish is
        tallied separately in ``cancelled_completions``.  Calling this
        again with the same tag is a no-op for already-cancelled tasks.
        """
        if self._closed:
            raise WorkerPoolError("cannot cancel tasks on a shut-down pool")
        dropped = []
        for tid in self._pending:
            state = self._tasks.get(tid)
            if state is not None and state.tag == tag and not state.cancelled:
                dropped.append(tid)
        for tid in dropped:
            del self._tasks[tid]
        if dropped:
            self._pending = deque(
                tid for tid in self._pending if tid in self._tasks
            )
        draining = [
            tid
            for tid, state in self._tasks.items()
            if state.tag == tag and not state.cancelled
        ]
        for tid in draining:
            self._tasks[tid].cancelled = True
        self._cancelled_tasks += len(dropped) + len(draining)
        return dropped + draining

    def backlog(self) -> int:
        """Tasks accepted but not yet completed (pending + in flight).

        The solve service throttles its dispatch on this number so one
        greedy job cannot bury the pool's internal queue.
        """
        return len(self._tasks)

    def plan_counts(self, total: int) -> list[int]:
        """Split a ``total``-neighbor fan-out into per-task counts.

        Without adaptive sizing this is the static even split across
        alive workers that the drivers always used; with it, the
        :class:`AdaptiveSizer`'s suggested count takes over once it has
        seen enough completed tasks.
        """
        if total < 1:
            return []
        n_slots = max(self._alive_count(), 1)
        if self.sizer is not None:
            per = self.sizer.suggest_count(total, n_slots)
        else:
            per = max(1, -(-total // n_slots))
        counts = [per] * (total // per)
        if total % per:
            counts.append(total % per)
        return counts

    # -- event loop ----------------------------------------------------
    def poll(self, timeout: float | None = None) -> list[BatchEvent]:
        """Advance the pool and return newly delivered batches.

        Dispatches pending tasks, drains the result queue (blocking up
        to ``timeout`` for the first message), and polices liveness —
        crashed or hung workers are respawned and their tasks retried.
        Returns possibly-empty; never blocks beyond ``timeout`` plus a
        bounded policing pass.
        """
        if self._closed:
            raise WorkerPoolError(
                "cannot poll a shut-down pool: no workers are left to "
                "produce results (submit/gather would hang forever)"
            )
        if timeout is None:
            timeout = self.params.poll_interval
        events: list[BatchEvent] = []
        self._dispatch(events)
        self._drain(timeout, events)
        self._police(events)
        self._dispatch(events)
        return events

    def gather(self, task_ids) -> dict[int, TaskOutcome]:
        """Block (with supervision) until every listed task completes."""
        want = set(task_ids)
        buffers: dict[int, list] = {tid: [] for tid in want}
        done: dict[int, TaskOutcome] = {}
        while want:
            for event in self.poll():
                if event.task_id not in want:
                    continue
                buffers[event.task_id].extend(event.neighbors)
                if event.final:
                    done[event.task_id] = TaskOutcome(
                        neighbors=tuple(buffers.pop(event.task_id)),
                        rng_state=event.rng_state,
                        cache_delta=event.cache_delta or (0, 0),
                    )
                    want.discard(event.task_id)
        return done

    # -- internals -----------------------------------------------------
    def _idle_slots(self) -> list[_Slot]:
        return [s for s in self._slots if s.alive and s.busy is None]

    def _alive_count(self) -> int:
        return sum(1 for s in self._slots if s.alive)

    def _dispatch(self, events: list[BatchEvent]) -> None:
        now = time.monotonic()
        if self.degraded:
            while self._pending:
                tid = self._pending.popleft()
                self._run_locally(tid, events)
            return
        idle = self._idle_slots()
        deferred: list[int] = []
        while self._pending and idle:
            tid = self._pending.popleft()
            state = self._tasks[tid]
            if state.ready_at > now:  # still in its retry backoff window
                deferred.append(tid)
                continue
            slot = idle.pop(0)
            task = replace(
                state.task,
                attempt=state.attempt,
                routes=self._encode_routes(state.task.routes, slot),
            )
            slot.busy = task
            slot.dispatched_at = now
            slot.dispatched_count += 1
            try:
                slot.task_q.put(task)
            except Exception:  # pragma: no cover - feed queue broken
                self._fail_slot(slot, "crash", events)
        for tid in reversed(deferred):
            self._pending.appendleft(tid)

    def _encode_routes(self, routes: tuple, slot: _Slot):
        """Pick the wire form of one task's routes for one target slot.

        ``_TaskState`` always holds the plain tuple; encoding happens
        here, per dispatch, because the best form depends on the
        receiver: a worker whose last completed task's routes the
        master knows gets a :class:`WireTaskDelta` (tens of bytes), any
        other gets the full :class:`WireRoutes`.  Retries re-enter this
        path and re-encode for whichever slot they land on.
        """
        if not self.params.codec:
            return routes
        if slot.done_task_id is not None and slot.done_routes is not None:
            delta = diff_routes(slot.done_routes, routes)
            if delta is not None:
                self._delta_tasks += 1
                return replace(delta, base_task_id=slot.done_task_id)
        self._full_tasks += 1
        return WireRoutes.encode(routes)

    def _handle_message(self, msg, events: list[BatchEvent]) -> None:
        if isinstance(msg, PoolHeartbeat):
            self._heartbeats += 1
            if 0 <= msg.worker < len(self._slots):
                slot = self._slots[msg.worker]
                # A beacon a dead predecessor left in the queue must
                # not vouch for its respawned replacement.
                if msg.generation == slot.generation:
                    self._mark_heard(slot)
            return
        self._accept_batch(msg, events)

    @staticmethod
    def _mark_heard(slot: _Slot) -> None:
        now = time.monotonic()
        if not slot.heard:
            slot.heard = True
            # First sign of life of this incarnation: its task-deadline
            # clock starts here, not at dispatch — boot time (fresh
            # interpreter + imports, arbitrarily long under load) must
            # not count against the task.
            slot.heard_at = now
        slot.last_seen = now

    def _drain_slot(self, slot: _Slot, events: list[BatchEvent]) -> int:
        """Empty one worker's result queue without blocking."""
        if slot.result_q is None:
            return 0
        drained = 0
        while True:
            try:
                msg = slot.result_q.get_nowait()
            except (queue.Empty, OSError):
                break
            drained += 1
            self._handle_message(msg, events)
        return drained

    def _drain(self, timeout: float, events: list[BatchEvent]) -> None:
        """Drain every worker's result queue, waiting up to ``timeout``.

        The queues are polled round-robin (they cannot be waited on
        jointly); once any queue yields a message the pass finishes the
        sweep and returns, otherwise it sleeps in ``poll_interval``
        steps until the deadline.
        """
        started = time.monotonic()
        deadline = started + timeout
        try:
            while True:
                drained = sum(self._drain_slot(slot, events) for slot in self._slots)
                if drained:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                time.sleep(min(self.params.poll_interval, remaining))
        finally:
            if self.sizer is not None:
                # The blocked portion of this pass is the master-wait
                # signal the batch-size suggestion feeds on.
                self.sizer.observe_wait(time.monotonic() - started)

    def _accept_batch(self, msg: PoolBatch, events: list[BatchEvent]) -> None:
        slot = self._slots[msg.worker] if 0 <= msg.worker < len(self._slots) else None
        state = self._tasks.get(msg.task_id)
        if state is None or msg.attempt != state.attempt:
            # Stale output of a superseded attempt — it must not count
            # as liveness either: only current-attempt batches (below)
            # can come from the slot's current incarnation.
            self._stale_batches += 1
            return
        if slot is not None:
            self._mark_heard(slot)
            slot.batches += 1
        # A cancelled task drains silently: the worker is left to finish
        # (its process carries other jobs' warm caches), but nothing it
        # produces is delivered — the final batch only runs the
        # completion bookkeeping that frees the slot.
        if state.cancelled:
            if msg.final:
                self._complete_task(msg, slot)
            return
        # Worker trace events ride on current-attempt batches only (a
        # retried attempt re-emits them), so ingesting here — after the
        # stale check — keeps the master's trace free of duplicates.
        if msg.events and self.obs.tracer.enabled:
            self.obs.tracer.ingest(msg.events)
        # Codec payloads decode here — after the stale check, before the
        # exactly-once offset logic, so everything downstream (prefix
        # skip, drivers) sees the identical plain triples either way.
        # The parent routes are the ones the master submitted; the
        # worker evaluated edits against the same tuple by construction.
        neighbors = msg.neighbors
        if isinstance(neighbors, WireBatch):
            self._wire_batches += 1
            self._wire_batch_bytes += len(neighbors.blob)
            neighbors = neighbors.decode(state.task.routes)
        # Exactly-once across retries: skip the already-delivered prefix
        # (retries regenerate the identical neighbor sequence, so an
        # offset is a correct resume point).
        n = len(neighbors)
        skip = min(max(state.delivered - state.attempt_seen, 0), n)
        fresh = neighbors[skip:]
        state.attempt_seen += n
        state.delivered = max(state.delivered, state.attempt_seen)
        if msg.final:
            self._complete_task(msg, slot)
        if fresh or msg.final:
            events.append(
                BatchEvent(
                    task_id=msg.task_id,
                    iteration=state.task.iteration,
                    neighbors=fresh,
                    final=msg.final,
                    worker=msg.worker,
                    rng_state=msg.rng_state,
                    cache_delta=msg.cache_delta,
                    tag=state.tag,
                )
            )

    def _complete_task(self, msg: PoolBatch, slot: _Slot | None) -> None:
        state = self._tasks.pop(msg.task_id)
        if state.cancelled:
            # The completion raced the cancel and the task ran to the
            # end anyway: it stays counted (once) in cancelled_tasks;
            # this separate tally just makes the race window visible.
            self._cancelled_completions += 1
        if not state.cancelled:
            self._tasks_completed += 1
            latency = time.monotonic() - state.submitted_at
            self._latencies.append(latency)
            if self.sizer is not None:
                self.sizer.observe_task(state.task.count, latency, msg.phase)
            # Worker-side phase timings fold into the master's profile
            # under the same phase names the sequential driver uses, so
            # one table shows where worker time went regardless of
            # driver.
            if msg.phase is not None and getattr(self.obs, "enabled", False):
                self.obs.profiler.add("generate", msg.phase[0])
                self.obs.profiler.add("evaluate", msg.phase[1])
        if slot is not None:
            slot.tasks_done += 1
            # This incarnation now caches the task's routes — the base
            # for a future WireTaskDelta dispatch to the same slot.
            slot.done_task_id = msg.task_id
            slot.done_routes = state.task.routes
            if slot.busy is not None and slot.busy.task_id == msg.task_id:
                slot.busy = None

    def _police(self, events: list[BatchEvent]) -> None:
        now = time.monotonic()
        p = self.params
        for slot in self._slots:
            if not slot.alive:
                continue
            dead = not slot.process.is_alive()
            hung = False
            if not dead and slot.busy is not None:
                # The deadline clock must not count worker boot time: a
                # fresh incarnation spends interpreter + import seconds
                # before touching the task, arbitrarily stretched by
                # machine load.  Once heard, the clock runs from the
                # later of dispatch and first-heard; an *unheard* worker
                # gets ``boot_grace`` on top of the deadline, so a
                # wedged boot is still caught — just not mistaken for a
                # straggling task.
                if p.task_deadline is None:
                    over_deadline = False
                elif slot.heard:
                    started = max(slot.dispatched_at, slot.heard_at)
                    over_deadline = now - started > p.task_deadline
                else:
                    over_deadline = (
                        now - slot.dispatched_at > p.task_deadline + p.boot_grace
                    )
                # Silence only counts once this incarnation has been
                # heard from: a freshly (re)spawned worker legitimately
                # spends boot time (interpreter + imports) before its
                # first heartbeat, and a worker wedged *during* boot is
                # still caught by the task deadline or is_alive().
                silent = slot.heard and now - slot.last_seen > p.heartbeat_timeout
                hung = over_deadline or silent
            if dead or hung:
                self._fail_slot(slot, "crash" if dead else "straggler", events)

    def _fail_slot(self, slot: _Slot, reason: str, events: list[BatchEvent]) -> None:
        proc = slot.process
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stubborn process
                proc.kill()
                proc.join(timeout=1.0)
        # Salvage whatever the worker managed to send before dying —
        # anything still unread after this is regenerated by the retry.
        self._drain_slot(slot, events)
        for q in (slot.task_q, slot.result_q):
            # Abandon both queues: the task queue may hold an
            # undelivered task copy that must not reach the replacement
            # worker, and the result queue's write end may be corrupted
            # by the death.
            if q is not None:
                q.close()
                q.cancel_join_thread()
        slot.task_q = None
        slot.result_q = None
        slot.alive = False
        if reason == "crash":
            slot.crashes += 1
            self._crashes += 1
        else:
            slot.stragglers += 1
            self._stragglers += 1

        held = slot.busy
        slot.busy = None
        if held is not None:
            self._retry_task(held.task_id, events)

        if self._respawns_used < self.params.respawn_cap:
            self._respawns_used += 1
            slot.respawns += 1
            self._spawn(slot)
        elif self._alive_count() == 0 and not self.degraded:
            self.degraded = True
            # The pool has collapsed: every queued task now runs on the
            # master so the search still completes.
            while self._pending:
                self._run_locally(self._pending.popleft(), events)

    def _retry_task(self, task_id: int, events: list[BatchEvent]) -> None:
        state = self._tasks.get(task_id)
        if state is None:  # completed just before the failure was seen
            return
        if state.cancelled:
            # The worker holding this cancelled task died before its
            # drain finished; nobody wants the output, so drop it.
            del self._tasks[task_id]
            return
        state.attempt += 1
        state.attempt_seen = 0
        if state.attempt > self.params.max_retries:
            self._master_fallback_tasks += 1
            self._run_locally(task_id, events)
            return
        self._retries += 1
        backoff = min(
            self.params.backoff_base * (2.0 ** (state.attempt - 1)),
            self.params.backoff_cap,
        )
        state.ready_at = time.monotonic() + backoff
        self._pending.append(task_id)
        self._max_backlog = max(self._max_backlog, len(self._pending))

    def _local_context(self, ref) -> tuple[Instance, Evaluator]:
        """The master-side (instance, evaluator) a task runs on locally.

        Tasks carrying a :class:`SharedInstanceRef` attach the segment
        in the master process too (the creator still owns unlink); the
        mapping is held until :meth:`close` so evaluator caches stay
        warm across fallbacks, exactly like a worker's.
        """
        key = None if ref is None else ref.segment
        context = self._local_contexts.get(key)
        if context is None:
            if ref is None:
                local_instance = self.instance
            else:
                local_instance, seg = ref.attach()
                self._local_shms.append(seg)
            context = (local_instance, Evaluator(local_instance))
            self._local_contexts[key] = context
        return context

    def _run_locally(self, task_id: int, events: list[BatchEvent]) -> None:
        """Execute one task on the master (degradation / retry-exhaustion)."""
        state = self._tasks.get(task_id)
        if state is None:
            return
        if self._local_registry is None:
            self._local_registry = default_registry()
        local_instance, local_evaluator = self._local_context(state.task.instance)
        task = replace(state.task, attempt=state.attempt)
        for batch in execute_task(
            local_instance, local_evaluator, self._local_registry, task, -1
        ):
            self._accept_batch(batch, events)

    # -- observability -------------------------------------------------
    def report(self) -> dict:
        """The structured counter report (``TSMOResult.extra["pool"]``)."""
        latencies = sorted(self._latencies)

        def quantile(q: float) -> float | None:
            if not latencies:
                return None
            return latencies[min(int(q * len(latencies)), len(latencies) - 1)]

        plan = self.fault_plan
        return {
            "n_workers": self.n_workers,
            "degraded": self.degraded,
            "transport": {
                "codec": self.params.codec,
                "shared_instance": self._shared is not None,
                "delta_tasks": self._delta_tasks,
                "full_tasks": self._full_tasks,
                "wire_batches": self._wire_batches,
                "wire_batch_bytes": self._wire_batch_bytes,
                "instance_ref_tasks": self._instance_ref_tasks,
            },
            "adaptive": self.sizer.summary() if self.sizer is not None else None,
            "crashes": self._crashes,
            "stragglers": self._stragglers,
            "respawns": self._respawns_used,
            "retries": self._retries,
            "master_fallback_tasks": self._master_fallback_tasks,
            "stale_batches": self._stale_batches,
            "heartbeats": self._heartbeats,
            "tasks_completed": self._tasks_completed,
            "cancelled_tasks": self._cancelled_tasks,
            "cancelled_completions": self._cancelled_completions,
            "max_backlog": self._max_backlog,
            "latency": {
                "p50": quantile(0.50),
                "p90": quantile(0.90),
                "max": latencies[-1] if latencies else None,
            },
            "per_worker": [
                {
                    "slot": s.index,
                    "tasks": s.tasks_done,
                    "batches": s.batches,
                    "crashes": s.crashes,
                    "stragglers": s.stragglers,
                    "respawns": s.respawns,
                }
                for s in self._slots
            ],
            "faults_planned": {
                "kills": len(plan.kills) if plan else 0,
                "delays": len(plan.delays) if plan else 0,
            },
        }
