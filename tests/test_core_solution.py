"""Tests for the permutation-coded Solution (paper §II.A invariants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import evaluate, evaluate_permutation
from repro.core.objectives import ObjectiveVector
from repro.core.solution import Solution
from repro.errors import SolutionError
from repro.vrptw.generator import generate_instance


@pytest.fixture(scope="module")
def inst():
    return generate_instance("R1", 10, seed=42)


def paper_example_instance():
    """N=4 customers, R=5 vehicles — the paper's worked example."""
    return generate_instance(
        "R1", 4, seed=0
    ).__class__(  # rebuild with an exact fleet of 5
        name="paper",
        x=[0.0, 1.0, 2.0, 3.0, 4.0],
        y=[0.0] * 5,
        demand=[0.0, 1.0, 1.0, 1.0, 1.0],
        ready_time=[0.0] * 5,
        due_date=[100.0] * 5,
        service_time=[0.0, 1.0, 1.0, 1.0, 1.0],
        capacity=10.0,
        n_vehicles=5,
    )


class TestPaperExample:
    """P = (0, 4, 2, 0, 3, 0, 1, 0, 0, 0) from §II.A."""

    def test_parse(self):
        inst = paper_example_instance()
        sol = Solution.from_permutation(inst, [0, 4, 2, 0, 3, 0, 1, 0, 0, 0])
        assert sol.routes == ((4, 2), (3,), (1,))
        assert sol.n_routes == 3
        assert sol.vehicle_slack == 2

    def test_roundtrip(self):
        inst = paper_example_instance()
        perm = [0, 4, 2, 0, 3, 0, 1, 0, 0, 0]
        sol = Solution.from_permutation(inst, perm)
        assert sol.permutation.tolist() == perm

    def test_length_formula(self):
        inst = paper_example_instance()
        sol = Solution.from_permutation(inst, [0, 4, 2, 0, 3, 0, 1, 0, 0, 0])
        assert len(sol.permutation) == inst.permutation_length == 4 + 5 + 1

    def test_f2_counts_zero_to_customer_transitions(self):
        inst = paper_example_instance()
        sol = Solution.from_permutation(inst, [0, 4, 2, 0, 3, 0, 1, 0, 0, 0])
        assert sol.objectives.vehicles == 3


class TestValidation:
    def test_wrong_length(self, inst):
        with pytest.raises(SolutionError, match="length"):
            Solution.from_permutation(inst, [0, 1, 0])

    def test_must_start_at_depot(self, inst):
        perm = np.zeros(inst.permutation_length, dtype=int)
        perm[0] = 1
        with pytest.raises(SolutionError, match="start at the depot"):
            Solution.from_permutation(inst, perm)

    def test_zero_count_enforced(self, inst):
        # All customers, then too few zeros.
        perm = [0] + list(range(1, 11)) + [1] * (inst.permutation_length - 12)
        with pytest.raises(SolutionError):
            Solution.from_permutation(inst, [0] * inst.permutation_length)

    def test_duplicate_customer_rejected(self, inst):
        routes = [[1, 2, 3], [3, 4, 5], [6, 7, 8, 9, 10]]
        with pytest.raises(SolutionError, match="exactly once"):
            Solution.from_routes(inst, routes)

    def test_missing_customer_rejected(self, inst):
        routes = [[1, 2, 3], [4, 5, 6]]
        with pytest.raises(SolutionError, match="exactly once"):
            Solution.from_routes(inst, routes)

    def test_out_of_range_customer(self, inst):
        routes = [[1, 2, 3, 4, 5, 6, 7, 8, 9, 11]]
        with pytest.raises(SolutionError, match="range"):
            Solution.from_routes(inst, routes)

    def test_too_many_routes(self, inst):
        routes = [[c] for c in range(1, 11)]  # 10 routes > R
        if inst.n_vehicles < 10:
            with pytest.raises(SolutionError, match="exceed the fleet"):
                Solution.from_routes(inst, routes)

    def test_empty_routes_dropped(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [], [6, 7, 8, 9, 10]])
        assert sol.n_routes == 2


class TestViews:
    def test_locate(self, inst):
        sol = Solution.from_routes(inst, [[3, 1, 4], [2, 5, 6, 7, 8, 9, 10]])
        assert sol.locate(1) == (0, 1)
        assert sol.locate(10) == (1, 6)

    def test_locate_missing(self, inst):
        sol = Solution.from_routes(inst, [[3, 1, 4], [2, 5, 6, 7, 8, 9, 10]])
        with pytest.raises(SolutionError, match="not present"):
            sol.locate(99)

    def test_equality_and_hash(self, inst):
        a = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        b = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        c = Solution.from_routes(inst, [[5, 2, 3, 4, 1], [6, 7, 8, 9, 10]])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_objectives_cached_and_correct(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        assert sol.objectives is sol.objectives  # cached object
        oracle = evaluate(inst, sol)
        assert sol.objectives.distance == pytest.approx(oracle.distance)

    def test_adopt_objectives_skips_recomputation(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        truth = sol.objectives
        fresh = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        fresh.adopt_objectives(truth)
        assert fresh.objectives is truth  # installed, not recomputed

    def test_adopt_objectives_conflict_rejected(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        truth = sol.objectives
        wrong = ObjectiveVector(truth.distance + 1.0, truth.vehicles, truth.tardiness)
        with pytest.raises(SolutionError, match="conflicts"):
            sol.adopt_objectives(wrong)
        # Adopting the already-cached value is a no-op, not an error.
        sol.adopt_objectives(truth)

    def test_permutation_oracle_agreement(self, inst):
        sol = Solution.from_routes(inst, [[2, 4], [1, 3, 5, 6], [7, 8, 9, 10]])
        fast = sol.objectives
        literal = evaluate_permutation(inst, sol.permutation)
        assert fast.distance == pytest.approx(literal.distance)
        assert fast.vehicles == literal.vehicles
        assert fast.tardiness == pytest.approx(literal.tardiness)


class TestDerive:
    def test_replace_route(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        sol.objectives  # populate stats cache
        child = sol.derive({0: (5, 4, 3, 2, 1)})
        assert child.routes == ((5, 4, 3, 2, 1), (6, 7, 8, 9, 10))
        # Untouched route keeps its cached stats object.
        assert child._stats[1] is sol._stats[1]
        assert child._stats[0] is None

    def test_delete_route(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        child = sol.derive({0: ()}, added=[(1, 2, 3, 4, 5)])
        assert child.n_routes == 2
        assert child.routes[0] == (6, 7, 8, 9, 10)

    def test_derive_fleet_limit(self, inst):
        routes = [[c] for c in range(1, inst.n_vehicles + 1)]
        rest = list(range(inst.n_vehicles + 1, 11))
        routes[-1].extend(rest)
        sol = Solution.from_routes(inst, routes)
        assert sol.vehicle_slack == 0
        with pytest.raises(SolutionError, match="derive"):
            sol.derive({}, added=[(99,)])

    def test_derived_objectives_match_fresh(self, inst):
        sol = Solution.from_routes(inst, [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]])
        sol.objectives
        child = sol.derive({0: (1, 2, 3, 4), 1: (5, 6, 7, 8, 9, 10)})
        fresh = Solution.from_routes(inst, [(1, 2, 3, 4), (5, 6, 7, 8, 9, 10)])
        assert child.objectives == fresh.objectives


@st.composite
def random_partition(draw):
    """A random partition of customers 1..n into <= r ordered routes."""
    n = draw(st.integers(min_value=1, max_value=12))
    order = draw(st.permutations(list(range(1, n + 1))))
    n_routes = draw(st.integers(min_value=1, max_value=n))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=max(n - 1, 1)),
                max_size=n_routes - 1,
                unique=True,
            )
        )
    )
    routes, prev = [], 0
    for cut in cuts + [n]:
        if cut > prev:
            routes.append(tuple(order[prev:cut]))
            prev = cut
    return n, routes


class TestRepresentationProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=random_partition(), seed=st.integers(0, 1000))
    def test_roundtrip_property(self, data, seed):
        """routes -> permutation -> routes is the identity, and the
        permutation always satisfies the §II.A structural invariants."""
        n, routes = data
        inst = generate_instance("R2", n, seed=seed)
        if len(routes) > inst.n_vehicles:
            return  # partition does not fit this fleet; skip silently
        sol = Solution.from_routes(inst, routes)
        perm = sol.permutation
        assert perm[0] == 0
        assert len(perm) == n + inst.n_vehicles + 1
        assert int(np.count_nonzero(perm == 0)) == inst.n_vehicles + 1
        assert sorted(perm[perm > 0].tolist()) == list(range(1, n + 1))
        back = Solution.from_permutation(inst, perm)
        assert back.routes == sol.routes

    @settings(max_examples=40, deadline=None)
    @given(data=random_partition(), seed=st.integers(0, 1000))
    def test_incremental_vs_literal_evaluation(self, data, seed):
        """Cached route-stats evaluation equals the paper-literal
        permutation evaluation for arbitrary solutions."""
        n, routes = data
        inst = generate_instance("C1", n, seed=seed)
        if len(routes) > inst.n_vehicles:
            return
        sol = Solution.from_routes(inst, routes)
        fast = sol.objectives.as_array()
        literal = evaluate_permutation(inst, sol.permutation).as_array()
        assert np.allclose(fast, literal)
