"""Subprocess driver for the scheduler SIGKILL-and-recover test.

Run as ``python tests/_serve_crash_driver.py PHASE --checkpoint-dir D``:

* ``phase1`` starts a supervised scheduler, submits a burst of
  checkpointed lockstep jobs, touches ``--ready-file`` once snapshots
  exist on disk, and then runs until the parent test SIGKILLs it —
  there is no clean exit path on purpose.
* ``phase2`` starts a fresh scheduler over the same directory, lets
  ledger recovery re-admit the orphaned jobs, drains them, and prints
  one JSON object (fronts, counters, the ledger audit) on stdout for
  the parent to compare against the sequential oracle.

Both phases must build *identical* jobs; the constants here are
mirrored by ``tests/test_crash_resume.py``.
"""

import argparse
import asyncio
import json
import sys

from pathlib import Path

from repro.parallel.pool import PoolParams
from repro.serve import JobSpec, SolveScheduler
from repro.serve.ledger import LEDGER_FILENAME, JobLedger
from repro.tabu.params import TSMOParams
from repro.vrptw.generator import generate_instance

FAST = PoolParams(
    heartbeat_interval=0.05,
    heartbeat_timeout=10.0,
    task_deadline=10.0,
    backoff_base=0.01,
    poll_interval=0.02,
)

PARAMS = TSMOParams(max_evaluations=240, neighborhood_size=16)
N_JOBS = 4
SEED_BASE = 90
CHECKPOINT_EVERY = 32


def make_instance():
    return generate_instance("R1", 20, seed=55)


def make_specs(resume: bool = False) -> list[JobSpec]:
    return [
        JobSpec(
            job_id=f"kr-{i}",
            seed=SEED_BASE + i,
            params=PARAMS,
            checkpoint_every=CHECKPOINT_EVERY,
            resume=resume,
        )
        for i in range(N_JOBS)
    ]


async def phase1(checkpoint_dir: Path, ready_file: Path) -> None:
    scheduler = SolveScheduler(
        make_instance(),
        n_workers=1,
        pool_params=FAST,
        checkpoint_dir=checkpoint_dir,
    )
    scheduler.start()
    jobs = [scheduler.submit(spec) for spec in make_specs()]
    signalled = False
    while True:
        await asyncio.sleep(0.02)
        if not signalled and any(checkpoint_dir.glob("serve_kr-*.ckpt")):
            # Real progress is durably on disk: tell the parent it may
            # SIGKILL us whenever it likes.
            ready_file.write_text("ready")
            signalled = True
        if all(job.done() for job in jobs):  # pragma: no cover - parent
            # kills us long before the burst drains; never exit cleanly.
            await asyncio.sleep(3600)


async def phase2(checkpoint_dir: Path) -> dict:
    scheduler = SolveScheduler(
        make_instance(),
        n_workers=1,
        pool_params=FAST,
        checkpoint_dir=checkpoint_dir,
    )
    async with scheduler:
        jobs = list(scheduler._jobs.values())  # ledger-recovered handles
        results = await asyncio.gather(*(job.wait() for job in jobs))
        report = scheduler.report()
    audit = JobLedger(checkpoint_dir / LEDGER_FILENAME).audit()
    return {
        "recovered": report["recovered_jobs"],
        "completed": report["completed"],
        "audit": audit,
        "fronts": {
            job.job_id: result.front().tolist()
            for job, result in zip(jobs, results)
        },
        "evaluations": {
            job.job_id: result.evaluations
            for job, result in zip(jobs, results)
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("phase", choices=("phase1", "phase2"))
    parser.add_argument("--checkpoint-dir", required=True)
    parser.add_argument("--ready-file", default=None)
    args = parser.parse_args()
    checkpoint_dir = Path(args.checkpoint_dir)
    if args.phase == "phase1":
        asyncio.run(phase1(checkpoint_dir, Path(args.ready_file)))
        return 1  # pragma: no cover - phase1 only ends by SIGKILL
    payload = asyncio.run(phase2(checkpoint_dir))
    print(json.dumps(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
