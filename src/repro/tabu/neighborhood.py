"""Neighborhood sampling (paper §III.B, "Neighborhood Generation").

"The Neighborhood Generation draws a number of moves, specified in the
neighborhood size parameter, from the five operators described in
II.B.  For each move to create one of the operators is chosen at
random, with equal probabilities for each."

The same function runs on the sequential searcher, on the simulated
master, and on simulated workers — it is the unit of work the paper
parallelizes.  Each produced :class:`Neighbor` carries the move (for
the tabu attribute), the neighbor solution and its objectives; every
neighbor costs one unit of the evaluation budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import Evaluator
from repro.core.objectives import ObjectiveVector
from repro.core.operators.base import Move
from repro.core.operators.registry import OperatorRegistry
from repro.core.solution import Solution

__all__ = ["Neighbor", "sample_neighborhood"]


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One evaluated neighbor of a current solution."""

    move: Move
    solution: Solution
    objectives: ObjectiveVector
    #: iteration at which the neighbor was generated (used by the
    #: asynchronous variant, where stragglers' neighbors join later
    #: selections, and by the Figure-1 trajectory trace).
    iteration: int = 0


def sample_neighborhood(
    solution: Solution,
    size: int,
    registry: OperatorRegistry,
    rng: np.random.Generator,
    evaluator: Evaluator,
    *,
    iteration: int = 0,
) -> list[Neighbor]:
    """Generate and evaluate up to ``size`` neighbors of ``solution``.

    The list can be shorter than ``size`` only when the registry's
    retry cap is exhausted (a pathologically locked solution); callers
    treat a short list exactly like a full one.
    """
    neighbors: list[Neighbor] = []
    for _ in range(size):
        move = registry.draw_move(solution, rng)
        if move is None:
            break
        child = move.apply(solution)
        objectives = evaluator.evaluate(child)
        neighbors.append(
            Neighbor(move=move, solution=child, objectives=objectives, iteration=iteration)
        )
    return neighbors
