"""Ablation: soft vs. hard time windows (§II's formulation choice).

The paper opts for soft windows because "allowing solutions with
constraint violations in the search trajectory hands more freedom to
the algorithm".  This bench quantifies that freedom at equal budget:
the sequential TSMO in both modes, reporting best feasible
distance/vehicles, mutual coverage of the feasible fronts, and how
much of the soft trajectory actually ventured outside feasibility.
"""

import numpy as np
from conftest import emit

from repro.mo.coverage import set_coverage
from repro.tabu.params import TSMOParams
from repro.tabu.search import run_sequential_tsmo
from repro.tabu.trace import TrajectoryRecorder
from repro.vrptw.generator import generate_instance

SEEDS = (1, 2, 3)


def sweep(bench_config):
    n = max(20, round(60 * bench_config.city_fraction / 0.15))
    instance = generate_instance("R1", n, seed=37)

    def params(hard):
        return TSMOParams(
            max_evaluations=bench_config.max_evaluations,
            neighborhood_size=bench_config.neighborhood_size,
            restart_after=bench_config.restart_after,
            hard_time_windows=hard,
        )

    rows = {}
    fronts = {"soft": [], "hard": []}
    infeasible_time = []
    for label, hard in (("soft", False), ("hard", True)):
        runs = []
        for seed in SEEDS:
            trace = TrajectoryRecorder() if label == "soft" else None
            result = run_sequential_tsmo(instance, params(hard), seed=seed, trace=trace)
            runs.append(result)
            fronts[label].append(result.feasible_front())
            if trace is not None:
                tardy = trace.selections_array()[:, 4] > 1e-9
                infeasible_time.append(float(tardy.mean()))
        dist = np.mean([r.best_feasible()[0] for r in runs if r.best_feasible()])
        veh = np.mean([r.best_feasible()[1] for r in runs if r.best_feasible()])
        rows[label] = (dist, veh)
    cov_soft = np.mean(
        [set_coverage(s, h) for s in fronts["soft"] for h in fronts["hard"]]
    )
    cov_hard = np.mean(
        [set_coverage(h, s) for s in fronts["soft"] for h in fronts["hard"]]
    )
    return instance.name, rows, (cov_soft, cov_hard), float(np.mean(infeasible_time))


def test_soft_vs_hard_windows(benchmark, bench_config, output_dir):
    name, rows, (cov_soft, cov_hard), infeasible_fraction = benchmark.pedantic(
        sweep, args=(bench_config,), rounds=1, iterations=1
    )
    lines = [
        f"Soft vs hard time windows on {name} (sequential TSMO, "
        f"mean of {len(SEEDS)} runs)",
        f"{'mode':<6} {'distance':>10} {'vehicles':>9}",
        f"{'soft':<6} {rows['soft'][0]:>10.1f} {rows['soft'][1]:>9.2f}",
        f"{'hard':<6} {rows['hard'][0]:>10.1f} {rows['hard'][1]:>9.2f}",
        f"coverage: C(soft, hard) = {cov_soft * 100:.1f}%   "
        f"C(hard, soft) = {cov_hard * 100:.1f}%",
        f"fraction of soft-mode currents that were tardy: "
        f"{infeasible_fraction * 100:.1f}% (the 'freedom' the paper buys)",
    ]
    emit(output_dir, "ablation_windows", "\n".join(lines))
    assert np.isfinite(rows["soft"][0]) and np.isfinite(rows["hard"][0])
